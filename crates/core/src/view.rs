//! The computed scene: what a topology view draws for one time-slice.
//!
//! [`GraphView`] is a pure description — node shapes, pixel sizes,
//! fill fractions, positions, edges — produced by
//! [`build_view`] from a trace, the collapse state, the time-slice, the
//! visual mapping and the scaling configuration. Rendering (SVG) and
//! interaction (sessions) live elsewhere; tests can assert on views
//! directly.

use std::collections::HashMap;

use viva_agg::{AggIndex, TimeSlice, ViewState};
use viva_layout::Vec2;
use viva_trace::{ContainerId, ContainerKind, MetricId, Trace};

use crate::mapping::{MappingConfig, Shape};
use crate::scaling::ScalingConfig;

/// The separately-aggregated *link* content of a collapsed group.
///
/// Paper Fig. 3: a collapsed group "combines a square, representing all
/// hosts, and a diamond, representing all links". The square is the
/// [`ViewNode`] itself; this badge is the diamond.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkBadge {
    /// Aggregated link capacity (time-mean, summed over member links).
    pub size_value: f64,
    /// Aggregated link utilization.
    pub fill_value: f64,
    /// `fill_value / size_value`, clamped to `[0, 1]`.
    pub fill_fraction: f64,
    /// Screen size, scaled within the link size group.
    pub px_size: f64,
}

/// One drawn node.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewNode {
    /// The container this node represents (a leaf, or a collapsed
    /// group standing for its whole subtree).
    pub container: ContainerId,
    /// Display name.
    pub label: String,
    /// Container kind (drives mapping and color).
    pub kind: ContainerKind,
    /// Geometric shape.
    pub shape: Shape,
    /// Aggregated size-metric value (time-mean over the slice, summed
    /// over members), in metric units.
    pub size_value: f64,
    /// Aggregated fill-metric value, in metric units.
    pub fill_value: f64,
    /// `fill_value / size_value`, clamped to `[0, 1]`.
    pub fill_fraction: f64,
    /// Screen size in pixels (post scaling and sliders).
    pub px_size: f64,
    /// Layout position.
    pub position: Vec2,
    /// Number of leaf containers aggregated into this node (1 for a
    /// plain leaf).
    pub members: usize,
    /// Link aggregate of a collapsed group, when it contains links.
    pub link_badge: Option<LinkBadge>,
    /// Pie-chart segments: `(metric name, share)` with shares summing
    /// to 1, computed from the session's *breakdown metrics* (e.g. one
    /// `power_used:{app}` metric per competing application). Empty when
    /// no breakdown is configured or nothing accumulated. This is the
    /// paper's §6 "pie-charts" extension.
    pub segments: Vec<(String, f64)>,
    /// Mean availability of this node's members over the slice, in
    /// `[0, 1]`: the time-mean of the fault-injection `available`
    /// signal, averaged over the members carrying it. `1.0` when the
    /// trace records no availability (non-fault traces render
    /// unchanged); below `1.0` the node spent part of the slice down,
    /// `0.0` means down for the whole slice.
    pub availability: f64,
    /// Number of non-finite metric samples quarantined at ingest under
    /// this node's subtree, summed over all metrics. Slice-independent:
    /// quarantined samples never enter any signal, so this is a trust
    /// annotation ("values here were computed from incomplete data"),
    /// not a time-dependent aggregate.
    pub quarantined: u64,
}

impl ViewNode {
    /// Whether this node (or, for an aggregate, part of its members)
    /// was unavailable at some point during the slice.
    pub fn is_degraded(&self) -> bool {
        self.availability < 1.0
    }
}

/// One drawn edge (between two visible nodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ViewEdge {
    /// First endpoint.
    pub a: ContainerId,
    /// Second endpoint.
    pub b: ContainerId,
}

/// One aggregate **tile** of a level-of-detail render: a whole subtree
/// that the camera's resolution (or the canvas edge) collapsed into a
/// single glyph. Its values aggregate exactly what an explicit
/// collapse of [`ViewTile::container`] would show — Equation 1 over
/// the subtree and slice, one `O(log n)` index query per metric.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewTile {
    /// Root of the tiled subtree.
    pub container: ContainerId,
    /// Display name of the root.
    pub label: String,
    /// Root container kind (drives the glyph color).
    pub kind: ContainerKind,
    /// Number of visible-frontier nodes the tile absorbed — the
    /// "count" the glyph displays.
    pub nodes: usize,
    /// Aggregated size-metric value (time-mean over the slice, summed
    /// over members), in metric units.
    pub size_value: f64,
    /// Aggregated fill-metric value, in metric units.
    pub fill_value: f64,
    /// `fill_value / size_value`, clamped to `[0, 1]` — the subtree's
    /// mean utilization.
    pub fill_fraction: f64,
    /// Breakdown-metric shares, exactly as a collapsed node's pie
    /// segments (see [`ViewNode::segments`]).
    pub segments: Vec<(String, f64)>,
    /// Mean availability of the subtree over the slice, in `[0, 1]`.
    pub availability: f64,
    /// Quarantined ingest samples under the subtree, all metrics.
    pub quarantined: u64,
    /// World-space bounding box of the absorbed nodes' positions —
    /// the tile's footprint.
    pub lo: Vec2,
    /// See [`ViewTile::lo`].
    pub hi: Vec2,
    /// `true` when the subtree was tiled for lying fully outside the
    /// canvas rather than for being too small to read.
    pub offscreen: bool,
}

impl ViewTile {
    /// Whether part of the subtree was unavailable during the slice.
    pub fn is_degraded(&self) -> bool {
        self.availability < 1.0
    }
}

/// A complete scene for one time-slice.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphView {
    /// Drawn nodes, in container-id order.
    pub nodes: Vec<ViewNode>,
    /// Drawn edges (deduplicated, no self-loops).
    pub edges: Vec<ViewEdge>,
    /// Aggregate tiles of a level-of-detail render, in container-id
    /// order of their roots. Always empty on the classic (camera-less)
    /// path.
    pub tiles: Vec<ViewTile>,
    /// The time-slice the values were aggregated over.
    pub slice: TimeSlice,
    /// Events the lenient ingest path dropped while loading the trace
    /// this view draws from (`0` for cleanly-loaded or built traces).
    pub ingest_dropped: u64,
}

impl GraphView {
    /// Finds a node by container id.
    pub fn node(&self, container: ContainerId) -> Option<&ViewNode> {
        self.nodes.iter().find(|n| n.container == container)
    }

    /// Finds a level-of-detail tile by its root container id.
    pub fn tile(&self, container: ContainerId) -> Option<&ViewTile> {
        self.tiles.iter().find(|t| t.container == container)
    }

    /// Total quarantined samples across the visible frontier. Because
    /// the drawn nodes plus the level-of-detail tiles partition the
    /// container tree, this equals the trace-wide quarantine count.
    pub fn quarantined_total(&self) -> u64 {
        self.nodes.iter().map(|n| n.quarantined).sum::<u64>()
            + self.tiles.iter().map(|t| t.quarantined).sum::<u64>()
    }

    /// Whether this view draws data that survived a lossy ingest
    /// (dropped events or quarantined samples) — the renderer's cue to
    /// show the degraded-data badge.
    pub fn has_degraded_data(&self) -> bool {
        self.ingest_dropped > 0 || self.quarantined_total() > 0
    }

    /// Finds a node by label.
    pub fn node_by_label(&self, label: &str) -> Option<&ViewNode> {
        self.nodes.iter().find(|n| n.label == label)
    }

    /// Bounding box of node positions, `None` for an empty view.
    pub fn bounds(&self) -> Option<(Vec2, Vec2)> {
        let first = self.nodes.first()?.position;
        let mut lo = first;
        let mut hi = first;
        for n in &self.nodes {
            lo = lo.min(n.position);
            hi = hi.max(n.position);
        }
        Some((lo, hi))
    }
}

/// How Equation 1 is evaluated per visible node.
#[derive(Clone, Copy)]
pub(crate) enum AggSource<'a> {
    /// Full subtree rescan per query — the reference path.
    Naive,
    /// `O(log n)` lookups against a session's prebuilt [`AggIndex`].
    Indexed(&'a AggIndex),
}

impl AggSource<'_> {
    /// Just the integral `F_{Γ,Δ}` — `O(log n)` when indexed.
    fn integral(self, trace: &Trace, metric: MetricId, c: ContainerId, slice: TimeSlice) -> f64 {
        match self {
            AggSource::Naive => viva_agg::integrate_group(trace, metric, c, slice),
            AggSource::Indexed(idx) => idx.integrate(metric, c, slice),
        }
    }

    /// Number of containers under `c` carrying `metric`.
    fn carriers(self, trace: &Trace, metric: MetricId, c: ContainerId) -> usize {
        match self {
            AggSource::Naive => trace
                .containers()
                .subtree(c)
                .into_iter()
                .filter(|&x| trace.signal(x, metric).is_some())
                .count(),
            AggSource::Indexed(idx) => idx.carrier_count(metric, c),
        }
    }

    /// Space-time mean, `None` when no data survived the neighbourhood.
    fn try_mean(self, trace: &Trace, metric: MetricId, c: ContainerId, slice: TimeSlice) -> Option<f64> {
        match self {
            AggSource::Naive => viva_agg::try_mean_over_group(trace, metric, c, slice),
            AggSource::Indexed(idx) => idx.try_mean(metric, c, slice),
        }
    }

    /// Quarantined-at-ingest samples under `c`, all metrics summed —
    /// `O(metrics · log n)` when indexed (Euler-tour prefix sums), a
    /// subtree rescan on the naive path. Both read the same counters
    /// recorded on the trace by the lenient loader, so they agree
    /// exactly.
    fn quarantined(self, trace: &Trace, c: ContainerId) -> u64 {
        match self {
            AggSource::Naive => trace
                .metrics()
                .iter()
                .map(|m| trace.quarantined_under(c, m.id()))
                .sum(),
            AggSource::Indexed(idx) => idx.quarantined_under_all(c),
        }
    }
}

#[allow(clippy::manual_clamp)] // max-first normalizes -0.0, clamp keeps it
fn fraction(fill: f64, size: f64) -> f64 {
    if size > 0.0 {
        // `max` first: integration noise can yield -0.0 or tiny
        // negative fills, which would print as "-0%".
        (fill / size).max(0.0).min(1.0)
    } else {
        0.0
    }
}

/// The cacheable, slice-dependent aggregation result of one visible
/// container — everything `build_view`'s first pass computes before the
/// whole-frontier pixel scaling. A session caches these per container
/// and invalidates them on slice/collapse/mapping changes, so a
/// collapse only recomputes the affected subtree's entries.
#[derive(Debug, Clone)]
pub(crate) struct NodePartial {
    kind: ContainerKind,
    shape: Shape,
    size_value: f64,
    fill_value: f64,
    members: usize,
    badge: Option<(f64, f64)>, // (size_value, fill_value)
    segments: Vec<(String, f64)>,
    availability: f64,
    quarantined: u64,
}

/// First-pass aggregation of one visible container (Equation 1 per
/// mapped metric, badge, pie segments, availability). With an
/// [`AggSource::Indexed`] source every query but the §6 summary is
/// `O(log n)`; the naive source reproduces the reference rescan path
/// value for value.
pub(crate) fn compute_partial(
    trace: &Trace,
    state: &ViewState,
    slice: TimeSlice,
    mapping: &MappingConfig,
    breakdown: &[String],
    source: AggSource<'_>,
    c: ContainerId,
) -> NodePartial {
    let tree = trace.containers();
    let width = slice.width();
    let node = tree.node(c);
    let kind = node.kind();
    let rule = mapping.rule(kind);
    let norm = |v: f64| if width > 0.0 { v / width } else { 0.0 };
    let (size_value, members) = match rule.size_metric.as_deref().and_then(|n| trace.metric_id(n)) {
        Some(m) => (
            norm(source.integral(trace, m, c, slice)),
            source.carriers(trace, m, c).max(1),
        ),
        None => (0.0, 1),
    };
    let fill_value = rule
        .fill_metric
        .as_deref()
        .and_then(|n| trace.metric_id(n))
        .map_or(0.0, |m| norm(source.integral(trace, m, c, slice)));
    // A collapsed group that contains links gets the Fig. 3 diamond
    // badge, aggregated with the Link mapping.
    let badge = if kind.is_grouping() && state.is_collapsed(c) && width > 0.0 {
        let link_rule = mapping.rule(ContainerKind::Link);
        link_rule
            .size_metric
            .as_deref()
            .and_then(|n| trace.metric_id(n))
            .filter(|&m| source.carriers(trace, m, c) > 0)
            .map(|m| {
                let bs = norm(source.integral(trace, m, c, slice));
                let bf = link_rule
                    .fill_metric
                    .as_deref()
                    .and_then(|n| trace.metric_id(n))
                    .map_or(0.0, |fm| norm(source.integral(trace, fm, c, slice)));
                (bs, bf)
            })
    } else {
        None
    };
    // §6 pie charts: share of each breakdown metric on this node.
    let mut segments: Vec<(String, f64)> = breakdown
        .iter()
        .filter_map(|name| {
            let m = trace.metric_id(name)?;
            let integral = source.integral(trace, m, c, slice);
            (integral > 0.0).then(|| (name.clone(), integral))
        })
        .collect();
    let seg_total: f64 = segments.iter().map(|(_, v)| v).sum();
    if seg_total > 0.0 {
        for (_, v) in segments.iter_mut() {
            *v /= seg_total;
        }
    }
    // Fault-injection first-class signal: how much of the slice the
    // members were up. Absent signal (a trace without fault
    // tracing) means "always up", not "down".
    let availability = trace
        .metric_id(viva_trace::metric::names::AVAILABILITY)
        .and_then(|m| source.try_mean(trace, m, c, slice))
        .unwrap_or(1.0)
        .clamp(0.0, 1.0);
    NodePartial {
        kind,
        shape: rule.shape,
        size_value,
        fill_value,
        members,
        badge,
        segments,
        availability,
        quarantined: source.quarantined(trace, c),
    }
}

/// Computes the scene for the visible frontier of `state`.
///
/// * `positions` supplies layout coordinates per visible container;
/// * `leaf_edges` are relationships between *leaf* containers (e.g.
///   host ↔ link adjacency derived from the platform, or communication
///   pairs); they are lifted through the collapse state to the visible
///   frontier, deduplicated, self-loops dropped;
/// * `breakdown` metrics (may be empty) fill each node's pie-chart
///   segments with their relative shares.
#[allow(clippy::too_many_arguments)] // one parameter per §3–§4 input
pub fn build_view(
    trace: &Trace,
    state: &ViewState,
    slice: TimeSlice,
    mapping: &MappingConfig,
    scaling: &ScalingConfig,
    positions: &dyn Fn(ContainerId) -> Vec2,
    leaf_edges: &[(ContainerId, ContainerId)],
    breakdown: &[String],
) -> GraphView {
    build_view_cached(
        trace,
        state,
        slice,
        mapping,
        scaling,
        positions,
        leaf_edges,
        breakdown,
        AggSource::Naive,
        &mut HashMap::new(),
    )
}

/// [`build_view`] with an explicit aggregation source and a reusable
/// per-container cache of first-pass partials. Only containers missing
/// from `cache` are aggregated; the whole-frontier pixel scaling
/// (second pass) is recomputed every time, since it depends on the
/// frontier-wide maxima.
#[allow(clippy::too_many_arguments)] // one parameter per §3–§4 input
pub(crate) fn build_view_cached(
    trace: &Trace,
    state: &ViewState,
    slice: TimeSlice,
    mapping: &MappingConfig,
    scaling: &ScalingConfig,
    positions: &dyn Fn(ContainerId) -> Vec2,
    leaf_edges: &[(ContainerId, ContainerId)],
    breakdown: &[String],
    source: AggSource<'_>,
    cache: &mut HashMap<ContainerId, NodePartial>,
) -> GraphView {
    build_scene(
        trace, state, slice, mapping, scaling, positions, leaf_edges, breakdown, source, cache,
        None,
    )
}

/// [`build_view_cached`] under a level-of-detail cut: only the cut's
/// kept containers are aggregated and scaled as real nodes, every
/// [`crate::lod::TileSeed`] becomes a [`ViewTile`] (one cached
/// aggregate query on its root), and lifted edges whose endpoint was
/// absorbed into a tile re-anchor on that tile. With a cut that keeps
/// the whole frontier this is value-identical to [`build_view_cached`].
#[allow(clippy::too_many_arguments)] // one parameter per §3–§4 input
pub(crate) fn build_view_lod(
    trace: &Trace,
    state: &ViewState,
    slice: TimeSlice,
    mapping: &MappingConfig,
    scaling: &ScalingConfig,
    positions: &dyn Fn(ContainerId) -> Vec2,
    leaf_edges: &[(ContainerId, ContainerId)],
    breakdown: &[String],
    source: AggSource<'_>,
    cache: &mut HashMap<ContainerId, NodePartial>,
    cut: &crate::lod::LodCut,
) -> GraphView {
    build_scene(
        trace, state, slice, mapping, scaling, positions, leaf_edges, breakdown, source, cache,
        Some(cut),
    )
}

#[allow(clippy::too_many_arguments)] // one parameter per §3–§4 input
fn build_scene(
    trace: &Trace,
    state: &ViewState,
    slice: TimeSlice,
    mapping: &MappingConfig,
    scaling: &ScalingConfig,
    positions: &dyn Fn(ContainerId) -> Vec2,
    leaf_edges: &[(ContainerId, ContainerId)],
    breakdown: &[String],
    source: AggSource<'_>,
    cache: &mut HashMap<ContainerId, NodePartial>,
    cut: Option<&crate::lod::LodCut>,
) -> GraphView {
    let tree = trace.containers();
    let visible = match cut {
        None => state.visible(tree),
        Some(c) => c.keep.clone(),
    };

    // First pass: aggregate metric values per node (cached).
    let partials: Vec<(ContainerId, NodePartial)> = visible
        .iter()
        .map(|&c| {
            let p = cache
                .entry(c)
                .or_insert_with(|| compute_partial(trace, state, slice, mapping, breakdown, source, c));
            (c, p.clone())
        })
        .collect();

    // Second pass: per-size-group screen scaling (paper §4.1). Badge
    // sizes participate in the link group's scale.
    let mut groups: HashMap<String, Vec<f64>> = HashMap::new();
    for (_, p) in &partials {
        groups
            .entry(mapping.size_group(p.kind))
            .or_default()
            .push(p.size_value);
    }
    let link_group = mapping.size_group(ContainerKind::Link);
    for (_, p) in &partials {
        if let Some((bs, _)) = p.badge {
            groups.entry(link_group.clone()).or_default().push(bs);
        }
    }
    let scales: HashMap<String, f64> = groups
        .iter()
        .map(|(g, values)| {
            let max = values.iter().copied().fold(0.0f64, f64::max);
            let auto = if max > 0.0 { scaling.max_px / max } else { 0.0 };
            (g.clone(), auto * scaling.slider(g))
        })
        .collect();
    let px_of = |group: &str, value: f64| (value * scales[group]).max(scaling.min_px);

    let mut nodes: Vec<ViewNode> = partials
        .into_iter()
        .map(|(container, p)| {
            let group = mapping.size_group(p.kind);
            let link_badge = p.badge.map(|(bs, bf)| LinkBadge {
                size_value: bs,
                fill_value: bf,
                fill_fraction: fraction(bf, bs),
                px_size: px_of(&link_group, bs),
            });
            ViewNode {
                label: tree.node(container).name().to_owned(),
                kind: p.kind,
                shape: p.shape,
                fill_fraction: fraction(p.fill_value, p.size_value),
                px_size: px_of(&group, p.size_value),
                position: positions(container),
                members: p.members,
                link_badge,
                segments: p.segments,
                container,
                size_value: p.size_value,
                fill_value: p.fill_value,
                availability: p.availability,
                quarantined: p.quarantined,
            }
        })
        .collect();
    nodes.sort_by_key(|n| n.container);

    // Level-of-detail tiles: one cached subtree aggregate per seed.
    let tiles: Vec<ViewTile> = cut.map_or_else(Vec::new, |c| {
        c.tiles
            .iter()
            .map(|seed| {
                let p = cache
                    .entry(seed.root)
                    .or_insert_with(|| {
                        compute_partial(trace, state, slice, mapping, breakdown, source, seed.root)
                    })
                    .clone();
                ViewTile {
                    container: seed.root,
                    label: tree.node(seed.root).name().to_owned(),
                    kind: p.kind,
                    nodes: seed.nodes,
                    size_value: p.size_value,
                    fill_value: p.fill_value,
                    fill_fraction: fraction(p.fill_value, p.size_value),
                    segments: p.segments,
                    availability: p.availability,
                    quarantined: p.quarantined,
                    lo: seed.lo,
                    hi: seed.hi,
                    offscreen: seed.offscreen,
                }
            })
            .collect()
    });

    // Where a lifted edge endpoint is drawn: on itself (classic path,
    // or kept by the cut), or on the tile that absorbed it.
    let kept: Option<std::collections::HashSet<ContainerId>> =
        cut.map(|c| c.keep.iter().copied().collect());
    let tile_roots: Option<std::collections::HashSet<ContainerId>> =
        cut.map(|c| c.tiles.iter().map(|s| s.root).collect());
    let resolve = |r: ContainerId| -> Option<ContainerId> {
        let (Some(kept), Some(tile_roots)) = (&kept, &tile_roots) else {
            return Some(r);
        };
        if kept.contains(&r) {
            return Some(r);
        }
        let mut cur = Some(r);
        while let Some(g) = cur {
            if tile_roots.contains(&g) {
                return Some(g);
            }
            cur = tree.node(g).parent();
        }
        None
    };

    // Lift leaf edges to the visible frontier (then through the cut).
    let mut edges: Vec<ViewEdge> = leaf_edges
        .iter()
        .filter_map(|&(a, b)| {
            let ra = resolve(state.representative(tree, a)?)?;
            let rb = resolve(state.representative(tree, b)?)?;
            (ra != rb).then(|| {
                if ra <= rb {
                    ViewEdge { a: ra, b: rb }
                } else {
                    ViewEdge { a: rb, b: ra }
                }
            })
        })
        .collect();
    edges.sort_by_key(|e| (e.a, e.b));
    edges.dedup();

    GraphView { nodes, edges, tiles, slice, ingest_dropped: trace.ingest_dropped() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viva_agg::GroupAggregate;
    use viva_trace::TraceBuilder;

    /// cluster(c1: h1 100/50 used, h2 25/25 used, l1 bw 1000/500 used)
    /// + cluster(c2: h3 200, idle).
    fn trace() -> Trace {
        let mut b = TraceBuilder::new();
        let c1 = b.new_container(b.root(), "c1", ContainerKind::Cluster).unwrap();
        let c2 = b.new_container(b.root(), "c2", ContainerKind::Cluster).unwrap();
        let h1 = b.new_container(c1, "h1", ContainerKind::Host).unwrap();
        let h2 = b.new_container(c1, "h2", ContainerKind::Host).unwrap();
        let l1 = b.new_container(c1, "l1", ContainerKind::Link).unwrap();
        let h3 = b.new_container(c2, "h3", ContainerKind::Host).unwrap();
        let power = b.metric("power", "MFlop/s");
        let used = b.metric("power_used", "MFlop/s");
        let bw = b.metric("bandwidth", "Mbit/s");
        let bw_used = b.metric("bandwidth_used", "Mbit/s");
        b.set_variable(0.0, h1, power, 100.0).unwrap();
        b.set_variable(0.0, h2, power, 25.0).unwrap();
        b.set_variable(0.0, h3, power, 200.0).unwrap();
        b.set_variable(0.0, h1, used, 50.0).unwrap();
        b.set_variable(0.0, h2, used, 25.0).unwrap();
        b.set_variable(0.0, l1, bw, 1000.0).unwrap();
        b.set_variable(0.0, l1, bw_used, 500.0).unwrap();
        b.finish(10.0)
    }

    fn make_view(state: &ViewState) -> GraphView {
        let t = trace();
        build_view(
            &t,
            state,
            TimeSlice::new(0.0, 10.0),
            &MappingConfig::default(),
            &ScalingConfig::default(),
            &|_| Vec2::default(),
            &[],
            &[],
        )
    }

    #[test]
    fn expanded_view_draws_leaves_with_paper_mapping() {
        let view = make_view(&ViewState::new());
        assert_eq!(view.nodes.len(), 4);
        let h1 = view.node_by_label("h1").unwrap();
        assert_eq!(h1.shape, Shape::Square);
        assert_eq!(h1.size_value, 100.0);
        assert_eq!(h1.fill_fraction, 0.5);
        let l1 = view.node_by_label("l1").unwrap();
        assert_eq!(l1.shape, Shape::Diamond);
        assert_eq!(l1.fill_fraction, 0.5);
        // h3 is the biggest host: it takes max_px; the link is the
        // biggest (only) of its own group: also max_px (§4.1).
        let h3 = view.node_by_label("h3").unwrap();
        assert_eq!(h3.px_size, 40.0);
        assert_eq!(l1.px_size, 40.0);
        assert_eq!(h1.px_size, 20.0);
        assert_eq!(h3.fill_fraction, 0.0, "no utilization signal");
    }

    #[test]
    fn collapsed_cluster_aggregates_hosts_and_badges_links() {
        let t = trace();
        let c1 = t.containers().by_name("c1").unwrap().id();
        let mut state = ViewState::new();
        state.collapse(c1);
        let view = make_view(&state);
        // c1 aggregate + h3 leaf.
        assert_eq!(view.nodes.len(), 2);
        let agg = view.node_by_label("c1").unwrap();
        assert_eq!(agg.size_value, 125.0, "sum of member host powers");
        assert_eq!(agg.fill_value, 75.0);
        assert_eq!(agg.fill_fraction, 0.6);
        assert_eq!(agg.members, 2);
        // §6 indicators over member means {50, 25} stay available on
        // demand (the view itself no longer carries them).
        let m = t.metric_id("power_used").unwrap();
        let slice = TimeSlice::new(t.start(), t.end());
        assert_eq!(GroupAggregate::compute(&t, m, c1, slice).summary.mean, 37.5);
        // Fig. 3 diamond badge for the aggregated link.
        let badge = agg.link_badge.as_ref().expect("cluster contains a link");
        assert_eq!(badge.size_value, 1000.0);
        assert_eq!(badge.fill_fraction, 0.5);
        // Leaf host gets no badge.
        assert!(view.node_by_label("h3").unwrap().link_badge.is_none());
    }

    #[test]
    fn edges_are_lifted_and_deduplicated() {
        let t = trace();
        let tree = t.containers();
        let c1 = tree.by_name("c1").unwrap().id();
        let h1 = tree.by_name("h1").unwrap().id();
        let h2 = tree.by_name("h2").unwrap().id();
        let l1 = tree.by_name("l1").unwrap().id();
        let h3 = tree.by_name("h3").unwrap().id();
        let leaf_edges = [(h1, l1), (h2, l1), (l1, h3)];

        // Expanded: all three edges survive.
        let view = build_view(
            &t,
            &ViewState::new(),
            TimeSlice::new(0.0, 10.0),
            &MappingConfig::default(),
            &ScalingConfig::default(),
            &|_| Vec2::default(),
            &leaf_edges,
            &[],
        );
        assert_eq!(view.edges.len(), 3);

        // Collapsed c1: h1-l1 and h2-l1 become internal (dropped),
        // l1-h3 lifts to c1-h3.
        let mut state = ViewState::new();
        state.collapse(c1);
        let view = build_view(
            &t,
            &state,
            TimeSlice::new(0.0, 10.0),
            &MappingConfig::default(),
            &ScalingConfig::default(),
            &|_| Vec2::default(),
            &leaf_edges,
            &[],
        );
        assert_eq!(view.edges, vec![ViewEdge { a: c1, b: h3 }]);
    }

    #[test]
    fn slice_restriction_changes_values() {
        let t = trace();
        let h1 = t.containers().by_name("h1").unwrap().id();
        // Utilization present for the whole span; a half-width slice
        // yields the same *mean* value.
        let view = build_view(
            &t,
            &ViewState::new(),
            TimeSlice::new(0.0, 5.0),
            &MappingConfig::default(),
            &ScalingConfig::default(),
            &|_| Vec2::default(),
            &[],
            &[],
        );
        assert_eq!(view.node(h1).unwrap().fill_value, 50.0);
        // An empty slice zeroes everything.
        let view = build_view(
            &t,
            &ViewState::new(),
            TimeSlice::new(3.0, 3.0),
            &MappingConfig::default(),
            &ScalingConfig::default(),
            &|_| Vec2::default(),
            &[],
            &[],
        );
        assert_eq!(view.node(h1).unwrap().size_value, 0.0);
        assert_eq!(view.node(h1).unwrap().px_size, 2.0, "min_px floor");
    }

    #[test]
    fn quarantine_counts_agree_between_naive_and_indexed_sources() {
        use viva_trace::{RecoveryMode, TraceLoader};
        // NaNs on two hosts of the same cluster; they must roll up to
        // the collapsed-group node identically through both paths.
        let text = "span,0,10\n\
                    container,1,0,cluster,c1\n\
                    container,2,1,host,h1\n\
                    container,3,1,host,h2\n\
                    container,4,0,host,h3\n\
                    metric,0,MFlop/s,power\n\
                    var,0.0,2,0,NaN\n\
                    var,0.0,3,0,inf\n\
                    var,1.0,3,0,NaN\n\
                    var,0.0,4,0,200.0\n";
        let t = TraceLoader::new()
            .mode(RecoveryMode::Lenient)
            .load_str(text)
            .unwrap()
            .trace;
        let idx = AggIndex::build(&t);
        let c1 = t.containers().by_name("c1").unwrap().id();
        let mut state = ViewState::new();
        state.collapse(c1);
        let build = |source: AggSource<'_>| {
            build_view_cached(
                &t,
                &state,
                TimeSlice::new(0.0, 10.0),
                &MappingConfig::default(),
                &ScalingConfig::default(),
                &|_| Vec2::default(),
                &[],
                &[],
                source,
                &mut HashMap::new(),
            )
        };
        let naive = build(AggSource::Naive);
        let indexed = build(AggSource::Indexed(&idx));
        assert_eq!(naive, indexed, "sources must agree node for node");
        assert_eq!(naive.node(c1).unwrap().quarantined, 3);
        assert_eq!(naive.node_by_label("h3").unwrap().quarantined, 0);
        assert_eq!(naive.quarantined_total(), 3);
        assert!(naive.has_degraded_data());
        // Quarantined samples count as dropped events too (quarantine
        // is a subset of the drop ledger).
        assert_eq!(naive.ingest_dropped, 3);
    }

    #[test]
    fn bounds_and_lookup() {
        let t = trace();
        let view = build_view(
            &t,
            &ViewState::new(),
            TimeSlice::new(0.0, 10.0),
            &MappingConfig::default(),
            &ScalingConfig::default(),
            &|c| Vec2::new(c.index() as f64, 0.0),
            &[],
            &[],
        );
        let (lo, hi) = view.bounds().unwrap();
        assert!(lo.x < hi.x);
        assert!(view.node_by_label("nope").is_none());
    }
}

#[cfg(test)]
mod breakdown_tests {
    use super::*;
    use viva_trace::TraceBuilder;

    #[test]
    fn segments_hold_normalized_shares() {
        let mut b = TraceBuilder::new();
        let cl = b.new_container(b.root(), "c", ContainerKind::Cluster).unwrap();
        let h = b.new_container(cl, "h", ContainerKind::Host).unwrap();
        let power = b.metric("power", "MFlop/s");
        let a1 = b.metric("power_used:app1", "MFlop/s");
        let a2 = b.metric("power_used:app2", "MFlop/s");
        b.set_variable(0.0, h, power, 100.0).unwrap();
        b.set_variable(0.0, h, a1, 30.0).unwrap();
        b.set_variable(0.0, h, a2, 10.0).unwrap();
        let t = b.finish(10.0);
        let view = build_view(
            &t,
            &ViewState::new(),
            TimeSlice::new(0.0, 10.0),
            &MappingConfig::default(),
            &ScalingConfig::default(),
            &|_| Vec2::default(),
            &[],
            &["power_used:app1".to_owned(), "power_used:app2".to_owned()],
        );
        let node = view.node_by_label("h").unwrap();
        assert_eq!(node.segments.len(), 2);
        assert_eq!(node.segments[0], ("power_used:app1".to_owned(), 0.75));
        assert_eq!(node.segments[1], ("power_used:app2".to_owned(), 0.25));

        // Collapsed group: shares aggregate over the subtree.
        let cl_id = t.containers().by_name("c").unwrap().id();
        let mut state = ViewState::new();
        state.collapse(cl_id);
        let view = build_view(
            &t,
            &state,
            TimeSlice::new(0.0, 10.0),
            &MappingConfig::default(),
            &ScalingConfig::default(),
            &|_| Vec2::default(),
            &[],
            &["power_used:app1".to_owned(), "power_used:app2".to_owned()],
        );
        assert_eq!(view.node(cl_id).unwrap().segments.len(), 2);

        // No breakdown configured: no segments.
        let view = build_view(
            &t,
            &ViewState::new(),
            TimeSlice::new(0.0, 10.0),
            &MappingConfig::default(),
            &ScalingConfig::default(),
            &|_| Vec2::default(),
            &[],
            &[],
        );
        assert!(view.node_by_label("h").unwrap().segments.is_empty());
    }
}
