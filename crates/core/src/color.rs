//! Color assignment for node kinds and accounts.

use viva_trace::ContainerKind;

/// An sRGB color.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Color {
    /// Red channel.
    pub r: u8,
    /// Green channel.
    pub g: u8,
    /// Blue channel.
    pub b: u8,
}

impl Color {
    /// CSS hex form, `#rrggbb`.
    pub fn hex(self) -> String {
        format!("#{:02x}{:02x}{:02x}", self.r, self.g, self.b)
    }
}

/// Outline/fill color for a container kind.
pub fn kind_color(kind: ContainerKind) -> Color {
    match kind {
        ContainerKind::Host => Color { r: 0x2b, g: 0x6c, b: 0xb0 },
        ContainerKind::Link => Color { r: 0xc0, g: 0x50, b: 0x30 },
        ContainerKind::Router => Color { r: 0x66, g: 0x66, b: 0x66 },
        ContainerKind::Cluster => Color { r: 0x2e, g: 0x86, b: 0x57 },
        ContainerKind::Site => Color { r: 0x7a, g: 0x4f, b: 0xa0 },
        ContainerKind::Root | ContainerKind::Group => Color { r: 0x30, g: 0x30, b: 0x30 },
        ContainerKind::Process => Color { r: 0xb8, g: 0x86, b: 0x0b },
    }
}

/// A categorical palette for per-application (account) series.
pub fn account_color(index: usize) -> Color {
    const PALETTE: [Color; 6] = [
        Color { r: 0xd9, g: 0x5f, b: 0x02 },
        Color { r: 0x1b, g: 0x9e, b: 0x77 },
        Color { r: 0x75, g: 0x70, b: 0xb3 },
        Color { r: 0xe7, g: 0x29, b: 0x8a },
        Color { r: 0x66, g: 0xa6, b: 0x1e },
        Color { r: 0xe6, g: 0xab, b: 0x02 },
    ];
    PALETTE[index % PALETTE.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_formats_lowercase() {
        assert_eq!(Color { r: 255, g: 0, b: 16 }.hex(), "#ff0010");
    }

    #[test]
    fn kinds_have_distinct_core_colors() {
        let h = kind_color(ContainerKind::Host);
        let l = kind_color(ContainerKind::Link);
        let r = kind_color(ContainerKind::Router);
        assert_ne!(h, l);
        assert_ne!(h, r);
        assert_ne!(l, r);
    }

    #[test]
    fn account_palette_cycles() {
        assert_eq!(account_color(0), account_color(6));
        assert_ne!(account_color(0), account_color(1));
    }
}
