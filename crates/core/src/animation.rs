//! Temporal animation: sweeping the time-slice across the trace.
//!
//! The paper's Fig. 9 follows "the temporal evolution of workload
//! distribution" by animating a given view over consecutive
//! time-slices. [`Animation`] captures one frame per slice while
//! keeping the layout warm between frames (the graph barely moves, so
//! the eye tracks values, not positions).

use viva_agg::{integrate_group, TimeSlice};
use viva_trace::{ContainerId, Trace};

use crate::session::AnalysisSession;
use crate::view::GraphView;

/// A sequence of views over consecutive time-slices.
#[derive(Debug, Clone)]
pub struct Animation {
    /// `(slice, view)` frames in time order.
    pub frames: Vec<(TimeSlice, GraphView)>,
}

impl Animation {
    /// Captures one frame per slice from `session`, restoring the
    /// session's original slice afterwards. `relax_steps` layout
    /// iterations run between frames (values change node sizes, which
    /// barely perturbs positions).
    pub fn capture(
        session: &mut AnalysisSession,
        slices: &[TimeSlice],
        relax_steps: usize,
    ) -> Animation {
        let original = session.time_slice();
        let mut frames = Vec::with_capacity(slices.len());
        for &s in slices {
            session.set_time_slice(s);
            session.relax(relax_steps);
            frames.push((s, session.view()));
        }
        session.set_time_slice(original);
        Animation { frames }
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the animation has no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// The largest node displacement between consecutive frames — the
    /// "smoothness" of the animation (small is good: the analyst is
    /// not confused by layout jumps, §3.3).
    pub fn max_frame_displacement(&self) -> f64 {
        let mut worst = 0.0f64;
        for w in self.frames.windows(2) {
            let (_, a) = &w[0];
            let (_, b) = &w[1];
            for n in &a.nodes {
                if let Some(m) = b.node(n.container) {
                    worst = worst.max(n.position.distance(m.position));
                }
            }
        }
        worst
    }
}

/// The Fig. 9 series: for each group (row) and each slice (column), the
/// Equation 1 integral of `metric`. Rows follow `groups` order.
pub fn evolution_matrix(
    trace: &Trace,
    metric: &str,
    groups: &[ContainerId],
    slices: &[TimeSlice],
) -> Vec<Vec<f64>> {
    let Some(m) = trace.metric_id(metric) else {
        return vec![vec![0.0; slices.len()]; groups.len()];
    };
    groups
        .iter()
        .map(|&g| {
            slices
                .iter()
                .map(|&s| integrate_group(trace, m, g, s))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use viva_trace::{ContainerKind, TraceBuilder};

    fn session() -> AnalysisSession {
        let mut b = TraceBuilder::new();
        let power = b.metric("power", "MFlop/s");
        let used = b.metric("power_used", "MFlop/s");
        let cl = b.new_container(b.root(), "c", ContainerKind::Cluster).unwrap();
        for i in 0..3 {
            let h = b
                .new_container(cl, format!("h{i}"), ContainerKind::Host)
                .unwrap();
            b.set_variable(0.0, h, power, 100.0).unwrap();
            // Host i becomes busy at time i*10 (staggered diffusion).
            b.set_variable(10.0 * i as f64, h, used, 100.0).unwrap();
        }
        AnalysisSession::builder(b.finish(30.0)).build()
    }

    #[test]
    fn capture_produces_one_frame_per_slice() {
        let mut s = session();
        let slices = TimeSlice::new(0.0, 30.0).split(3);
        let anim = Animation::capture(&mut s, &slices, 10);
        assert_eq!(anim.len(), 3);
        assert!(!anim.is_empty());
        // Original slice restored.
        assert_eq!(s.time_slice(), TimeSlice::new(0.0, 30.0));
    }

    #[test]
    fn frames_show_workload_diffusion() {
        let mut s = session();
        let slices = TimeSlice::new(0.0, 30.0).split(3);
        let anim = Animation::capture(&mut s, &slices, 0);
        let tree_h2 = s.trace().containers().by_name("h2").unwrap().id();
        // h2 idle in the first frame, busy in the last.
        let first = anim.frames[0].1.node(tree_h2).unwrap().fill_value;
        let last = anim.frames[2].1.node(tree_h2).unwrap().fill_value;
        assert_eq!(first, 0.0);
        assert_eq!(last, 100.0);
    }

    #[test]
    fn animation_is_smooth() {
        let mut s = session();
        s.relax(300);
        let slices = TimeSlice::new(0.0, 30.0).split(3);
        let anim = Animation::capture(&mut s, &slices, 5);
        // Values change across frames but the layout barely moves.
        assert!(anim.max_frame_displacement() < s.layout().config().spring_length);
    }

    #[test]
    fn evolution_matrix_is_staggered() {
        let s = session();
        let t = s.trace();
        let hosts: Vec<ContainerId> = (0..3)
            .map(|i| t.containers().by_name(&format!("h{i}")).unwrap().id())
            .collect();
        let slices = TimeSlice::new(0.0, 30.0).split(3);
        let m = evolution_matrix(t, "power_used", &hosts, &slices);
        // Row 0 busy from the start; row 2 only in the last slice.
        assert_eq!(m[0], vec![1000.0, 1000.0, 1000.0]);
        assert_eq!(m[1], vec![0.0, 1000.0, 1000.0]);
        assert_eq!(m[2], vec![0.0, 0.0, 1000.0]);
        // Unknown metric → zero matrix.
        let z = evolution_matrix(t, "nope", &hosts, &slices);
        assert!(z.iter().all(|row| row.iter().all(|&v| v == 0.0)));
    }
}
