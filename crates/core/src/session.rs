//! The interactive analysis session: the paper's tool loop.
//!
//! An [`AnalysisSession`] owns everything the analyst manipulates:
//!
//! * the **trace** under analysis (and optionally the **platform** it
//!   was recorded on, used to wire the topology graph);
//! * the **time-slice** (§3.2.1) and the **collapse state** (§3.2.2);
//! * the **force-directed layout** with its charge/spring/damping
//!   sliders (§4.2), node pinning and dragging;
//! * the **visual mapping** (§3.1) and **per-type scaling sliders**
//!   (§4.1).
//!
//! Every mutation keeps the layout *warm*: collapsing a group merges
//! its nodes into one aggregate placed at their barycenter, expanding
//! spawns members around the aggregate — so the picture morphs smoothly
//! instead of being recomputed from scratch (§3.3).

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

use viva_agg::{AggIndex, GroupAggregate, TimeSlice, TimeSliceError, ViewState};
use viva_layout::{FreezeReason, LayoutConfig, LayoutEngine, NodeKey, Vec2};
use viva_obs::{Counter, Histogram, Recorder};
use viva_platform::Platform;
use viva_trace::{ContainerId, MetricId, Trace, TraceError};

use crate::lod;
use crate::mapping::MappingConfig;
use crate::scaling::ScalingConfig;
use crate::svg;
use crate::view::{build_view_cached, build_view_lod, AggSource, GraphView, NodePartial};
use crate::viewport::{Camera, Viewport};

/// Why a session operation could not be applied. Session inputs come
/// from interactive UI events (clicks on stale node ids, slider
/// positions, typed metric names), so every public operation reports
/// bad input as a value instead of panicking mid-analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError {
    /// The container id does not exist in the trace under analysis.
    UnknownContainer(ContainerId),
    /// The container exists but is not currently visible (it is hidden
    /// inside a collapsed ancestor), so it cannot be dragged.
    HiddenContainer(ContainerId),
    /// No metric with this name is recorded in the trace.
    UnknownMetric(String),
    /// The requested time slice is malformed (NaN/infinite bounds or
    /// end before start).
    InvalidTimeSlice(TimeSliceError),
    /// A drag target position with a NaN/infinite coordinate. Drag
    /// positions come straight from pointer events or wire protocols;
    /// a non-finite coordinate would poison the force simulation.
    NonFinitePosition {
        /// The rejected x coordinate.
        x: f64,
        /// The rejected y coordinate.
        y: f64,
    },
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::UnknownContainer(c) => {
                write!(f, "container {c:?} does not exist in this trace")
            }
            SessionError::HiddenContainer(c) => {
                write!(f, "container {c:?} is hidden inside a collapsed group")
            }
            SessionError::UnknownMetric(name) => {
                write!(f, "metric {name:?} is not recorded in this trace")
            }
            SessionError::InvalidTimeSlice(e) => write!(f, "{e}"),
            SessionError::NonFinitePosition { x, y } => {
                write!(f, "drag position ({x}, {y}) is not finite")
            }
        }
    }
}

impl std::error::Error for SessionError {}

impl From<TimeSliceError> for SessionError {
    fn from(e: TimeSliceError) -> SessionError {
        SessionError::InvalidTimeSlice(e)
    }
}

/// Initial configuration of a session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionConfig {
    /// Metric → visual mapping.
    pub mapping: MappingConfig,
    /// Screen scaling parameters.
    pub scaling: ScalingConfig,
    /// Force-model parameters.
    pub layout: LayoutConfig,
    /// Seed for initial node placement.
    pub seed: u64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            mapping: MappingConfig::default(),
            scaling: ScalingConfig::default(),
            layout: LayoutConfig::default(),
            seed: 0x1234_5678,
        }
    }
}

/// An interactive topology-based analysis of one trace.
#[derive(Debug)]
pub struct AnalysisSession {
    trace: Arc<Trace>,
    mapping: MappingConfig,
    scaling: ScalingConfig,
    state: ViewState,
    slice: TimeSlice,
    layout: LayoutEngine,
    /// Relationships between leaf containers (host ↔ link ↔ router).
    leaf_edges: Vec<(ContainerId, ContainerId)>,
    /// Metrics whose shares fill each node's pie chart (§6 extension).
    breakdown: Vec<String>,
    /// Current visible frontier (mirrors the layout's node set).
    frontier: Vec<ContainerId>,
    /// Prebuilt aggregation index (`None` on
    /// [`SessionBuilder::without_index`] sessions, which fall back to
    /// full rescans — the benchmark baseline). Shared: many sessions
    /// over one stored trace reuse a single build (see
    /// [`SessionBuilder::shared_index`]).
    index: Option<Arc<AggIndex>>,
    /// Per-container cache of first-pass view aggregates. Interior
    /// mutability keeps [`view`](AnalysisSession::view) `&self`;
    /// mutators invalidate exactly what their change dirtied (see
    /// DESIGN.md "Invalidation rules").
    cache: RefCell<HashMap<ContainerId, NodePartial>>,
    /// Monotonically increasing view revision; see
    /// [`revision`](AnalysisSession::revision).
    revision: u64,
    /// The observability recorder this session (and its index + layout)
    /// reports into; disabled by default.
    recorder: Recorder,
    /// Cached session-level metric handles, `None` when the recorder is
    /// disabled.
    obs: Option<Box<SessionObs>>,
}

/// Pre-resolved handles for the session's own metrics (`session.*`).
#[derive(Debug)]
struct SessionObs {
    /// `session.slice_changes` — effective time-slice updates.
    slice_changes: Counter,
    /// `session.collapses` / `session.expands` — §3.2.2 operations
    /// (including level jumps and expand-all).
    collapses: Counter,
    expands: Counter,
    /// `session.cache.invalidated` — aggregate-cache entries dropped by
    /// mutations (the cost side of the per-node view cache).
    invalidated: Counter,
    /// `session.views` + `session.view.seconds` — scene recomputations.
    views: Counter,
    view_seconds: Histogram,
    /// `session.render.seconds` — SVG generation on top of the view.
    render_seconds: Histogram,
    /// `session.relax.steps` — layout steps driven through
    /// [`AnalysisSession::relax`].
    relax_steps: Counter,
}

impl SessionObs {
    fn new(recorder: &Recorder) -> SessionObs {
        SessionObs {
            slice_changes: recorder.counter("session.slice_changes"),
            collapses: recorder.counter("session.collapses"),
            expands: recorder.counter("session.expands"),
            invalidated: recorder.counter("session.cache.invalidated"),
            views: recorder.counter("session.views"),
            view_seconds: recorder.histogram("session.view.seconds"),
            render_seconds: recorder.histogram("session.render.seconds"),
            relax_steps: recorder.counter("session.relax.steps"),
        }
    }
}

fn key(c: ContainerId) -> NodeKey {
    NodeKey(c.index() as u64)
}

/// Derives host/router ↔ link adjacency from a platform description by
/// matching resource names to trace containers (§3.1.1's second
/// option). Resources with no matching container are skipped.
fn platform_edges(trace: &Trace, platform: &Platform) -> Vec<(ContainerId, ContainerId)> {
    let tree = trace.containers();
    let by_name = |name: &str| tree.by_name(name).map(|c| c.id());
    let mut edges = Vec::new();
    for link in platform.links() {
        let Some(lc) = by_name(link.name()) else { continue };
        let (a, b) = platform.link_endpoints(link.id());
        for endpoint in [a, b] {
            let name = match endpoint {
                viva_platform::NodeId::Host(h) => platform.host(h).name(),
                viva_platform::NodeId::Router(r) => platform.router(r).name(),
            };
            if let Some(ec) = by_name(name) {
                edges.push((ec, lc));
            }
        }
    }
    edges
}

/// Builds an [`AnalysisSession`] step by step: trace → topology source
/// → config → `build()`.
///
/// The topology graph defaults to the trace's communication pairs
/// (§3.1.1's first option); [`platform`](SessionBuilder::platform)
/// switches to the physical interconnection, and
/// [`edges`](SessionBuilder::edges) to analyst-provided relationships.
/// Whichever is called last wins.
///
/// ```no_run
/// # let trace: viva_trace::Trace = unimplemented!();
/// use viva::{AnalysisSession, SessionConfig};
///
/// let session = AnalysisSession::builder(trace)
///     .config(SessionConfig::default())
///     .build();
/// ```
#[derive(Debug)]
pub struct SessionBuilder {
    trace: Arc<Trace>,
    config: SessionConfig,
    edges: Option<Vec<(ContainerId, ContainerId)>>,
    use_index: bool,
    shared_index: Option<Arc<AggIndex>>,
    recorder: Recorder,
}

impl SessionBuilder {
    /// Starts a builder over `trace` with the default configuration,
    /// communication-pair topology, and the aggregation index enabled.
    ///
    /// Accepts either an owned [`Trace`] (the 0.6 calling convention —
    /// it is wrapped in an [`Arc`] via `From<Trace>`) or an
    /// `Arc<Trace>` shared with other sessions. Sharing the `Arc` is
    /// the copy-on-nothing path: N sessions over one trace hold one
    /// copy of the event data.
    pub fn new(trace: impl Into<Arc<Trace>>) -> SessionBuilder {
        SessionBuilder {
            trace: trace.into(),
            config: SessionConfig::default(),
            edges: None,
            use_index: true,
            shared_index: None,
            recorder: Recorder::disabled(),
        }
    }

    /// Wires an observability recorder through the whole session: the
    /// aggregation-index build and queries, the layout engine's per-step
    /// telemetry, and the session's own slice/collapse/cache/view
    /// metrics all report into it. The default disabled recorder keeps
    /// every instrumented path at its uninstrumented cost.
    #[must_use]
    pub fn recorder(mut self, recorder: Recorder) -> SessionBuilder {
        self.recorder = recorder;
        self
    }

    /// Sets the session configuration (mapping, scaling, layout, seed).
    #[must_use]
    pub fn config(mut self, config: SessionConfig) -> SessionBuilder {
        self.config = config;
        self
    }

    /// Uses the physical interconnection of `platform` as the topology
    /// graph: every link container connects to the containers of its
    /// two endpoints, matched by name (§3.1.1's second option).
    #[must_use]
    pub fn platform(mut self, platform: &Platform) -> SessionBuilder {
        self.edges = Some(platform_edges(&self.trace, platform));
        self
    }

    /// Uses explicit leaf-container relationships as the topology graph
    /// (§3.1.1's third option: "the information can be dynamically
    /// provided by the analyst").
    #[must_use]
    pub fn edges(mut self, leaf_edges: Vec<(ContainerId, ContainerId)>) -> SessionBuilder {
        self.edges = Some(leaf_edges);
        self
    }

    /// Disables the aggregation index: every view refresh and
    /// [`AnalysisSession::aggregate`] call rescans the trace. Only
    /// useful as a benchmark baseline and for differential testing of
    /// the index itself.
    #[must_use]
    pub fn without_index(mut self) -> SessionBuilder {
        self.use_index = false;
        self.shared_index = None;
        self
    }

    /// Reuses an aggregation index built over the **same** trace
    /// instead of building a fresh one — the attach path: a thousand
    /// sessions over one stored trace share one `O(n log n)` build.
    /// The caller must pass an index built from the identical trace
    /// (the server's `TraceStore` guarantees this by construction).
    #[must_use]
    pub fn shared_index(mut self, index: Arc<AggIndex>) -> SessionBuilder {
        self.use_index = true;
        self.shared_index = Some(index);
        self
    }

    /// Builds the session: computes the topology edges (communication
    /// pairs unless overridden), constructs the aggregation index, and
    /// seeds the layout with the initial visible frontier.
    pub fn build(self) -> AnalysisSession {
        let SessionBuilder { trace, config, edges, use_index, shared_index, recorder } = self;
        let leaf_edges = edges.unwrap_or_else(|| trace.communication_pairs());
        let slice = TimeSlice::new(trace.start(), trace.end());
        let index = shared_index
            .or_else(|| use_index.then(|| Arc::new(AggIndex::build_observed(&trace, &recorder))));
        let mut layout = LayoutEngine::new(config.layout, config.seed);
        layout.set_recorder(recorder.clone());
        let obs = recorder.is_enabled().then(|| Box::new(SessionObs::new(&recorder)));
        let mut session = AnalysisSession {
            layout,
            mapping: config.mapping,
            scaling: config.scaling,
            state: ViewState::new(),
            slice,
            leaf_edges,
            breakdown: Vec::new(),
            frontier: Vec::new(),
            index,
            cache: RefCell::new(HashMap::new()),
            revision: 0,
            recorder,
            obs,
            trace,
        };
        session.frontier = session.state.visible(session.trace.containers());
        for &c in &session.frontier.clone() {
            session.layout.add_node(key(c), session.charge_of(c));
        }
        session.sync_edges();
        session
    }
}

impl AnalysisSession {
    /// Starts a [`SessionBuilder`] over `trace` — the one constructor.
    /// Takes an owned [`Trace`] or a shared `Arc<Trace>`; see
    /// [`SessionBuilder::new`].
    pub fn builder(trace: impl Into<Arc<Trace>>) -> SessionBuilder {
        SessionBuilder::new(trace)
    }

    /// Creates a session over `trace` alone; the topology graph is
    /// inferred from the trace's communication pairs.
    #[deprecated(since = "0.3.0", note = "use `AnalysisSession::builder(trace).config(config).build()`")]
    pub fn new(trace: Trace, config: SessionConfig) -> AnalysisSession {
        AnalysisSession::builder(trace).config(config).build()
    }

    /// Creates a session over a trace recorded on `platform`.
    #[deprecated(
        since = "0.3.0",
        note = "use `AnalysisSession::builder(trace).config(config).platform(platform).build()`"
    )]
    pub fn with_platform(
        trace: Trace,
        config: SessionConfig,
        platform: &Platform,
    ) -> AnalysisSession {
        AnalysisSession::builder(trace).config(config).platform(platform).build()
    }

    /// Creates a session with explicit leaf-container relationships.
    #[deprecated(
        since = "0.3.0",
        note = "use `AnalysisSession::builder(trace).config(config).edges(leaf_edges).build()`"
    )]
    pub fn with_edges(
        trace: Trace,
        config: SessionConfig,
        leaf_edges: Vec<(ContainerId, ContainerId)>,
    ) -> AnalysisSession {
        AnalysisSession::builder(trace).config(config).edges(leaf_edges).build()
    }

    /// Charge of a (possibly aggregated) node: the number of leaves it
    /// stands for (§4.2: an aggregate's charge is the sum of its
    /// members').
    fn charge_of(&self, c: ContainerId) -> f64 {
        self.trace.containers().leaves_under(c).len().max(1) as f64
    }

    /// The trace under analysis.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The shared handle to the trace under analysis. Cloning the
    /// `Arc` (not the trace) is how checkpointing and the server's
    /// `TraceStore` hold the same data without copying it.
    pub fn shared_trace(&self) -> Arc<Trace> {
        Arc::clone(&self.trace)
    }

    /// The shared aggregation index, when the session has one. Pass it
    /// to [`SessionBuilder::shared_index`] to build sibling sessions
    /// over the same trace without re-indexing.
    pub fn shared_index(&self) -> Option<Arc<AggIndex>> {
        self.index.clone()
    }

    /// The observability recorder the session reports into (disabled
    /// unless one was wired via [`SessionBuilder::recorder`]). Snapshot
    /// it to read the session's counters, gauges, and span histograms.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Clears the aggregate cache, tallying the dropped entries.
    fn clear_cache(&self) {
        let mut cache = self.cache.borrow_mut();
        if let Some(obs) = &self.obs {
            obs.invalidated.add(cache.len() as u64);
        }
        cache.clear();
    }

    /// The session's **view revision**: a monotonically increasing
    /// counter bumped by every operation that may change what
    /// [`view`](AnalysisSession::view) or
    /// [`render`](AnalysisSession::render) produce next (slice changes,
    /// collapse/expand, slider access, drags, layout steps). Two calls
    /// at the same revision render byte-identically, so `(revision,
    /// viewport, theme)` is a sound cache key for rendered frames — the
    /// serving layer's frame cache is built on it.
    ///
    /// The bump is pessimistic: handing out a `&mut` slider config
    /// counts as a change even if the caller writes nothing. A stale
    /// key then only costs a cache miss, never a stale frame.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Records a state change that may affect subsequent views.
    fn touch(&mut self) {
        self.revision += 1;
    }

    /// Forces the view revision to `revision`, dropping every cached
    /// aggregate. This exists for **session restore only**: a session
    /// rebuilt from a checkpoint replays its state through the normal
    /// mutators (each of which bumps the revision), then snaps the
    /// counter back to the checkpointed value so frame-identity holds
    /// across the restore — two renders at the same revision are
    /// byte-identical, and the restored session's first render carries
    /// the same revision the live session's did. Never call this on a
    /// session whose frames are already cached under higher revisions;
    /// a restored session starts with an empty frame cache.
    pub fn restore_revision(&mut self, revision: u64) {
        self.clear_cache();
        self.revision = revision;
    }

    // -----------------------------------------------------------------
    // Live streaming (see DESIGN.md §16)
    // -----------------------------------------------------------------

    /// Whether the current slice covers the full recorded extent — such
    /// a slice *tracks* the extent as live samples grow it, so a
    /// streaming session keeps showing "everything so far" until the
    /// analyst narrows the window by hand.
    fn slice_tracks_extent(&self) -> bool {
        self.slice.start() == self.trace.start() && self.slice.end() == self.trace.end()
    }

    /// Applies one validated live sample in place: trace signal push,
    /// incremental [`AggIndex`] insert (bit-identical to a rebuild),
    /// extent-tracking slice growth, and precise cache invalidation of
    /// the leaf's ancestor chain. `O(depth)` — a live session never
    /// re-indexes on the sample fast path.
    ///
    /// The shared trace/index `Arc`s are copy-on-write
    /// ([`Arc::make_mut`]): a live session normally holds the only
    /// reference and mutates in place; if a checkpoint or sibling still
    /// shares the allocation, the first live write clones it rather
    /// than mutating data someone else sees.
    ///
    /// # Errors
    ///
    /// [`TraceError`] when the sample is rejected (non-monotonic time,
    /// non-finite input) — callers that pre-validate with
    /// [`viva_trace::live::classify`] never see this, and the session
    /// is unchanged when it happens.
    pub fn live_apply_sample(
        &mut self,
        container: ContainerId,
        metric: MetricId,
        t: f64,
        v: f64,
    ) -> Result<(), TraceError> {
        let tracked = self.slice_tracks_extent();
        let prior = Arc::make_mut(&mut self.trace).live_push_sample(container, metric, t, v)?;
        if let Some(index) = &mut self.index {
            Arc::make_mut(index).insert_sample(&self.trace, container, metric, t, v, prior);
        }
        if tracked && !self.slice_tracks_extent() {
            // The sample grew the extent: follow it, dropping every
            // cached aggregate (they integrated over the old slice).
            self.slice = TimeSlice::new(self.trace.start(), self.trace.end());
            self.clear_cache();
        } else {
            self.invalidate_chain(container);
        }
        self.touch();
        Ok(())
    }

    /// Books one quarantined non-finite live sample: per-pair counter,
    /// dropped tally, index quarantine sums, and the ancestor chain's
    /// cached badges.
    pub fn live_quarantine_sample(&mut self, container: ContainerId, metric: MetricId) {
        Arc::make_mut(&mut self.trace).live_note_quarantined(container, metric);
        if let Some(index) = &mut self.index {
            Arc::make_mut(index).note_quarantine(&self.trace, metric);
        }
        self.invalidate_chain(container);
        self.touch();
    }

    /// Books one dropped (malformed) live record — surfaces in
    /// [`GraphView::ingest_dropped`] and the SVG degraded-data badge.
    pub fn live_note_dropped(&mut self) {
        Arc::make_mut(&mut self.trace).live_note_dropped();
        self.touch();
    }

    /// Swaps the session onto a rebuilt trace/index pair while keeping
    /// the analyst's interaction state — collapse set, layout
    /// positions, sliders — intact.
    ///
    /// This is the structural-record path of a live session: container,
    /// metric, span, state and link records cannot be folded in
    /// incrementally, so the server reloads the accumulated stream text
    /// and rebases. It is sound because live streams are append-only —
    /// container and metric ids are dense and stable, so every
    /// `NodeKey`, collapse entry and cache key minted against the old
    /// trace still names the same entity in the new one. New containers
    /// join the layout frontier exactly as an expand would place them;
    /// the topology edge set is re-derived from the new trace's
    /// communication pairs (live sessions infer edges — platform-wired
    /// sessions are not rebased).
    pub fn rebase(&mut self, trace: impl Into<Arc<Trace>>, index: Option<Arc<AggIndex>>) {
        let tracked = self.slice_tracks_extent();
        self.trace = trace.into();
        self.index = index;
        self.leaf_edges = self.trace.communication_pairs();
        self.slice = if tracked {
            TimeSlice::new(self.trace.start(), self.trace.end())
        } else {
            self.slice.clamped_to(self.trace.start(), self.trace.end())
        };
        self.clear_cache();
        self.apply_state();
        self.touch();
    }

    /// Drops cached aggregates for `c` and its ancestors — the only
    /// visible nodes whose aggregate can include a new sample on `c`.
    fn invalidate_chain(&mut self, c: ContainerId) {
        let tree = self.trace.containers();
        let mut cache = self.cache.borrow_mut();
        let mut removed = 0u64;
        let mut cur = Some(c);
        while let Some(g) = cur {
            if cache.remove(&g).is_some() {
                removed += 1;
            }
            cur = tree.node(g).parent();
        }
        drop(cache);
        if let Some(obs) = &self.obs {
            obs.invalidated.add(removed);
        }
    }

    /// Current time-slice.
    pub fn time_slice(&self) -> TimeSlice {
        self.slice
    }

    /// Sets the time-slice (§3.2.1), clamped to the recorded extent of
    /// the trace (a cursor dragged past the end must not integrate over
    /// time that was never recorded). Returns the effective slice.
    /// Values shown by the next [`view`](AnalysisSession::view) are
    /// aggregated over it.
    pub fn set_time_slice(&mut self, slice: TimeSlice) -> TimeSlice {
        let clamped = slice.clamped_to(self.trace.start(), self.trace.end());
        if clamped != self.slice {
            // Every cached aggregate was integrated over the old slice.
            self.clear_cache();
            if let Some(obs) = &self.obs {
                obs.slice_changes.inc();
            }
            self.touch();
        }
        self.slice = clamped;
        self.slice
    }

    /// Sets the time-slice from raw, untrusted bounds (slider
    /// positions, typed values): rejects NaN/infinite or inverted
    /// bounds, clamps the rest to the trace extent, and returns the
    /// effective slice.
    pub fn try_set_time_slice(&mut self, start: f64, end: f64) -> Result<TimeSlice, SessionError> {
        let slice = TimeSlice::try_new(start, end)?;
        Ok(self.set_time_slice(slice))
    }

    /// Validates that a container id refers to a node of this trace.
    fn check_container(&self, c: ContainerId) -> Result<(), SessionError> {
        if self.trace.containers().get(c).is_none() {
            return Err(SessionError::UnknownContainer(c));
        }
        Ok(())
    }

    /// Configures the pie-chart breakdown: each node shows the relative
    /// shares of these metrics (e.g. `power_used:app1`,
    /// `power_used:app2`) as a pie glyph — the paper's §6 "increasing
    /// graphical object flexibility (e.g., pie-charts...)" extension.
    ///
    /// Every name is validated against the trace's metric registry; on
    /// the first unknown name the whole call is rejected and the
    /// previous breakdown stays in place (metric names are typed UI
    /// input, and a silently-ignored typo would render as "no pie" with
    /// no hint why).
    pub fn set_breakdown_metrics(&mut self, metrics: Vec<String>) -> Result<(), SessionError> {
        if let Some(unknown) = metrics.iter().find(|n| self.trace.metric_id(n).is_none()) {
            return Err(SessionError::UnknownMetric(unknown.clone()));
        }
        self.breakdown = metrics;
        // Cached partials carry the old breakdown's pie segments.
        self.clear_cache();
        self.touch();
        Ok(())
    }

    /// Read access to the collapse state.
    pub fn view_state(&self) -> &ViewState {
        &self.state
    }

    /// The visual mapping (mutable: mappings "can be dynamically
    /// changed at a given point of the analysis", §3.1).
    ///
    /// Handing out the mutable borrow conservatively drops every cached
    /// view aggregate — the mapping decides which metrics each node
    /// aggregates.
    pub fn mapping_mut(&mut self) -> &mut MappingConfig {
        self.clear_cache();
        self.touch();
        &mut self.mapping
    }

    /// Read access to the per-type size scaling (§4.1).
    pub fn scaling(&self) -> &ScalingConfig {
        &self.scaling
    }

    /// The per-type size scaling and its sliders (§4.1). Scaling only
    /// affects the per-frontier pixel pass, which is recomputed on
    /// every [`view`](AnalysisSession::view) — no cached aggregate
    /// depends on it, so no invalidation happens here.
    pub fn scaling_mut(&mut self) -> &mut ScalingConfig {
        self.touch();
        &mut self.scaling
    }

    /// The layout parameters — the charge/spring/damping sliders of
    /// §4.2.
    pub fn layout_config_mut(&mut self) -> &mut LayoutConfig {
        self.touch();
        self.layout.config_mut()
    }

    /// Direct access to the layout engine (pinning, dragging,
    /// stepping).
    pub fn layout_mut(&mut self) -> &mut LayoutEngine {
        self.touch();
        &mut self.layout
    }

    /// Read access to the layout engine.
    pub fn layout(&self) -> &LayoutEngine {
        &self.layout
    }

    /// Collapses `group` into one aggregated node (§3.2.2, Fig. 3).
    /// No-op if the group is already hidden or collapsed; fails on a
    /// container id the trace does not contain.
    pub fn collapse(&mut self, group: ContainerId) -> Result<(), SessionError> {
        self.check_container(group)?;
        if self.state.is_collapsed(group) {
            return Ok(());
        }
        self.state.collapse(group);
        self.invalidate_subtree(group);
        self.apply_state();
        if let Some(obs) = &self.obs {
            obs.collapses.inc();
        }
        self.touch();
        Ok(())
    }

    /// Expands a collapsed group back into its members. No-op if the
    /// group is not collapsed; fails on an unknown container id.
    pub fn expand(&mut self, group: ContainerId) -> Result<(), SessionError> {
        self.check_container(group)?;
        if !self.state.is_collapsed(group) {
            return Ok(());
        }
        self.state.expand(group);
        self.invalidate_subtree(group);
        self.apply_state();
        if let Some(obs) = &self.obs {
            obs.expands.inc();
        }
        self.touch();
        Ok(())
    }

    /// Drops cached view aggregates for `group` and everything under it
    /// — the only entries a collapse/expand of `group` can dirty (other
    /// frontier nodes keep their neighbourhood, hence their values).
    fn invalidate_subtree(&mut self, group: ContainerId) {
        let mut cache = self.cache.borrow_mut();
        let mut removed = 0u64;
        for c in self.trace.containers().subtree(group) {
            if cache.remove(&c).is_some() {
                removed += 1;
            }
        }
        if let Some(obs) = &self.obs {
            obs.invalidated.add(removed);
        }
    }

    /// Jumps to one hierarchy level (Fig. 8: host / cluster / site /
    /// grid views): collapses every grouping container at `depth`.
    pub fn collapse_at_depth(&mut self, depth: u32) {
        let tree = self.trace.containers();
        let mut next = self.state.clone();
        next.collapse_at_depth(tree, depth);
        self.state = next;
        // A level jump can dirty the whole frontier.
        self.clear_cache();
        self.apply_state();
        if let Some(obs) = &self.obs {
            obs.collapses.inc();
        }
        self.touch();
    }

    /// Expands everything (finest view).
    pub fn expand_all(&mut self) {
        self.state.expand_all();
        self.clear_cache();
        self.apply_state();
        if let Some(obs) = &self.obs {
            obs.expands.inc();
        }
        self.touch();
    }

    /// Reconciles the layout with the current collapse state: new
    /// aggregates swallow their visible members (barycenter placement),
    /// expanded groups spawn members around the old aggregate, and the
    /// edge set is re-lifted.
    fn apply_state(&mut self) {
        let tree = self.trace.containers();
        let new_frontier = self.state.visible(tree);
        let old_set: HashSet<ContainerId> = self.frontier.iter().copied().collect();
        let new_set: HashSet<ContainerId> = new_frontier.iter().copied().collect();

        let is_ancestor_of = |anc: ContainerId, node: ContainerId| {
            tree.node(node).depth() > tree.node(anc).depth()
                && tree.ancestor_at_depth(node, tree.node(anc).depth()) == Some(anc)
        };

        // 1. Additions that aggregate existing nodes: merge.
        for &a in &new_frontier {
            if old_set.contains(&a) {
                continue;
            }
            let members: Vec<ContainerId> = self
                .frontier
                .iter()
                .copied()
                .filter(|&o| !new_set.contains(&o) && is_ancestor_of(a, o))
                .collect();
            if !members.is_empty() {
                let member_keys: Vec<NodeKey> = members.iter().map(|&m| key(m)).collect();
                self.layout.merge_nodes(key(a), &member_keys);
                self.layout.set_charge(key(a), self.charge_of(a));
            }
        }
        // 2. Removals that disaggregate into new nodes: split.
        for &r in &self.frontier.clone() {
            if new_set.contains(&r) || self.layout.position(key(r)).is_none() {
                continue;
            }
            let children: Vec<(NodeKey, f64)> = new_frontier
                .iter()
                .copied()
                .filter(|&n| !old_set.contains(&n) && is_ancestor_of(r, n))
                .map(|n| (key(n), self.charge_of(n)))
                .collect();
            if !children.is_empty() {
                self.layout.split_node(key(r), &children);
            } else {
                self.layout.remove_node(key(r));
            }
        }
        // 3. Anything still missing (e.g. a node that is both new and
        // unrelated to the old frontier) gets a fresh spot.
        for &a in &new_frontier {
            if self.layout.position(key(a)).is_none() {
                self.layout.add_node(key(a), self.charge_of(a));
            }
        }
        self.frontier = new_frontier;
        self.sync_edges();
    }

    /// Rebuilds the layout's edge set from the leaf relationships
    /// lifted to the visible frontier.
    fn sync_edges(&mut self) {
        let tree = self.trace.containers();
        let mut desired: HashSet<(NodeKey, NodeKey)> = HashSet::new();
        for &(a, b) in &self.leaf_edges {
            let (Some(ra), Some(rb)) = (
                self.state.representative(tree, a),
                self.state.representative(tree, b),
            ) else {
                continue;
            };
            if ra == rb {
                continue;
            }
            let (ka, kb) = (key(ra), key(rb));
            desired.insert(if ka <= kb { (ka, kb) } else { (kb, ka) });
        }
        let current: Vec<(NodeKey, NodeKey)> = self.layout.edges().collect();
        for (a, b) in current {
            if !desired.contains(&(a, b)) {
                self.layout.remove_edge(a, b);
            }
        }
        for (a, b) in desired {
            if !self.layout.has_edge(a, b) {
                self.layout.add_edge(a, b);
            }
        }
    }

    /// Runs up to `steps` layout iterations (stops early on
    /// convergence). Returns the number of steps executed.
    pub fn relax(&mut self, steps: usize) -> usize {
        let _phase = self.recorder.tracer().phase("layout.step");
        let executed = self.layout.run(steps, 1e-4);
        if executed > 0 {
            if let Some(obs) = &self.obs {
                obs.relax_steps.add(executed as u64);
            }
            self.touch();
        }
        executed
    }

    /// Sets the repulsion-pass thread policy of the layout engine:
    /// `None` decides from node count and available cores, `Some(1)`
    /// forces serial, `Some(n)` forces `n` threads. Positions are
    /// byte-identical under every policy.
    pub fn set_layout_parallelism(&mut self, threads: Option<usize>) {
        self.layout.set_parallelism(threads);
    }

    /// The current repulsion-pass thread policy.
    pub fn layout_parallelism(&self) -> Option<usize> {
        self.layout.parallelism()
    }

    /// Whether the layout watchdog froze the simulation, and why
    /// (`None` while running). Frozen layouts keep serving their last
    /// healthy positions — views and renders continue to work.
    pub fn layout_freeze_reason(&self) -> Option<FreezeReason> {
        self.layout.freeze_reason()
    }

    /// Lifts a layout watchdog freeze and resumes stepping (see
    /// [`LayoutEngine::thaw`]).
    pub fn thaw_layout(&mut self) {
        self.layout.thaw();
        self.touch();
    }

    /// Sets the opt-in wall-clock budget for a single layout step.
    /// `None` (the default) disables the wall-clock watchdog and keeps
    /// layouts byte-deterministic across machines; interactive
    /// front-ends with a frame deadline opt in.
    pub fn set_layout_step_budget(&mut self, budget: Option<std::time::Duration>) {
        self.layout.set_step_budget(budget);
    }

    /// Validates that `c` is drawn in the current view: known to the
    /// trace, and neither hidden inside a collapsed ancestor nor an
    /// expanded internal grouping (which has no node of its own). The
    /// check is made against the collapse *state*, not against layout
    /// membership, so a hidden container is reported as hidden even if
    /// a stale layout node were ever to linger for it — the layout must
    /// never be silently mutated through an invisible handle.
    fn check_visible(&self, c: ContainerId) -> Result<(), SessionError> {
        self.check_container(c)?;
        if self.state.representative(self.trace.containers(), c) != Some(c) {
            return Err(SessionError::HiddenContainer(c));
        }
        Ok(())
    }

    /// Drags the node of `container` to `pos` and pins it there. Fails
    /// on an unknown container id, on a container that is not currently
    /// visible (hidden inside a collapsed group, or an expanded
    /// grouping with no node of its own), and on a non-finite target
    /// position.
    pub fn drag(&mut self, container: ContainerId, pos: Vec2) -> Result<(), SessionError> {
        self.check_visible(container)?;
        if !(pos.x.is_finite() && pos.y.is_finite()) {
            return Err(SessionError::NonFinitePosition { x: pos.x, y: pos.y });
        }
        let k = key(container);
        // A visible container always has a layout node (`apply_state`
        // keeps the two in lockstep), so this cannot fail — but if the
        // invariant ever broke, report rather than pin thin air.
        if !self.layout.move_node(k, pos) {
            return Err(SessionError::HiddenContainer(container));
        }
        self.layout.pin(k);
        self.touch();
        Ok(())
    }

    /// Releases a pinned node back to the force simulation. Fails on
    /// unknown or currently invisible containers, like
    /// [`drag`](AnalysisSession::drag).
    pub fn release(&mut self, container: ContainerId) -> Result<(), SessionError> {
        self.check_visible(container)?;
        if !self.layout.unpin(key(container)) {
            return Err(SessionError::HiddenContainer(container));
        }
        self.touch();
        Ok(())
    }

    /// The aggregation source views and aggregates draw from.
    fn agg_source(&self) -> AggSource<'_> {
        match &self.index {
            Some(idx) => AggSource::Indexed(idx),
            None => AggSource::Naive,
        }
    }

    /// Computes the scene for the current slice, collapse state,
    /// mapping, scaling and layout. Per-node aggregates are served from
    /// the session cache when the relevant state did not change since
    /// the last view; missing entries are computed through the
    /// aggregation index (`O(log n)` per query) unless the session was
    /// built [`without_index`](SessionBuilder::without_index).
    pub fn view(&self) -> GraphView {
        let _timer = self.obs.as_ref().map(|obs| {
            obs.views.inc();
            obs.view_seconds.start_timer()
        });
        let mut cache = self.cache.borrow_mut();
        build_view_cached(
            &self.trace,
            &self.state,
            self.slice,
            &self.mapping,
            &self.scaling,
            &|c| self.layout.position(key(c)).unwrap_or_default(),
            &self.leaf_edges,
            &self.breakdown,
            self.agg_source(),
            &mut cache,
        )
    }

    /// The scene under `viewport`'s level-of-detail camera: the cut
    /// decides which frontier nodes are drawn individually and which
    /// subtrees become aggregate [`crate::view::ViewTile`]s. Without a
    /// camera this is exactly [`view`](AnalysisSession::view).
    pub fn view_lod(&self, viewport: &Viewport) -> GraphView {
        match viewport.camera {
            None => self.view(),
            Some(cam) => self.lod_scene(&cam, viewport).0,
        }
    }

    /// Builds the level-of-detail scene and the projection it was cut
    /// against. The projection fits the **full** frontier bounds (so
    /// an identity camera reproduces the classic framing bit for bit)
    /// and must be reused for rendering — refitting to the kept subset
    /// would shift the frame.
    fn lod_scene(&self, camera: &Camera, viewport: &Viewport) -> (GraphView, svg::Projection) {
        let opts = svg::SvgOptions::from(viewport);
        let tree = self.trace.containers();
        // Memoize frontier positions into a dense table: the bounds
        // fold, the cut's bbox accumulation, and the scene build all
        // read positions, and at 100k hosts the per-call layout map
        // lookup dominates the frame otherwise.
        let mut memo = vec![Vec2::default(); tree.len()];
        for (k, p) in self.layout.positions() {
            if let Some(slot) = memo.get_mut(k.0 as usize) {
                *slot = p;
            }
        }
        let position = |c: ContainerId| memo.get(c.index()).copied().unwrap_or_default();
        let bounds = self.frontier.iter().fold(None, |acc: Option<(Vec2, Vec2)>, &c| {
            let p = position(c);
            Some(match acc {
                None => (p, p),
                Some((lo, hi)) => (lo.min(p), hi.max(p)),
            })
        });
        let proj = svg::Projection::fit_camera(bounds, &opts, camera);
        let cut = {
            let _phase = self.recorder.tracer().phase("lod.cut");
            lod::cut(
                tree,
                &self.frontier,
                &position,
                &|p| proj.project(p),
                opts.width,
                opts.height,
                camera.detail_px,
            )
        };
        let mut cache = self.cache.borrow_mut();
        let view = build_view_lod(
            &self.trace,
            &self.state,
            self.slice,
            &self.mapping,
            &self.scaling,
            &position,
            &self.leaf_edges,
            &self.breakdown,
            self.agg_source(),
            &mut cache,
            &cut,
        );
        (view, proj)
    }

    /// Renders the current view into `viewport` as an SVG document.
    /// With a [`Camera`] on the viewport, rendering goes through the
    /// level-of-detail cut; without one it takes the classic path,
    /// byte-identical to pre-camera releases.
    pub fn render(&self, viewport: &Viewport) -> String {
        match viewport.camera {
            None => {
                let view = self.view();
                let _timer = self.obs.as_ref().map(|obs| obs.render_seconds.start_timer());
                let _phase = self.recorder.tracer().phase("svg.encode");
                svg::render(&view, &svg::SvgOptions::from(viewport))
            }
            Some(cam) => {
                let (view, proj) = self.lod_scene(&cam, viewport);
                let _timer = self.obs.as_ref().map(|obs| obs.render_seconds.start_timer());
                let _phase = self.recorder.tracer().phase("svg.encode");
                svg::render_projected(&view, &svg::SvgOptions::from(viewport), &proj)
            }
        }
    }

    /// Renders the current view to an SVG document.
    #[deprecated(since = "0.3.0", note = "use `render(&Viewport::new(width, height))`")]
    pub fn render_svg(&self, width: f64, height: f64) -> String {
        self.render(&Viewport::new(width, height))
    }

    /// Aggregates `metric` over the subtree of `group` and the current
    /// slice (Equation 1 plus §6 indicators) — the numeric companion of
    /// the visual view, used by the figure harnesses. Served through
    /// the aggregation index when the session has one. Fails on an
    /// unknown metric name or container id; a *known* group with no
    /// surviving data yields an aggregate with
    /// [`GroupAggregate::is_empty`] set.
    pub fn aggregate(&self, metric: &str, group: ContainerId) -> Result<GroupAggregate, SessionError> {
        let _phase = self.recorder.tracer().phase("agg.query");
        self.check_container(group)?;
        let m = self
            .trace
            .metric_id(metric)
            .ok_or_else(|| SessionError::UnknownMetric(metric.to_string()))?;
        Ok(match &self.index {
            Some(idx) => idx.aggregate(&self.trace, m, group, self.slice),
            None => GroupAggregate::compute(&self.trace, m, group, self.slice),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viva_trace::{ContainerKind, TraceBuilder};

    /// Two clusters of two hosts; one link per cluster; one backbone
    /// link under the root; edges host—link—host chains.
    fn session() -> AnalysisSession {
        let mut b = TraceBuilder::new();
        let power = b.metric("power", "MFlop/s");
        let used = b.metric("power_used", "MFlop/s");
        let bw = b.metric("bandwidth", "Mbit/s");
        let mut hosts = Vec::new();
        let mut clusters = Vec::new();
        for cn in ["c1", "c2"] {
            let cl = b.new_container(b.root(), cn, ContainerKind::Cluster).unwrap();
            clusters.push(cl);
            for i in 0..2 {
                let h = b
                    .new_container(cl, format!("{cn}-h{i}"), ContainerKind::Host)
                    .unwrap();
                b.set_variable(0.0, h, power, 100.0).unwrap();
                b.set_variable(0.0, h, used, 60.0).unwrap();
                hosts.push(h);
            }
        }
        let bb = b.new_container(b.root(), "bb", ContainerKind::Link).unwrap();
        b.set_variable(0.0, bb, bw, 1000.0).unwrap();
        let trace = b.finish(10.0);
        let edges = vec![
            (hosts[0], hosts[1]),
            (hosts[2], hosts[3]),
            (hosts[1], bb),
            (bb, hosts[2]),
        ];
        AnalysisSession::builder(trace).edges(edges).build()
    }

    /// Same topology as [`session`], but reporting into `recorder`.
    fn observed_session(recorder: Recorder) -> AnalysisSession {
        let plain = session();
        let trace = plain.trace().clone();
        let edges = plain.leaf_edges.clone();
        AnalysisSession::builder(trace).edges(edges).recorder(recorder).build()
    }

    #[test]
    fn recorder_observes_session_lifecycle_without_changing_views() {
        let r = Recorder::enabled();
        let mut s = observed_session(r.clone());
        let mut plain = session();
        assert!(s.recorder().is_enabled());
        assert_eq!(r.counter("agg.index.builds").get(), 1);

        // Drive both sessions identically; outputs must agree exactly.
        let c1 = s.trace().containers().by_name("c1").unwrap().id();
        for sess in [&mut s, &mut plain] {
            sess.set_time_slice(TimeSlice::new(2.0, 8.0));
            sess.view();
            sess.collapse(c1).unwrap();
            sess.view();
            sess.expand(c1).unwrap();
            sess.view();
            sess.set_time_slice(TimeSlice::new(0.0, 5.0));
            sess.relax(10);
        }
        let vp = Viewport::new(640.0, 480.0);
        assert_eq!(s.render(&vp), plain.render(&vp), "metrics must not change a frame");

        assert_eq!(r.counter("session.slice_changes").get(), 2);
        assert_eq!(r.counter("session.collapses").get(), 1);
        assert_eq!(r.counter("session.expands").get(), 1);
        assert_eq!(r.counter("session.views").get(), 4, "3 views + 1 inside render");
        assert!(r.counter("session.cache.invalidated").get() > 0);
        assert_eq!(r.counter("session.relax.steps").get(), 10);
        assert_eq!(r.counter("layout.steps").get(), 10);
        assert_eq!(r.histogram("session.render.seconds").count(), 1);
        assert!(r.counter("agg.index.queries").get() > 0, "views query the index");
    }

    #[test]
    fn initial_frontier_is_all_leaves() {
        let s = session();
        let view = s.view();
        // 4 hosts + 1 link.
        assert_eq!(view.nodes.len(), 5);
        assert_eq!(s.layout().len(), 5);
        assert_eq!(view.edges.len(), 4);
    }

    #[test]
    fn collapse_merges_layout_nodes_and_lifts_edges() {
        let mut s = session();
        let c1 = s.trace().containers().by_name("c1").unwrap().id();
        s.collapse(c1).unwrap();
        let view = s.view();
        // c1 aggregate + 2 hosts of c2 + bb link.
        assert_eq!(view.nodes.len(), 4);
        assert_eq!(s.layout().len(), 4);
        let agg = view.node_by_label("c1").unwrap();
        assert_eq!(agg.members, 2);
        assert_eq!(agg.size_value, 200.0);
        // The intra-c1 edge vanished; the bb edge lifted to c1.
        let bb = s.trace().containers().by_name("bb").unwrap().id();
        assert!(view.edges.iter().any(|e| (e.a == c1 && e.b == bb) || (e.a == bb && e.b == c1)));
        // Aggregate charge = 2 leaves.
        assert_eq!(s.layout().charge(key(c1)), Some(2.0));
    }

    #[test]
    fn expand_restores_members_near_aggregate() {
        let mut s = session();
        let c1 = s.trace().containers().by_name("c1").unwrap().id();
        s.relax(100);
        s.collapse(c1).unwrap();
        let agg_pos = s.layout().position(key(c1)).unwrap();
        s.expand(c1).unwrap();
        let view = s.view();
        assert_eq!(view.nodes.len(), 5);
        let h0 = s.trace().containers().by_name("c1-h0").unwrap().id();
        let p = s.layout().position(key(h0)).unwrap();
        assert!(p.distance(agg_pos) < s.layout().config().spring_length * 2.0);
    }

    #[test]
    fn collapse_at_depth_matches_level_views() {
        let mut s = session();
        s.collapse_at_depth(1); // cluster level
        let view = s.view();
        // c1, c2 aggregates + bb link (a leaf at depth 1).
        assert_eq!(view.nodes.len(), 3);
        s.collapse_at_depth(0); // grid level
        assert_eq!(s.view().nodes.len(), 1);
        s.expand_all();
        assert_eq!(s.view().nodes.len(), 5);
    }

    #[test]
    fn double_collapse_is_idempotent() {
        let mut s = session();
        let c1 = s.trace().containers().by_name("c1").unwrap().id();
        s.collapse(c1).unwrap();
        let n = s.layout().len();
        s.collapse(c1).unwrap();
        assert_eq!(s.layout().len(), n);
        s.expand(c1).unwrap();
        s.expand(c1).unwrap();
        assert_eq!(s.layout().len(), 5);
    }

    #[test]
    fn drag_pins_and_release_unpins() {
        let mut s = session();
        let h = s.trace().containers().by_name("c1-h0").unwrap().id();
        s.drag(h, Vec2::new(123.0, 45.0)).unwrap();
        assert_eq!(s.layout().position(key(h)), Some(Vec2::new(123.0, 45.0)));
        s.relax(50);
        assert_eq!(
            s.layout().position(key(h)),
            Some(Vec2::new(123.0, 45.0)),
            "pinned node stays put"
        );
        s.release(h).unwrap();
        assert!(!s.layout().is_pinned(key(h)));
    }

    #[test]
    fn time_slice_drives_view_values() {
        let mut s = session();
        s.set_time_slice(TimeSlice::new(0.0, 5.0));
        let h = s.trace().containers().by_name("c1-h0").unwrap().id();
        assert_eq!(s.view().node(h).unwrap().fill_value, 60.0);
        let agg = s.aggregate("power_used", h).unwrap();
        assert_eq!(agg.integral, 300.0);
    }

    #[test]
    fn svg_renders_all_nodes() {
        let mut s = session();
        s.relax(100);
        let svg = s.render(&Viewport::new(800.0, 600.0));
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("class=\"node").count(), 5);
    }

    /// The identity camera (zoom 1, pan 0, tiling off) runs the whole
    /// level-of-detail machinery — frontier bounds fit, cut, LoD scene
    /// build, explicit-projection render — and must reproduce the
    /// classic path byte for byte.
    #[test]
    fn identity_camera_render_is_byte_identical() {
        let mut s = session();
        s.relax(50);
        for (w, h, labels) in [(800.0, 600.0, false), (640.0, 480.0, true)] {
            let plain = Viewport::new(w, h).with_labels(labels);
            let lod = plain.clone().with_camera(Camera::new(1.0, 0.0, 0.0).with_detail_px(0.0));
            assert_eq!(s.render(&plain), s.render(&lod), "{w}x{h} labels={labels}");
            let lv = s.view_lod(&lod);
            assert!(lv.tiles.is_empty());
            assert_eq!(lv, s.view());
        }
    }

    /// When the camera cannot resolve the scene, everything collapses
    /// into one root tile whose aggregate equals what an explicit
    /// collapse of the root would show — the tile is an automatic
    /// §3.2.2 aggregation, not a new kind of value.
    #[test]
    fn unresolvable_scene_tiles_to_the_root_with_collapse_equal_values() {
        let mut s = session();
        s.relax(50);
        let root = s.trace().containers().root();
        let vp = Viewport::new(800.0, 600.0)
            .with_camera(Camera::new(1.0, 0.0, 0.0).with_detail_px(1e6));
        let view = s.view_lod(&vp);
        assert!(view.nodes.is_empty());
        assert_eq!(view.edges.len(), 0, "edges inside one tile vanish");
        assert_eq!(view.tiles.len(), 1);
        let tile = view.tiles[0].clone();
        assert_eq!(tile.container, root);
        assert_eq!(tile.nodes, 5);
        // The tile renders as a tile glyph carrying its count.
        let svg = s.render(&vp);
        assert!(svg.contains("class=\"tile\""), "{svg}");
        assert!(svg.contains(r#"data-nodes="5""#), "{svg}");
        // Reference: collapse the root for real and compare values.
        s.collapse(root).unwrap();
        let collapsed = s.view();
        let node = collapsed.node(root).unwrap();
        assert_eq!(tile.size_value, node.size_value);
        assert_eq!(tile.fill_value, node.fill_value);
        assert_eq!(tile.fill_fraction, node.fill_fraction);
        assert_eq!(tile.availability, node.availability);
        assert_eq!(tile.quarantined, node.quarantined);
        // After the analyst collapses the root for real, the camera
        // draws the aggregate as a real node — explicit collapse wins
        // over automatic tiling.
        let lod_view = s.view_lod(&vp);
        assert_eq!(lod_view.nodes.len(), 1);
        assert!(lod_view.tiles.is_empty());
    }

    /// Panning the whole scene off the canvas leaves a single
    /// offscreen tile hugging the border.
    #[test]
    fn fully_panned_out_scene_becomes_an_offscreen_tile() {
        let mut s = session();
        s.relax(50);
        let vp = Viewport::new(800.0, 600.0).with_camera(Camera::new(1.0, 100_000.0, 0.0));
        let view = s.view_lod(&vp);
        assert!(view.nodes.is_empty());
        assert_eq!(view.tiles.len(), 1);
        assert!(view.tiles[0].offscreen);
        assert_eq!(view.tiles[0].container, s.trace().containers().root());
        let svg = s.render(&vp);
        assert!(svg.contains("class=\"tile offscreen\""), "{svg}");
    }

    #[test]
    fn unknown_ids_are_reported_not_panicked() {
        let mut s = session();
        let bogus = ContainerId::from_index(999);
        assert_eq!(s.collapse(bogus), Err(SessionError::UnknownContainer(bogus)));
        assert_eq!(s.expand(bogus), Err(SessionError::UnknownContainer(bogus)));
        assert_eq!(
            s.drag(bogus, Vec2::new(0.0, 0.0)),
            Err(SessionError::UnknownContainer(bogus))
        );
        assert_eq!(s.release(bogus), Err(SessionError::UnknownContainer(bogus)));
        assert_eq!(
            s.aggregate("power_used", bogus),
            Err(SessionError::UnknownContainer(bogus))
        );
        // Valid session state is untouched by the failed operations.
        assert_eq!(s.view().nodes.len(), 5);
    }

    #[test]
    fn hidden_container_cannot_be_dragged() {
        let mut s = session();
        let c1 = s.trace().containers().by_name("c1").unwrap().id();
        let h0 = s.trace().containers().by_name("c1-h0").unwrap().id();
        s.collapse(c1).unwrap();
        assert_eq!(
            s.drag(h0, Vec2::new(1.0, 1.0)),
            Err(SessionError::HiddenContainer(h0))
        );
    }

    /// Regression: a container hidden *deep* inside nested collapses
    /// (not merely one level down) must be rejected with a typed error
    /// by both `drag` and `release` — never silently pinned. The check
    /// runs against the collapse state, so it holds regardless of what
    /// the layout engine happens to contain.
    #[test]
    fn deeply_hidden_container_cannot_be_dragged_or_released() {
        let mut s = session();
        let c1 = s.trace().containers().by_name("c1").unwrap().id();
        let root = s.trace().containers().root();
        let h0 = s.trace().containers().by_name("c1-h0").unwrap().id();
        s.collapse(c1).unwrap();
        s.collapse(root).unwrap();
        // h0 is hidden two collapse levels deep; c1 one level deep.
        for hidden in [h0, c1] {
            assert_eq!(
                s.drag(hidden, Vec2::new(5.0, 5.0)),
                Err(SessionError::HiddenContainer(hidden))
            );
            assert_eq!(s.release(hidden), Err(SessionError::HiddenContainer(hidden)));
            assert!(!s.layout().is_pinned(key(hidden)), "no invisible pin left behind");
        }
        // The visible aggregate (root) still drags fine.
        s.drag(root, Vec2::new(9.0, 9.0)).unwrap();
    }

    /// Regression: a non-finite drag position on a *visible* node used
    /// to be misreported as `HiddenContainer`; it is its own error now.
    #[test]
    fn non_finite_drag_position_is_typed() {
        let mut s = session();
        let h = s.trace().containers().by_name("c1-h0").unwrap().id();
        let before = s.layout().position(key(h)).unwrap();
        assert!(matches!(
            s.drag(h, Vec2::new(f64::NAN, 0.0)),
            Err(SessionError::NonFinitePosition { .. })
        ));
        assert!(matches!(
            s.drag(h, Vec2::new(0.0, f64::INFINITY)),
            Err(SessionError::NonFinitePosition { .. })
        ));
        assert_eq!(s.layout().position(key(h)), Some(before), "node untouched");
        assert!(!s.layout().is_pinned(key(h)));
    }

    /// The view revision is a sound frame-cache key: it advances on
    /// every state change that could alter a render, and holds still
    /// across pure reads.
    #[test]
    fn revision_tracks_visible_mutations() {
        let mut s = session();
        let r0 = s.revision();
        // Pure reads leave it alone.
        let _ = s.view();
        let _ = s.render(&Viewport::default());
        let _ = s.aggregate("power_used", s.trace().containers().root()).unwrap();
        assert_eq!(s.revision(), r0);
        // Slice change bumps; a no-op slice change does not.
        s.set_time_slice(TimeSlice::new(0.0, 5.0));
        let r1 = s.revision();
        assert!(r1 > r0);
        s.set_time_slice(TimeSlice::new(0.0, 5.0));
        assert_eq!(s.revision(), r1);
        // Collapse/expand bump; idempotent repeats do not.
        let c1 = s.trace().containers().by_name("c1").unwrap().id();
        s.collapse(c1).unwrap();
        let r2 = s.revision();
        assert!(r2 > r1);
        s.collapse(c1).unwrap();
        assert_eq!(s.revision(), r2);
        // Failed operations leave the revision alone.
        assert!(s.drag(ContainerId::from_index(999), Vec2::new(0.0, 0.0)).is_err());
        assert_eq!(s.revision(), r2);
        // Sliders (pessimistically), drags and layout steps bump.
        s.layout_config_mut().repulsion *= 2.0;
        let r3 = s.revision();
        assert!(r3 > r2);
        let h = s.trace().containers().by_name("c2-h0").unwrap().id();
        s.drag(h, Vec2::new(1.0, 2.0)).unwrap();
        assert!(s.revision() > r3);
        let r4 = s.revision();
        s.relax(10);
        assert!(s.revision() > r4);
    }

    #[test]
    fn unknown_metric_is_reported() {
        let s = session();
        let root = s.trace().containers().root();
        assert_eq!(
            s.aggregate("no_such_metric", root),
            Err(SessionError::UnknownMetric("no_such_metric".into()))
        );
    }

    /// Differential test of the whole session hot path: an indexed
    /// session and a rescan session must agree on every view and every
    /// render through a sequence of slice changes and collapse/expand
    /// operations (this also exercises cache invalidation — a stale
    /// cache entry would show up as a view mismatch).
    #[test]
    fn indexed_session_matches_naive_session() {
        let mut fast = session();
        let mut slow = {
            let mut b = TraceBuilder::new();
            let power = b.metric("power", "MFlop/s");
            let used = b.metric("power_used", "MFlop/s");
            let bw = b.metric("bandwidth", "Mbit/s");
            let mut hosts = Vec::new();
            for cn in ["c1", "c2"] {
                let cl = b.new_container(b.root(), cn, ContainerKind::Cluster).unwrap();
                for i in 0..2 {
                    let h = b
                        .new_container(cl, format!("{cn}-h{i}"), ContainerKind::Host)
                        .unwrap();
                    b.set_variable(0.0, h, power, 100.0).unwrap();
                    b.set_variable(0.0, h, used, 60.0).unwrap();
                    hosts.push(h);
                }
            }
            let bb = b.new_container(b.root(), "bb", ContainerKind::Link).unwrap();
            b.set_variable(0.0, bb, bw, 1000.0).unwrap();
            let trace = b.finish(10.0);
            let edges = vec![
                (hosts[0], hosts[1]),
                (hosts[2], hosts[3]),
                (hosts[1], bb),
                (bb, hosts[2]),
            ];
            AnalysisSession::builder(trace).edges(edges).without_index().build()
        };
        let c1 = fast.trace().containers().by_name("c1").unwrap().id();
        let vp = Viewport::default();
        assert_eq!(fast.view(), slow.view());
        for s in [&mut fast, &mut slow] {
            s.set_time_slice(TimeSlice::new(2.0, 7.0));
        }
        assert_eq!(fast.view(), slow.view());
        assert_eq!(fast.render(&vp), slow.render(&vp));
        for s in [&mut fast, &mut slow] {
            s.collapse(c1).unwrap();
        }
        assert_eq!(fast.view(), slow.view());
        for s in [&mut fast, &mut slow] {
            s.set_time_slice(TimeSlice::new(0.0, 4.0));
            s.expand(c1).unwrap();
            s.collapse_at_depth(1);
        }
        assert_eq!(fast.view(), slow.view());
        assert_eq!(fast.render(&vp), slow.render(&vp));
        assert_eq!(
            fast.aggregate("power_used", c1).unwrap(),
            slow.aggregate("power_used", c1).unwrap()
        );
    }

    #[test]
    fn cached_views_are_stable_across_repeats() {
        let mut s = session();
        let first = s.view();
        assert_eq!(first, s.view(), "second (fully cached) view identical");
        s.set_time_slice(TimeSlice::new(1.0, 9.0));
        let after = s.view();
        assert_eq!(after, s.view());
        assert_ne!(first.slice, after.slice);
    }

    #[test]
    fn breakdown_metrics_are_validated() {
        let mut s = session();
        assert_eq!(
            s.set_breakdown_metrics(vec!["power".into(), "nope".into()]),
            Err(SessionError::UnknownMetric("nope".into())),
        );
        // The rejected call left the previous (empty) breakdown alone.
        assert!(s.view().nodes.iter().all(|n| n.segments.is_empty()));
        s.set_breakdown_metrics(vec!["power_used".into()]).unwrap();
        let h = s.trace().containers().by_name("c1-h0").unwrap().id();
        assert_eq!(s.view().node(h).unwrap().segments.len(), 1);
    }

    #[test]
    fn deprecated_shims_match_builder() {
        // Shims and builder must produce identical sessions; this is
        // also the coverage that keeps the deprecated trio compiling.
        #[allow(deprecated)]
        fn shim_views() -> (GraphView, GraphView, GraphView) {
            let mk = || {
                let mut b = TraceBuilder::new();
                let power = b.metric("power", "MFlop/s");
                let h1 = b.new_container(b.root(), "h1", ContainerKind::Host).unwrap();
                let h2 = b.new_container(b.root(), "h2", ContainerKind::Host).unwrap();
                b.set_variable(0.0, h1, power, 10.0).unwrap();
                b.set_variable(0.0, h2, power, 20.0).unwrap();
                b.link(1.0, 2.0, h1, h2, 8.0).unwrap();
                (b.finish(10.0), h1, h2)
            };
            let (t1, _, _) = mk();
            let (t2, a, b) = mk();
            let (t3, _, _) = mk();
            (
                AnalysisSession::new(t1, SessionConfig::default()).view(),
                AnalysisSession::with_edges(t2, SessionConfig::default(), vec![(a, b)]).view(),
                AnalysisSession::builder(t3).build().view(),
            )
        }
        let (via_new, via_edges, via_builder) = shim_views();
        assert_eq!(via_new, via_builder);
        // Communication pairs of the single link = the explicit edge.
        assert_eq!(via_new.edges, via_edges.edges);
    }

    #[test]
    fn scaling_slider_applies_without_stale_cache() {
        let mut s = session();
        let before = s.view().nodes[0].px_size;
        s.scaling_mut().max_px = 80.0;
        let after = s.view().nodes[0].px_size;
        assert!(after > before, "{before} -> {after}");
    }

    #[test]
    fn time_slice_is_clamped_to_trace_extent() {
        let mut s = session();
        // Trace spans [0, 10); a cursor dragged past the end clamps.
        assert_eq!(s.set_time_slice(TimeSlice::new(8.0, 25.0)), TimeSlice::new(8.0, 10.0));
        assert_eq!(s.time_slice(), TimeSlice::new(8.0, 10.0));
        // Raw UI bounds: NaN rejected, valid bounds clamped.
        assert!(matches!(
            s.try_set_time_slice(f64::NAN, 5.0),
            Err(SessionError::InvalidTimeSlice(_))
        ));
        assert!(matches!(
            s.try_set_time_slice(7.0, 3.0),
            Err(SessionError::InvalidTimeSlice(_))
        ));
        assert_eq!(s.try_set_time_slice(-3.0, 4.0), Ok(TimeSlice::new(0.0, 4.0)));
    }

    /// The live fast path is equivalence-tested against the only
    /// definition that matters: a session *built from scratch* over the
    /// trace the live mutations produced. Views, renders and aggregates
    /// must be identical — a stale cache entry, a drifting incremental
    /// index or a missed slice update would all show up here.
    #[test]
    fn live_samples_match_a_fresh_session_over_the_same_trace() {
        let mut live = session();
        let used = live.trace().metrics().by_name("power_used").unwrap().id();
        let power = live.trace().metrics().by_name("power").unwrap().id();
        let h0 = live.trace().containers().by_name("c1-h0").unwrap().id();
        let h3 = live.trace().containers().by_name("c2-h1").unwrap().id();
        // Interleave reads with writes so caches are warm when
        // invalidation runs — and extend the extent past finish(10.0).
        let _ = live.view();
        live.live_apply_sample(h0, used, 12.0, 90.0).unwrap();
        let _ = live.view();
        live.live_apply_sample(h3, power, 14.0, 150.0).unwrap();
        live.live_apply_sample(h3, used, 14.0, 10.0).unwrap();
        let _ = live.view();
        live.live_apply_sample(h0, used, 14.0, 95.0).unwrap();

        let mut fresh = AnalysisSession::builder(live.trace().clone())
            .edges(live.leaf_edges.clone())
            .build();
        assert_eq!(live.time_slice(), fresh.time_slice(), "slice followed the extent");
        assert_eq!(live.view(), fresh.view());
        let vp = Viewport::default();
        assert_eq!(live.render(&vp), fresh.render(&vp));
        for s in [&mut live, &mut fresh] {
            s.set_time_slice(TimeSlice::new(3.0, 13.0));
        }
        assert_eq!(live.view(), fresh.view());
        let root = live.trace().containers().root();
        assert_eq!(
            live.aggregate("power_used", root).unwrap(),
            fresh.aggregate("power_used", root).unwrap()
        );
    }

    /// A full-extent slice follows live growth; a hand-narrowed slice
    /// stays put (the analyst chose a window — don't yank it).
    #[test]
    fn live_slice_tracking_respects_manual_windows() {
        let mut s = session();
        let used = s.trace().metrics().by_name("power_used").unwrap().id();
        let h0 = s.trace().containers().by_name("c1-h0").unwrap().id();
        assert_eq!(s.time_slice(), TimeSlice::new(0.0, 10.0));
        s.live_apply_sample(h0, used, 15.0, 70.0).unwrap();
        assert_eq!(s.time_slice(), TimeSlice::new(0.0, 15.0));
        s.set_time_slice(TimeSlice::new(2.0, 6.0));
        s.live_apply_sample(h0, used, 20.0, 80.0).unwrap();
        assert_eq!(s.time_slice(), TimeSlice::new(2.0, 6.0), "narrowed window survives");
        assert_eq!(s.trace().end(), 20.0);
    }

    /// Rejected samples (non-monotonic time) leave the session exactly
    /// as it was — no half-applied trace/index state, no revision bump.
    #[test]
    fn rejected_live_sample_leaves_session_untouched() {
        let mut s = session();
        let used = s.trace().metrics().by_name("power_used").unwrap().id();
        let h0 = s.trace().containers().by_name("c1-h0").unwrap().id();
        s.live_apply_sample(h0, used, 12.0, 90.0).unwrap();
        let before = s.view();
        let rev = s.revision();
        assert!(s.live_apply_sample(h0, used, 5.0, 1.0).is_err());
        assert_eq!(s.revision(), rev);
        assert_eq!(s.view(), before);
    }

    /// Quarantine/drop bookkeeping reaches the view exactly as a
    /// reloaded trace would report it.
    #[test]
    fn live_quarantine_and_drop_surface_in_views() {
        let mut s = session();
        let used = s.trace().metrics().by_name("power_used").unwrap().id();
        let h0 = s.trace().containers().by_name("c1-h0").unwrap().id();
        s.live_quarantine_sample(h0, used);
        s.live_note_dropped();
        assert_eq!(s.trace().quarantined(h0, used), 1);
        assert_eq!(s.trace().ingest_dropped(), 2, "quarantine counts as dropped too");
        let fresh = AnalysisSession::builder(s.trace().clone())
            .edges(s.leaf_edges.clone())
            .build();
        assert_eq!(s.view(), fresh.view());
    }

    /// Rebase swaps the trace under a session while preserving the
    /// analyst's collapse state and pinned layout — the structural
    /// path of a live stream. New containers join the frontier; views
    /// must agree with a fresh session put into the same state.
    #[test]
    fn rebase_preserves_interaction_state_over_a_grown_trace() {
        let mut s = session();
        let c1 = s.trace().containers().by_name("c1").unwrap().id();
        let h3 = s.trace().containers().by_name("c2-h1").unwrap().id();
        s.collapse(c1).unwrap();
        s.drag(h3, Vec2::new(42.0, 7.0)).unwrap();

        // Grow the topology: same prefix plus one extra host in c2.
        let mut b = TraceBuilder::new();
        let power = b.metric("power", "MFlop/s");
        let used = b.metric("power_used", "MFlop/s");
        let bw = b.metric("bandwidth", "Mbit/s");
        let mut c2 = None;
        for cn in ["c1", "c2"] {
            let cl = b.new_container(b.root(), cn, ContainerKind::Cluster).unwrap();
            if cn == "c2" {
                c2 = Some(cl);
            }
            for i in 0..2 {
                let h = b
                    .new_container(cl, format!("{cn}-h{i}"), ContainerKind::Host)
                    .unwrap();
                b.set_variable(0.0, h, power, 100.0).unwrap();
                b.set_variable(0.0, h, used, 60.0).unwrap();
            }
        }
        let bb = b.new_container(b.root(), "bb", ContainerKind::Link).unwrap();
        b.set_variable(0.0, bb, bw, 1000.0).unwrap();
        let h_new = b
            .new_container(c2.unwrap(), "c2-h2", ContainerKind::Host)
            .unwrap();
        b.set_variable(3.0, h_new, power, 100.0).unwrap();
        let grown = Arc::new(b.finish(12.0));
        let index = Arc::new(AggIndex::build(&grown));
        s.rebase(grown.clone(), Some(index.clone()));

        assert_eq!(s.time_slice(), TimeSlice::new(0.0, 12.0), "full slice follows");
        let view = s.view();
        // c1 stays collapsed: c1 aggregate + 3 c2 hosts + bb link.
        assert_eq!(view.nodes.len(), 5);
        assert!(view.node_by_label("c1").is_some());
        assert!(view.node_by_label("c2-h2").is_some());
        assert_eq!(s.layout().position(key(h3)), Some(Vec2::new(42.0, 7.0)), "pin kept");
        // Equivalent fresh session: build, then replay the collapse.
        let mut fresh = AnalysisSession::builder(grown)
            .shared_index(index)
            .build();
        fresh.collapse(c1).unwrap();
        let fv = fresh.view();
        assert_eq!(view.nodes.len(), fv.nodes.len());
        for n in &view.nodes {
            let fn_ = fv.nodes.iter().find(|m| m.label == n.label).unwrap();
            assert_eq!((n.fill_value, n.size_value, n.members), (fn_.fill_value, fn_.size_value, fn_.members));
        }
    }
}
