//! The interactive analysis session: the paper's tool loop.
//!
//! An [`AnalysisSession`] owns everything the analyst manipulates:
//!
//! * the **trace** under analysis (and optionally the **platform** it
//!   was recorded on, used to wire the topology graph);
//! * the **time-slice** (§3.2.1) and the **collapse state** (§3.2.2);
//! * the **force-directed layout** with its charge/spring/damping
//!   sliders (§4.2), node pinning and dragging;
//! * the **visual mapping** (§3.1) and **per-type scaling sliders**
//!   (§4.1).
//!
//! Every mutation keeps the layout *warm*: collapsing a group merges
//! its nodes into one aggregate placed at their barycenter, expanding
//! spawns members around the aggregate — so the picture morphs smoothly
//! instead of being recomputed from scratch (§3.3).

use std::collections::HashSet;
use std::fmt;

use viva_agg::{GroupAggregate, TimeSlice, TimeSliceError, ViewState};
use viva_layout::{LayoutConfig, LayoutEngine, NodeKey, Vec2};
use viva_platform::Platform;
use viva_trace::{ContainerId, Trace};

use crate::mapping::MappingConfig;
use crate::scaling::ScalingConfig;
use crate::svg;
use crate::view::{build_view, GraphView};

/// Why a session operation could not be applied. Session inputs come
/// from interactive UI events (clicks on stale node ids, slider
/// positions, typed metric names), so every public operation reports
/// bad input as a value instead of panicking mid-analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError {
    /// The container id does not exist in the trace under analysis.
    UnknownContainer(ContainerId),
    /// The container exists but is not currently visible (it is hidden
    /// inside a collapsed ancestor), so it cannot be dragged.
    HiddenContainer(ContainerId),
    /// No metric with this name is recorded in the trace.
    UnknownMetric(String),
    /// The requested time slice is malformed (NaN/infinite bounds or
    /// end before start).
    InvalidTimeSlice(TimeSliceError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::UnknownContainer(c) => {
                write!(f, "container {c:?} does not exist in this trace")
            }
            SessionError::HiddenContainer(c) => {
                write!(f, "container {c:?} is hidden inside a collapsed group")
            }
            SessionError::UnknownMetric(name) => {
                write!(f, "metric {name:?} is not recorded in this trace")
            }
            SessionError::InvalidTimeSlice(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<TimeSliceError> for SessionError {
    fn from(e: TimeSliceError) -> SessionError {
        SessionError::InvalidTimeSlice(e)
    }
}

/// Initial configuration of a session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionConfig {
    /// Metric → visual mapping.
    pub mapping: MappingConfig,
    /// Screen scaling parameters.
    pub scaling: ScalingConfig,
    /// Force-model parameters.
    pub layout: LayoutConfig,
    /// Seed for initial node placement.
    pub seed: u64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            mapping: MappingConfig::default(),
            scaling: ScalingConfig::default(),
            layout: LayoutConfig::default(),
            seed: 0x1234_5678,
        }
    }
}

/// An interactive topology-based analysis of one trace.
#[derive(Debug)]
pub struct AnalysisSession {
    trace: Trace,
    mapping: MappingConfig,
    scaling: ScalingConfig,
    state: ViewState,
    slice: TimeSlice,
    layout: LayoutEngine,
    /// Relationships between leaf containers (host ↔ link ↔ router).
    leaf_edges: Vec<(ContainerId, ContainerId)>,
    /// Metrics whose shares fill each node's pie chart (§6 extension).
    breakdown: Vec<String>,
    /// Current visible frontier (mirrors the layout's node set).
    frontier: Vec<ContainerId>,
}

fn key(c: ContainerId) -> NodeKey {
    NodeKey(c.index() as u64)
}

impl AnalysisSession {
    /// Creates a session over `trace` alone; the topology graph is
    /// inferred from the trace's communication pairs (§3.1.1's first
    /// option).
    pub fn new(trace: Trace, config: SessionConfig) -> AnalysisSession {
        let edges = trace.communication_pairs();
        AnalysisSession::with_edges(trace, config, edges)
    }

    /// Creates a session over a trace recorded on `platform`; the
    /// topology graph is the physical interconnection: every link
    /// container is connected to the containers of its two endpoints
    /// (§3.1.1's second option).
    ///
    /// Platform resources are matched to trace containers by name;
    /// resources with no matching container are skipped.
    pub fn with_platform(
        trace: Trace,
        config: SessionConfig,
        platform: &Platform,
    ) -> AnalysisSession {
        let tree = trace.containers();
        let by_name = |name: &str| tree.by_name(name).map(|c| c.id());
        let mut edges = Vec::new();
        for link in platform.links() {
            let Some(lc) = by_name(link.name()) else { continue };
            let (a, b) = platform.link_endpoints(link.id());
            for endpoint in [a, b] {
                let name = match endpoint {
                    viva_platform::NodeId::Host(h) => platform.host(h).name(),
                    viva_platform::NodeId::Router(r) => platform.router(r).name(),
                };
                if let Some(ec) = by_name(name) {
                    edges.push((ec, lc));
                }
            }
        }
        AnalysisSession::with_edges(trace, config, edges)
    }

    /// Creates a session with explicit leaf-container relationships
    /// (§3.1.1's third option: "the information can be dynamically
    /// provided by the analyst").
    pub fn with_edges(
        trace: Trace,
        config: SessionConfig,
        leaf_edges: Vec<(ContainerId, ContainerId)>,
    ) -> AnalysisSession {
        let slice = TimeSlice::new(trace.start(), trace.end());
        let mut session = AnalysisSession {
            layout: LayoutEngine::new(config.layout, config.seed),
            mapping: config.mapping,
            scaling: config.scaling,
            state: ViewState::new(),
            slice,
            leaf_edges,
            breakdown: Vec::new(),
            frontier: Vec::new(),
            trace,
        };
        session.frontier = session.state.visible(session.trace.containers());
        for &c in &session.frontier.clone() {
            session.layout.add_node(key(c), session.charge_of(c));
        }
        session.sync_edges();
        session
    }

    /// Charge of a (possibly aggregated) node: the number of leaves it
    /// stands for (§4.2: an aggregate's charge is the sum of its
    /// members').
    fn charge_of(&self, c: ContainerId) -> f64 {
        self.trace.containers().leaves_under(c).len().max(1) as f64
    }

    /// The trace under analysis.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Current time-slice.
    pub fn time_slice(&self) -> TimeSlice {
        self.slice
    }

    /// Sets the time-slice (§3.2.1), clamped to the recorded extent of
    /// the trace (a cursor dragged past the end must not integrate over
    /// time that was never recorded). Returns the effective slice.
    /// Values shown by the next [`view`](AnalysisSession::view) are
    /// aggregated over it.
    pub fn set_time_slice(&mut self, slice: TimeSlice) -> TimeSlice {
        self.slice = slice.clamped_to(self.trace.start(), self.trace.end());
        self.slice
    }

    /// Sets the time-slice from raw, untrusted bounds (slider
    /// positions, typed values): rejects NaN/infinite or inverted
    /// bounds, clamps the rest to the trace extent, and returns the
    /// effective slice.
    pub fn try_set_time_slice(&mut self, start: f64, end: f64) -> Result<TimeSlice, SessionError> {
        let slice = TimeSlice::try_new(start, end)?;
        Ok(self.set_time_slice(slice))
    }

    /// Validates that a container id refers to a node of this trace.
    fn check_container(&self, c: ContainerId) -> Result<(), SessionError> {
        if self.trace.containers().get(c).is_none() {
            return Err(SessionError::UnknownContainer(c));
        }
        Ok(())
    }

    /// Configures the pie-chart breakdown: each node shows the relative
    /// shares of these metrics (e.g. `power_used:app1`,
    /// `power_used:app2`) as a pie glyph — the paper's §6 "increasing
    /// graphical object flexibility (e.g., pie-charts...)" extension.
    pub fn set_breakdown_metrics(&mut self, metrics: Vec<String>) {
        self.breakdown = metrics;
    }

    /// Read access to the collapse state.
    pub fn view_state(&self) -> &ViewState {
        &self.state
    }

    /// The visual mapping (mutable: mappings "can be dynamically
    /// changed at a given point of the analysis", §3.1).
    pub fn mapping_mut(&mut self) -> &mut MappingConfig {
        &mut self.mapping
    }

    /// The per-type size scaling and its sliders (§4.1).
    pub fn scaling_mut(&mut self) -> &mut ScalingConfig {
        &mut self.scaling
    }

    /// The layout parameters — the charge/spring/damping sliders of
    /// §4.2.
    pub fn layout_config_mut(&mut self) -> &mut LayoutConfig {
        self.layout.config_mut()
    }

    /// Direct access to the layout engine (pinning, dragging,
    /// stepping).
    pub fn layout_mut(&mut self) -> &mut LayoutEngine {
        &mut self.layout
    }

    /// Read access to the layout engine.
    pub fn layout(&self) -> &LayoutEngine {
        &self.layout
    }

    /// Collapses `group` into one aggregated node (§3.2.2, Fig. 3).
    /// No-op if the group is already hidden or collapsed; fails on a
    /// container id the trace does not contain.
    pub fn collapse(&mut self, group: ContainerId) -> Result<(), SessionError> {
        self.check_container(group)?;
        if self.state.is_collapsed(group) {
            return Ok(());
        }
        self.state.collapse(group);
        self.apply_state();
        Ok(())
    }

    /// Expands a collapsed group back into its members. No-op if the
    /// group is not collapsed; fails on an unknown container id.
    pub fn expand(&mut self, group: ContainerId) -> Result<(), SessionError> {
        self.check_container(group)?;
        if !self.state.is_collapsed(group) {
            return Ok(());
        }
        self.state.expand(group);
        self.apply_state();
        Ok(())
    }

    /// Jumps to one hierarchy level (Fig. 8: host / cluster / site /
    /// grid views): collapses every grouping container at `depth`.
    pub fn collapse_at_depth(&mut self, depth: u32) {
        let tree = self.trace.containers();
        let mut next = self.state.clone();
        next.collapse_at_depth(tree, depth);
        self.state = next;
        self.apply_state();
    }

    /// Expands everything (finest view).
    pub fn expand_all(&mut self) {
        self.state.expand_all();
        self.apply_state();
    }

    /// Reconciles the layout with the current collapse state: new
    /// aggregates swallow their visible members (barycenter placement),
    /// expanded groups spawn members around the old aggregate, and the
    /// edge set is re-lifted.
    fn apply_state(&mut self) {
        let tree = self.trace.containers();
        let new_frontier = self.state.visible(tree);
        let old_set: HashSet<ContainerId> = self.frontier.iter().copied().collect();
        let new_set: HashSet<ContainerId> = new_frontier.iter().copied().collect();

        let is_ancestor_of = |anc: ContainerId, node: ContainerId| {
            tree.node(node).depth() > tree.node(anc).depth()
                && tree.ancestor_at_depth(node, tree.node(anc).depth()) == Some(anc)
        };

        // 1. Additions that aggregate existing nodes: merge.
        for &a in &new_frontier {
            if old_set.contains(&a) {
                continue;
            }
            let members: Vec<ContainerId> = self
                .frontier
                .iter()
                .copied()
                .filter(|&o| !new_set.contains(&o) && is_ancestor_of(a, o))
                .collect();
            if !members.is_empty() {
                let member_keys: Vec<NodeKey> = members.iter().map(|&m| key(m)).collect();
                self.layout.merge_nodes(key(a), &member_keys);
                self.layout.set_charge(key(a), self.charge_of(a));
            }
        }
        // 2. Removals that disaggregate into new nodes: split.
        for &r in &self.frontier.clone() {
            if new_set.contains(&r) || self.layout.position(key(r)).is_none() {
                continue;
            }
            let children: Vec<(NodeKey, f64)> = new_frontier
                .iter()
                .copied()
                .filter(|&n| !old_set.contains(&n) && is_ancestor_of(r, n))
                .map(|n| (key(n), self.charge_of(n)))
                .collect();
            if !children.is_empty() {
                self.layout.split_node(key(r), &children);
            } else {
                self.layout.remove_node(key(r));
            }
        }
        // 3. Anything still missing (e.g. a node that is both new and
        // unrelated to the old frontier) gets a fresh spot.
        for &a in &new_frontier {
            if self.layout.position(key(a)).is_none() {
                self.layout.add_node(key(a), self.charge_of(a));
            }
        }
        self.frontier = new_frontier;
        self.sync_edges();
    }

    /// Rebuilds the layout's edge set from the leaf relationships
    /// lifted to the visible frontier.
    fn sync_edges(&mut self) {
        let tree = self.trace.containers();
        let mut desired: HashSet<(NodeKey, NodeKey)> = HashSet::new();
        for &(a, b) in &self.leaf_edges {
            let (Some(ra), Some(rb)) = (
                self.state.representative(tree, a),
                self.state.representative(tree, b),
            ) else {
                continue;
            };
            if ra == rb {
                continue;
            }
            let (ka, kb) = (key(ra), key(rb));
            desired.insert(if ka <= kb { (ka, kb) } else { (kb, ka) });
        }
        let current: Vec<(NodeKey, NodeKey)> = self.layout.edges().collect();
        for (a, b) in current {
            if !desired.contains(&(a, b)) {
                self.layout.remove_edge(a, b);
            }
        }
        for (a, b) in desired {
            if !self.layout.has_edge(a, b) {
                self.layout.add_edge(a, b);
            }
        }
    }

    /// Runs up to `steps` layout iterations (stops early on
    /// convergence). Returns the number of steps executed.
    pub fn relax(&mut self, steps: usize) -> usize {
        self.layout.run(steps, 1e-4)
    }

    /// Drags the node of `container` to `pos` and pins it there. Fails
    /// on an unknown container id, or on a container that is currently
    /// hidden inside a collapsed group (it has no node to drag).
    pub fn drag(&mut self, container: ContainerId, pos: Vec2) -> Result<(), SessionError> {
        self.check_container(container)?;
        let k = key(container);
        if !self.layout.move_node(k, pos) {
            return Err(SessionError::HiddenContainer(container));
        }
        self.layout.pin(k);
        Ok(())
    }

    /// Releases a pinned node back to the force simulation.
    pub fn release(&mut self, container: ContainerId) -> Result<(), SessionError> {
        self.check_container(container)?;
        if !self.layout.unpin(key(container)) {
            return Err(SessionError::HiddenContainer(container));
        }
        Ok(())
    }

    /// Computes the scene for the current slice, collapse state,
    /// mapping, scaling and layout.
    pub fn view(&self) -> GraphView {
        build_view(
            &self.trace,
            &self.state,
            self.slice,
            &self.mapping,
            &self.scaling,
            &|c| self.layout.position(key(c)).unwrap_or_default(),
            &self.leaf_edges,
            &self.breakdown,
        )
    }

    /// Renders the current view to an SVG document.
    pub fn render_svg(&self, width: f64, height: f64) -> String {
        svg::render(&self.view(), &svg::SvgOptions { width, height, ..Default::default() })
    }

    /// Aggregates `metric` over the subtree of `group` and the current
    /// slice (Equation 1 plus §6 indicators) — the numeric companion of
    /// the visual view, used by the figure harnesses. Fails on an
    /// unknown metric name or container id; a *known* group with no
    /// surviving data yields an aggregate with
    /// [`GroupAggregate::is_empty`] set.
    pub fn aggregate(&self, metric: &str, group: ContainerId) -> Result<GroupAggregate, SessionError> {
        self.check_container(group)?;
        let m = self
            .trace
            .metric_id(metric)
            .ok_or_else(|| SessionError::UnknownMetric(metric.to_string()))?;
        Ok(GroupAggregate::compute(&self.trace, m, group, self.slice))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viva_trace::{ContainerKind, TraceBuilder};

    /// Two clusters of two hosts; one link per cluster; one backbone
    /// link under the root; edges host—link—host chains.
    fn session() -> AnalysisSession {
        let mut b = TraceBuilder::new();
        let power = b.metric("power", "MFlop/s");
        let used = b.metric("power_used", "MFlop/s");
        let bw = b.metric("bandwidth", "Mbit/s");
        let mut hosts = Vec::new();
        let mut clusters = Vec::new();
        for cn in ["c1", "c2"] {
            let cl = b.new_container(b.root(), cn, ContainerKind::Cluster).unwrap();
            clusters.push(cl);
            for i in 0..2 {
                let h = b
                    .new_container(cl, format!("{cn}-h{i}"), ContainerKind::Host)
                    .unwrap();
                b.set_variable(0.0, h, power, 100.0).unwrap();
                b.set_variable(0.0, h, used, 60.0).unwrap();
                hosts.push(h);
            }
        }
        let bb = b.new_container(b.root(), "bb", ContainerKind::Link).unwrap();
        b.set_variable(0.0, bb, bw, 1000.0).unwrap();
        let trace = b.finish(10.0);
        let edges = vec![
            (hosts[0], hosts[1]),
            (hosts[2], hosts[3]),
            (hosts[1], bb),
            (bb, hosts[2]),
        ];
        AnalysisSession::with_edges(trace, SessionConfig::default(), edges)
    }

    #[test]
    fn initial_frontier_is_all_leaves() {
        let s = session();
        let view = s.view();
        // 4 hosts + 1 link.
        assert_eq!(view.nodes.len(), 5);
        assert_eq!(s.layout().len(), 5);
        assert_eq!(view.edges.len(), 4);
    }

    #[test]
    fn collapse_merges_layout_nodes_and_lifts_edges() {
        let mut s = session();
        let c1 = s.trace().containers().by_name("c1").unwrap().id();
        s.collapse(c1).unwrap();
        let view = s.view();
        // c1 aggregate + 2 hosts of c2 + bb link.
        assert_eq!(view.nodes.len(), 4);
        assert_eq!(s.layout().len(), 4);
        let agg = view.node_by_label("c1").unwrap();
        assert_eq!(agg.members, 2);
        assert_eq!(agg.size_value, 200.0);
        // The intra-c1 edge vanished; the bb edge lifted to c1.
        let bb = s.trace().containers().by_name("bb").unwrap().id();
        assert!(view.edges.iter().any(|e| (e.a == c1 && e.b == bb) || (e.a == bb && e.b == c1)));
        // Aggregate charge = 2 leaves.
        assert_eq!(s.layout().charge(key(c1)), Some(2.0));
    }

    #[test]
    fn expand_restores_members_near_aggregate() {
        let mut s = session();
        let c1 = s.trace().containers().by_name("c1").unwrap().id();
        s.relax(100);
        s.collapse(c1).unwrap();
        let agg_pos = s.layout().position(key(c1)).unwrap();
        s.expand(c1).unwrap();
        let view = s.view();
        assert_eq!(view.nodes.len(), 5);
        let h0 = s.trace().containers().by_name("c1-h0").unwrap().id();
        let p = s.layout().position(key(h0)).unwrap();
        assert!(p.distance(agg_pos) < s.layout().config().spring_length * 2.0);
    }

    #[test]
    fn collapse_at_depth_matches_level_views() {
        let mut s = session();
        s.collapse_at_depth(1); // cluster level
        let view = s.view();
        // c1, c2 aggregates + bb link (a leaf at depth 1).
        assert_eq!(view.nodes.len(), 3);
        s.collapse_at_depth(0); // grid level
        assert_eq!(s.view().nodes.len(), 1);
        s.expand_all();
        assert_eq!(s.view().nodes.len(), 5);
    }

    #[test]
    fn double_collapse_is_idempotent() {
        let mut s = session();
        let c1 = s.trace().containers().by_name("c1").unwrap().id();
        s.collapse(c1).unwrap();
        let n = s.layout().len();
        s.collapse(c1).unwrap();
        assert_eq!(s.layout().len(), n);
        s.expand(c1).unwrap();
        s.expand(c1).unwrap();
        assert_eq!(s.layout().len(), 5);
    }

    #[test]
    fn drag_pins_and_release_unpins() {
        let mut s = session();
        let h = s.trace().containers().by_name("c1-h0").unwrap().id();
        s.drag(h, Vec2::new(123.0, 45.0)).unwrap();
        assert_eq!(s.layout().position(key(h)), Some(Vec2::new(123.0, 45.0)));
        s.relax(50);
        assert_eq!(
            s.layout().position(key(h)),
            Some(Vec2::new(123.0, 45.0)),
            "pinned node stays put"
        );
        s.release(h).unwrap();
        assert!(!s.layout().is_pinned(key(h)));
    }

    #[test]
    fn time_slice_drives_view_values() {
        let mut s = session();
        s.set_time_slice(TimeSlice::new(0.0, 5.0));
        let h = s.trace().containers().by_name("c1-h0").unwrap().id();
        assert_eq!(s.view().node(h).unwrap().fill_value, 60.0);
        let agg = s.aggregate("power_used", h).unwrap();
        assert_eq!(agg.integral, 300.0);
    }

    #[test]
    fn svg_renders_all_nodes() {
        let mut s = session();
        s.relax(100);
        let svg = s.render_svg(800.0, 600.0);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("class=\"node").count(), 5);
    }

    #[test]
    fn unknown_ids_are_reported_not_panicked() {
        let mut s = session();
        let bogus = ContainerId::from_index(999);
        assert_eq!(s.collapse(bogus), Err(SessionError::UnknownContainer(bogus)));
        assert_eq!(s.expand(bogus), Err(SessionError::UnknownContainer(bogus)));
        assert_eq!(
            s.drag(bogus, Vec2::new(0.0, 0.0)),
            Err(SessionError::UnknownContainer(bogus))
        );
        assert_eq!(s.release(bogus), Err(SessionError::UnknownContainer(bogus)));
        assert_eq!(
            s.aggregate("power_used", bogus),
            Err(SessionError::UnknownContainer(bogus))
        );
        // Valid session state is untouched by the failed operations.
        assert_eq!(s.view().nodes.len(), 5);
    }

    #[test]
    fn hidden_container_cannot_be_dragged() {
        let mut s = session();
        let c1 = s.trace().containers().by_name("c1").unwrap().id();
        let h0 = s.trace().containers().by_name("c1-h0").unwrap().id();
        s.collapse(c1).unwrap();
        assert_eq!(
            s.drag(h0, Vec2::new(1.0, 1.0)),
            Err(SessionError::HiddenContainer(h0))
        );
    }

    #[test]
    fn unknown_metric_is_reported() {
        let s = session();
        let root = s.trace().containers().root();
        assert_eq!(
            s.aggregate("no_such_metric", root),
            Err(SessionError::UnknownMetric("no_such_metric".into()))
        );
    }

    #[test]
    fn time_slice_is_clamped_to_trace_extent() {
        let mut s = session();
        // Trace spans [0, 10); a cursor dragged past the end clamps.
        assert_eq!(s.set_time_slice(TimeSlice::new(8.0, 25.0)), TimeSlice::new(8.0, 10.0));
        assert_eq!(s.time_slice(), TimeSlice::new(8.0, 10.0));
        // Raw UI bounds: NaN rejected, valid bounds clamped.
        assert!(matches!(
            s.try_set_time_slice(f64::NAN, 5.0),
            Err(SessionError::InvalidTimeSlice(_))
        ));
        assert!(matches!(
            s.try_set_time_slice(7.0, 3.0),
            Err(SessionError::InvalidTimeSlice(_))
        ));
        assert_eq!(s.try_set_time_slice(-3.0, 4.0), Ok(TimeSlice::new(0.0, 4.0)));
    }
}
