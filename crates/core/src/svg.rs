//! Deterministic SVG rendering of [`GraphView`]s.
//!
//! The renderer draws exactly the paper's vocabulary: squares, diamonds
//! and circles with an optional proportional fill (a bottom-up filled
//! portion for squares, an inner scaled shape for diamonds/circles),
//! colored by container kind, connected by thin edges. Output is a
//! plain string, byte-stable for identical views — golden tests rely on
//! this.

use std::fmt::Write as _;

use viva_layout::Vec2;

use crate::color::kind_color;
use crate::mapping::Shape;
use crate::view::{GraphView, ViewNode, ViewTile};
use crate::viewport::{Theme, Viewport};

/// Rendering options.
#[derive(Debug, Clone, PartialEq)]
pub struct SvgOptions {
    /// Canvas width, pixels.
    pub width: f64,
    /// Canvas height, pixels.
    pub height: f64,
    /// Draw node labels.
    pub labels: bool,
    /// Padding around the drawing, pixels.
    pub padding: f64,
    /// Color theme.
    pub theme: Theme,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions {
            width: 800.0,
            height: 600.0,
            labels: false,
            padding: 30.0,
            theme: Theme::Light,
        }
    }
}

impl From<&Viewport> for SvgOptions {
    fn from(vp: &Viewport) -> SvgOptions {
        SvgOptions {
            width: vp.width,
            height: vp.height,
            labels: vp.labels,
            padding: vp.padding,
            theme: vp.theme,
        }
    }
}

/// Maps layout coordinates to the SVG viewport (uniform scale,
/// centered).
pub(crate) struct Projection {
    scale: f64,
    offset: Vec2,
}

impl Projection {
    fn fit(view: &GraphView, opts: &SvgOptions) -> Projection {
        Projection::fit_bounds(view.bounds(), opts)
    }

    /// Fits a world bounding box into the padded canvas — the one
    /// place the fit arithmetic lives. The camera path feeds it the
    /// *full-frontier* bounds so an identity camera reproduces the
    /// classic fit bit for bit even when the view it draws keeps only
    /// a subset of the frontier.
    pub(crate) fn fit_bounds(bounds: Option<(Vec2, Vec2)>, opts: &SvgOptions) -> Projection {
        let (lo, hi) = bounds.unwrap_or((Vec2::default(), Vec2::default()));
        let span = hi - lo;
        let usable_w = (opts.width - 2.0 * opts.padding).max(1.0);
        let usable_h = (opts.height - 2.0 * opts.padding).max(1.0);
        let sx = if span.x > 0.0 { usable_w / span.x } else { f64::INFINITY };
        let sy = if span.y > 0.0 { usable_h / span.y } else { f64::INFINITY };
        let scale = sx.min(sy);
        let scale = if scale.is_finite() { scale } else { 1.0 };
        let center = (lo + hi) * 0.5;
        let canvas_center = Vec2::new(opts.width / 2.0, opts.height / 2.0);
        Projection { scale, offset: canvas_center - center * scale }
    }

    /// [`Projection::fit_bounds`] followed by the camera transform:
    /// zoom multiplies the fitted scale about the canvas center, pan
    /// shifts the canvas in pixels. Every step is guarded so the
    /// identity camera leaves the fitted projection bit-identical —
    /// `scale * 1.0` and `offset - 0.0` are *not* no-ops for every
    /// float (`-0.0` flips under `+ 0.0`), so they are skipped rather
    /// than trusted.
    pub(crate) fn fit_camera(
        bounds: Option<(Vec2, Vec2)>,
        opts: &SvgOptions,
        camera: &crate::viewport::Camera,
    ) -> Projection {
        let base = Projection::fit_bounds(bounds, opts);
        let mut scale = base.scale;
        let mut offset = base.offset;
        if camera.zoom != 1.0 {
            let canvas_center = Vec2::new(opts.width / 2.0, opts.height / 2.0);
            let world_center = Vec2::new(
                (canvas_center.x - base.offset.x) / base.scale,
                (canvas_center.y - base.offset.y) / base.scale,
            );
            scale = base.scale * camera.zoom;
            offset = canvas_center - world_center * scale;
        }
        if camera.pan_x != 0.0 {
            offset.x -= camera.pan_x;
        }
        if camera.pan_y != 0.0 {
            offset.y -= camera.pan_y;
        }
        Projection { scale, offset }
    }

    pub(crate) fn project(&self, p: Vec2) -> Vec2 {
        p * self.scale + self.offset
    }
}

fn write_shape(out: &mut String, shape: Shape, center: Vec2, size: f64, style: &str) {
    let h = size / 2.0;
    match shape {
        Shape::Square => {
            let _ = write!(
                out,
                r#"<rect x="{:.2}" y="{:.2}" width="{:.2}" height="{:.2}" {}/>"#,
                center.x - h,
                center.y - h,
                size,
                size,
                style
            );
        }
        Shape::Diamond => {
            let _ = write!(
                out,
                r#"<polygon points="{:.2},{:.2} {:.2},{:.2} {:.2},{:.2} {:.2},{:.2}" {}/>"#,
                center.x,
                center.y - h,
                center.x + h,
                center.y,
                center.x,
                center.y + h,
                center.x - h,
                center.y,
                style
            );
        }
        Shape::Circle => {
            let _ = write!(
                out,
                r#"<circle cx="{:.2}" cy="{:.2}" r="{:.2}" {}/>"#,
                center.x, center.y, h, style
            );
        }
    }
}

/// Stroke color marking resources that failed during the slice.
const FAULT_STROKE: &str = "#cc2222";

fn write_node(out: &mut String, node: &ViewNode, center: Vec2, opts: &SvgOptions) {
    let color = kind_color(node.kind).hex();
    // Ingest trust annotation: values under a quarantine-marked node
    // were computed after dropping non-finite samples.
    let quarantine_attr = if node.quarantined > 0 {
        format!(r#" data-quarantined="{}""#, node.quarantined)
    } else {
        String::new()
    };
    if node.is_degraded() {
        // Failed (or partially failed, for aggregates) resources are
        // rendered distinctly: the exact availability travels as a data
        // attribute, the outline below switches to a dashed red stroke.
        let _ = write!(
            out,
            r#"<g class="node node-{} degraded" data-container="{}" data-members="{}" data-availability="{:.3}"{}>"#,
            node.shape.label(),
            node.container.index(),
            node.members,
            node.availability,
            quarantine_attr
        );
    } else {
        let _ = write!(
            out,
            r#"<g class="node node-{}" data-container="{}" data-members="{}"{}>"#,
            node.shape.label(),
            node.container.index(),
            node.members,
            quarantine_attr
        );
    }
    // Outline: dashed red for anything that was down during the slice.
    let outline = if node.is_degraded() {
        format!(r#"fill="none" stroke="{FAULT_STROKE}" stroke-width="1.5" stroke-dasharray="4 2""#)
    } else {
        format!(r#"fill="none" stroke="{color}" stroke-width="1.5""#)
    };
    write_shape(out, node.shape, center, node.px_size, &outline);
    // Proportional fill (§3.1): squares fill bottom-up; diamonds and
    // circles get an inner shape of proportional area.
    if node.fill_fraction > 0.0 {
        match node.shape {
            Shape::Square => {
                let s = node.px_size;
                let fh = s * node.fill_fraction;
                let _ = write!(
                    out,
                    r#"<rect x="{:.2}" y="{:.2}" width="{:.2}" height="{:.2}" fill="{}" fill-opacity="0.75"/>"#,
                    center.x - s / 2.0,
                    center.y + s / 2.0 - fh,
                    s,
                    fh,
                    color
                );
            }
            Shape::Diamond | Shape::Circle => {
                let inner = node.px_size * node.fill_fraction.sqrt();
                let style = format!(r#"fill="{color}" fill-opacity="0.75""#);
                write_shape(out, node.shape, center, inner, &style);
            }
        }
    }
    // Fig. 3 link badge of aggregated groups: a diamond at the
    // north-east corner.
    if let Some(badge) = &node.link_badge {
        let at = center + Vec2::new(node.px_size / 2.0, -node.px_size / 2.0);
        let color = kind_color(viva_trace::ContainerKind::Link).hex();
        let outline = format!(r#"fill="none" stroke="{color}" stroke-width="1.2""#);
        write_shape(out, Shape::Diamond, at, badge.px_size, &outline);
        if badge.fill_fraction > 0.0 {
            let style = format!(r#"fill="{color}" fill-opacity="0.75""#);
            write_shape(
                out,
                Shape::Diamond,
                at,
                badge.px_size * badge.fill_fraction.sqrt(),
                &style,
            );
        }
    }
    // §6 pie glyph: per-metric shares at the south-east corner.
    if !node.segments.is_empty() {
        let at = center + Vec2::new(node.px_size / 2.0, node.px_size / 2.0);
        let r = (node.px_size / 3.0).max(3.0);
        let mut angle = -std::f64::consts::FRAC_PI_2;
        for (i, (name, share)) in node.segments.iter().enumerate() {
            let sweep = share * std::f64::consts::TAU;
            let (x0, y0) = (at.x + r * angle.cos(), at.y + r * angle.sin());
            let end = angle + sweep;
            let (x1, y1) = (at.x + r * end.cos(), at.y + r * end.sin());
            let large = i32::from(sweep > std::f64::consts::PI);
            let color = crate::color::account_color(i).hex();
            if *share >= 1.0 - 1e-9 {
                let _ = write!(
                    out,
                    r#"<circle cx="{:.2}" cy="{:.2}" r="{:.2}" fill="{}" class="pie" data-metric="{}"/>"#,
                    at.x, at.y, r, color, xml_escape(name)
                );
            } else {
                let _ = write!(
                    out,
                    r#"<path d="M {:.2} {:.2} L {:.2} {:.2} A {r:.2} {r:.2} 0 {large} 1 {:.2} {:.2} Z" fill="{}" class="pie" data-metric="{}"/>"#,
                    at.x, at.y, x0, y0, x1, y1, color, xml_escape(name)
                );
            }
            angle = end;
        }
    }
    if opts.labels {
        let _ = write!(
            out,
            r#"<text x="{:.2}" y="{:.2}" font-size="9" text-anchor="middle" fill="{}">{}</text>"#,
            center.x,
            center.y + node.px_size / 2.0 + 10.0,
            opts.theme.label_fill(),
            xml_escape(&node.label)
        );
    }
    out.push_str("</g>\n");
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

/// The aggregate tile glyph of a level-of-detail render: a dashed
/// rounded rectangle over the subtree's projected footprint, filled
/// bottom-up by mean utilization, annotated with the count of nodes it
/// stands for. Degenerate footprints are grown to a readable minimum
/// and the whole glyph is clamped into the canvas, so fully-offscreen
/// subtrees hug the nearest border.
fn write_tile(out: &mut String, tile: &ViewTile, proj: &Projection, opts: &SvgOptions) {
    const MIN_SIDE: f64 = 12.0;
    const MARGIN: f64 = 3.0;
    let a = proj.project(tile.lo);
    let b = proj.project(tile.hi);
    let clamp_span = |lo: f64, hi: f64, limit: f64| {
        let span = (hi - lo).max(MIN_SIDE).min((limit - 2.0 * MARGIN).max(MIN_SIDE));
        let center = (lo + hi) * 0.5;
        let lo = (center - span * 0.5)
            .max(MARGIN)
            .min(limit - MARGIN - span);
        (lo, span)
    };
    let (x, w) = clamp_span(a.x, b.x, opts.width);
    let (y, h) = clamp_span(a.y, b.y, opts.height);
    let color = kind_color(tile.kind).hex();
    let degraded = if tile.is_degraded() { " degraded" } else { "" };
    let offscreen = if tile.offscreen { " offscreen" } else { "" };
    let _ = write!(
        out,
        r#"<g class="tile{degraded}{offscreen}" data-container="{}" data-nodes="{}" data-size="{:.3}" data-fill="{:.3}" data-availability="{:.3}""#,
        tile.container.index(),
        tile.nodes,
        tile.size_value,
        tile.fill_value,
        tile.availability,
    );
    if tile.quarantined > 0 {
        let _ = write!(out, r#" data-quarantined="{}""#, tile.quarantined);
    }
    if !tile.segments.is_empty() {
        let mix: Vec<String> = tile
            .segments
            .iter()
            .map(|(name, share)| format!("{}:{:.3}", xml_escape(name), share))
            .collect();
        let _ = write!(out, r#" data-mix="{}""#, mix.join(";"));
    }
    out.push('>');
    let stroke = if tile.is_degraded() { FAULT_STROKE } else { &color };
    let _ = write!(
        out,
        r#"<rect x="{x:.2}" y="{y:.2}" width="{w:.2}" height="{h:.2}" rx="3" fill="none" stroke="{stroke}" stroke-width="1.2" stroke-dasharray="2 3"/>"#,
    );
    if tile.fill_fraction > 0.0 {
        let fh = h * tile.fill_fraction;
        let _ = write!(
            out,
            r#"<rect x="{x:.2}" y="{:.2}" width="{w:.2}" height="{fh:.2}" fill="{color}" fill-opacity="0.35"/>"#,
            y + h - fh,
        );
    }
    let _ = write!(
        out,
        r#"<text x="{:.2}" y="{:.2}" font-size="10" text-anchor="middle" fill="{}">{}</text>"#,
        x + w / 2.0,
        y + h / 2.0 + 3.5,
        opts.theme.label_fill(),
        tile.nodes,
    );
    if opts.labels {
        let _ = write!(
            out,
            r#"<text x="{:.2}" y="{:.2}" font-size="9" text-anchor="middle" fill="{}">{}</text>"#,
            x + w / 2.0,
            y + h + 10.0,
            opts.theme.label_fill(),
            xml_escape(&tile.label)
        );
    }
    out.push_str("</g>\n");
}

/// Renders a view to a standalone SVG document.
pub fn render(view: &GraphView, opts: &SvgOptions) -> String {
    render_projected(view, opts, &Projection::fit(view, opts))
}

/// [`render`] with an explicit projection — the level-of-detail path,
/// whose projection is fitted to the *full* frontier bounds (plus
/// camera) rather than to the subset of nodes that survived the cut.
pub(crate) fn render_projected(view: &GraphView, opts: &SvgOptions, proj: &Projection) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{}" height="{}" viewBox="0 0 {} {}">"#,
        opts.width, opts.height, opts.width, opts.height
    );
    let _ = writeln!(
        out,
        r#"<rect width="100%" height="100%" fill="{}"/>"#,
        opts.theme.background()
    );
    // Edges below everything. An endpoint is either a drawn node or,
    // on the level-of-detail path, an aggregate tile (anchored at its
    // world-footprint center); edges to entities in neither list are
    // dropped, as before.
    let endpoint = |id| {
        view.node(id)
            .map(|n| n.position)
            .or_else(|| view.tile(id).map(|t| (t.lo + t.hi) * 0.5))
    };
    for e in &view.edges {
        let (Some(a), Some(b)) = (endpoint(e.a), endpoint(e.b)) else {
            continue;
        };
        let pa = proj.project(a);
        let pb = proj.project(b);
        let _ = writeln!(
            out,
            r#"<line x1="{:.2}" y1="{:.2}" x2="{:.2}" y2="{:.2}" stroke="{}" stroke-width="1"/>"#,
            pa.x,
            pa.y,
            pb.x,
            pb.y,
            opts.theme.edge_stroke()
        );
    }
    // Tiles under the real nodes: they are background context.
    for tile in &view.tiles {
        write_tile(&mut out, tile, proj, opts);
    }
    for node in &view.nodes {
        write_node(&mut out, node, proj.project(node.position), opts);
    }
    // Degraded-data badge: drawn whenever the trace behind this view
    // went through a lossy ingest. It is the whole-document honesty
    // marker — every value on screen was computed without the dropped
    // events and quarantined samples it counts.
    if view.has_degraded_data() {
        let _ = writeln!(
            out,
            r#"<g class="degraded-data-badge" data-dropped="{}" data-quarantined="{}"><rect x="6" y="6" width="14" height="14" fill="none" stroke="{FAULT_STROKE}" stroke-width="1.5" stroke-dasharray="3 2"/><text x="25" y="17" font-size="11" fill="{FAULT_STROKE}">degraded data: {} event(s) dropped, {} sample(s) quarantined</text></g>"#,
            view.ingest_dropped,
            view.quarantined_total(),
            view.ingest_dropped,
            view.quarantined_total(),
        );
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use viva_agg::{TimeSlice, ViewState};
    use viva_trace::{ContainerKind, TraceBuilder};

    pub(super) fn view() -> GraphView {
        let mut b = TraceBuilder::new();
        let h = b.new_container(b.root(), "h", ContainerKind::Host).unwrap();
        let l = b.new_container(b.root(), "l<&>", ContainerKind::Link).unwrap();
        let power = b.metric("power", "MFlop/s");
        let used = b.metric("power_used", "MFlop/s");
        let bw = b.metric("bandwidth", "Mbit/s");
        b.set_variable(0.0, h, power, 100.0).unwrap();
        b.set_variable(0.0, h, used, 50.0).unwrap();
        b.set_variable(0.0, l, bw, 1000.0).unwrap();
        let t = b.finish(10.0);
        crate::view::build_view(
            &t,
            &ViewState::new(),
            TimeSlice::new(0.0, 10.0),
            &crate::mapping::MappingConfig::default(),
            &crate::scaling::ScalingConfig::default(),
            &|c| viva_layout::Vec2::new(c.index() as f64 * 50.0, 10.0),
            &[(h, l)],
            &[],
        )
    }

    #[test]
    fn renders_document_with_shapes_and_edges() {
        let svg = render(&view(), &SvgOptions::default());
        assert!(svg.starts_with("<svg xmlns"));
        assert!(svg.ends_with("</svg>\n"));
        assert!(svg.contains("node-square"));
        assert!(svg.contains("node-diamond"));
        assert!(svg.contains("<line"));
        // The half-utilized host gets a fill rect (outline + fill).
        assert!(svg.matches("<rect").count() >= 3); // bg + outline + fill
    }

    #[test]
    fn rendering_is_deterministic() {
        let v = view();
        assert_eq!(
            render(&v, &SvgOptions::default()),
            render(&v, &SvgOptions::default())
        );
    }

    #[test]
    fn dark_theme_swaps_palette_only() {
        let v = view();
        let light = render(&v, &SvgOptions::default());
        let dark = render(&v, &SvgOptions { theme: Theme::Dark, ..Default::default() });
        assert_ne!(light, dark);
        assert!(dark.contains(Theme::Dark.background()));
        assert!(!dark.contains("#ffffff"));
        // Geometry is theme-independent: strip colors and compare.
        let strip = |s: &str| {
            s.replace(Theme::Light.background(), "BG")
                .replace(Theme::Dark.background(), "BG")
                .replace(Theme::Light.edge_stroke(), "EDGE")
                .replace(Theme::Dark.edge_stroke(), "EDGE")
        };
        assert_eq!(strip(&light), strip(&dark));
    }

    #[test]
    fn viewport_converts_to_options() {
        let vp = Viewport::new(320.0, 240.0).with_labels(true).with_theme(Theme::Dark);
        let opts = SvgOptions::from(&vp);
        assert_eq!(opts.width, 320.0);
        assert_eq!(opts.height, 240.0);
        assert!(opts.labels);
        assert_eq!(opts.theme, Theme::Dark);
        assert_eq!(opts.padding, 30.0);
    }

    #[test]
    fn labels_are_escaped() {
        let svg = render(&view(), &SvgOptions { labels: true, ..Default::default() });
        assert!(svg.contains("l&lt;&amp;&gt;"));
    }

    #[test]
    fn empty_view_renders() {
        let v = GraphView {
            nodes: Vec::new(),
            edges: Vec::new(),
            tiles: Vec::new(),
            slice: TimeSlice::new(0.0, 1.0),
            ingest_dropped: 0,
        };
        let svg = render(&v, &SvgOptions::default());
        assert!(svg.starts_with("<svg"));
    }

    #[test]
    fn single_node_is_centered() {
        let mut v = view();
        v.nodes.truncate(1);
        v.edges.clear();
        let svg = render(&v, &SvgOptions { width: 200.0, height: 100.0, ..Default::default() });
        // Degenerate bounds: scale 1, node at canvas center.
        assert!(svg.contains(r#"x="80.00""#), "{svg}");
    }
}

#[cfg(test)]
mod degraded_data_tests {
    use super::*;
    use viva_agg::{TimeSlice, ViewState};
    use viva_trace::{RecoveryMode, TraceLoader};

    fn corrupted_view() -> GraphView {
        // Two NaN samples quarantined on h1, one garbage line dropped.
        let text = "span,0,10\n\
                    container,1,0,cluster,c\n\
                    container,2,1,host,h1\n\
                    container,3,1,host,h2\n\
                    metric,0,MFlop/s,power\n\
                    var,0.0,2,0,NaN\n\
                    var,1.0,2,0,nan\n\
                    var,0.0,3,0,25.0\n\
                    this line is garbage\n";
        let report = TraceLoader::new()
            .mode(RecoveryMode::Lenient)
            .load_str(text)
            .expect("lenient load never errors on record faults");
        assert_eq!(report.quarantined, 2);
        assert_eq!(report.dropped, 3, "garbage line + 2 quarantined");
        crate::view::build_view(
            &report.trace,
            &ViewState::new(),
            TimeSlice::new(0.0, 10.0),
            &crate::mapping::MappingConfig::default(),
            &crate::scaling::ScalingConfig::default(),
            &|c| viva_layout::Vec2::new(c.index() as f64 * 40.0, 0.0),
            &[],
            &[],
        )
    }

    #[test]
    fn lossy_ingest_renders_degraded_data_badge() {
        let view = corrupted_view();
        assert!(view.has_degraded_data());
        assert_eq!(view.ingest_dropped, 3);
        assert_eq!(view.quarantined_total(), 2);
        let svg = render(&view, &SvgOptions::default());
        assert!(svg.contains("degraded-data-badge"), "{svg}");
        assert!(svg.contains(r#"data-dropped="3""#));
        assert!(svg.contains("3 event(s) dropped, 2 sample(s) quarantined"));
        // The host carrying the NaNs is individually marked.
        let h1 = view.node_by_label("h1").unwrap();
        assert_eq!(h1.quarantined, 2);
        assert!(svg.contains(r#"data-quarantined="2""#));
        // Rendering a degraded view stays deterministic.
        assert_eq!(svg, render(&corrupted_view(), &SvgOptions::default()));
    }

    #[test]
    fn clean_traces_render_no_badge() {
        let svg = render(&super::tests::view(), &SvgOptions::default());
        assert!(!svg.contains("degraded-data-badge"));
        assert!(!svg.contains("data-quarantined"));
    }
}

#[cfg(test)]
mod availability_tests {
    use super::*;
    use viva_agg::{TimeSlice, ViewState};
    use viva_trace::{metric::names, ContainerKind, TraceBuilder};

    #[test]
    fn failed_resources_render_distinctly() {
        let mut b = TraceBuilder::new();
        let up = b.new_container(b.root(), "up", ContainerKind::Host).unwrap();
        let down = b.new_container(b.root(), "down", ContainerKind::Host).unwrap();
        let power = b.metric("power", "MFlop/s");
        let avail = b.metric(names::AVAILABILITY, "fraction");
        for h in [up, down] {
            b.set_variable(0.0, h, power, 100.0).unwrap();
            b.set_variable(0.0, h, avail, 1.0).unwrap();
        }
        // `down` crashes at t=4 and never recovers.
        b.set_variable(4.0, down, avail, 0.0).unwrap();
        let t = b.finish(10.0);
        let view = crate::view::build_view(
            &t,
            &ViewState::new(),
            TimeSlice::new(0.0, 10.0),
            &crate::mapping::MappingConfig::default(),
            &crate::scaling::ScalingConfig::default(),
            &|c| viva_layout::Vec2::new(c.index() as f64 * 40.0, 0.0),
            &[],
            &[],
        );
        let healthy = view.node_by_label("up").unwrap();
        let failed = view.node_by_label("down").unwrap();
        assert_eq!(healthy.availability, 1.0);
        assert!(!healthy.is_degraded());
        assert!((failed.availability - 0.4).abs() < 1e-9, "up 4 s of 10");
        assert!(failed.is_degraded());

        let svg = render(&view, &SvgOptions::default());
        assert!(svg.contains(r#"data-availability="0.400""#));
        assert!(svg.contains("stroke-dasharray"));
        assert!(svg.contains(FAULT_STROKE));
        assert_eq!(
            svg.matches("degraded").count(),
            1,
            "only the crashed host is marked"
        );
    }

    #[test]
    fn traces_without_availability_render_unmarked() {
        let svg = render(&super::tests::view(), &SvgOptions::default());
        assert!(!svg.contains("data-availability"));
        assert!(!svg.contains("stroke-dasharray"));
    }
}

#[cfg(test)]
mod pie_tests {
    use super::*;
    use viva_agg::{TimeSlice, ViewState};
    use viva_trace::{ContainerKind, TraceBuilder};

    #[test]
    fn pie_segments_render_as_paths() {
        let mut b = TraceBuilder::new();
        let h = b.new_container(b.root(), "h", ContainerKind::Host).unwrap();
        let power = b.metric("power", "MFlop/s");
        let a1 = b.metric("power_used:app1", "MFlop/s");
        let a2 = b.metric("power_used:app2", "MFlop/s");
        b.set_variable(0.0, h, power, 100.0).unwrap();
        b.set_variable(0.0, h, a1, 60.0).unwrap();
        b.set_variable(0.0, h, a2, 20.0).unwrap();
        let t = b.finish(10.0);
        let view = crate::view::build_view(
            &t,
            &ViewState::new(),
            TimeSlice::new(0.0, 10.0),
            &crate::mapping::MappingConfig::default(),
            &crate::scaling::ScalingConfig::default(),
            &|_| viva_layout::Vec2::default(),
            &[],
            &["power_used:app1".to_owned(), "power_used:app2".to_owned()],
        );
        let svg = render(&view, &SvgOptions::default());
        assert_eq!(svg.matches("class=\"pie\"").count(), 2);
        assert!(svg.contains("data-metric=\"power_used:app1\""));
        // A single 100% segment renders as a full circle.
        let mut only = view.clone();
        only.nodes[0].segments = vec![("power_used:app1".to_owned(), 1.0)];
        let svg = render(&only, &SvgOptions::default());
        assert!(svg.contains("class=\"pie\""));
        assert!(!svg.contains("<path"), "full share uses a circle, not an arc");
    }
}
