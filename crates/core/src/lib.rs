//! # viva — scalable topology-based visualization of large distributed systems
//!
//! A Rust reproduction of the visualization technique of *"Interactive
//! Analysis of Large Distributed Systems with Scalable Topology-based
//! Visualization"* (Schnorr, Legrand, Vincent — ISPASS 2013), the
//! technique behind the VIVA tool.
//!
//! The technique correlates network characteristics (bandwidth,
//! topology) with application behaviour by drawing the *monitored
//! entities* of a trace as a graph — squares for hosts sized by
//! computing power, diamonds for links sized by bandwidth, proportional
//! fill for utilization — and makes it scale through two ingredients:
//!
//! 1. **multi-scale data aggregation** (`viva-agg`): any group of the
//!    container hierarchy can be collapsed into one node carrying the
//!    space × time integral of its members' metrics (Equation 1), over
//!    an analyst-chosen time-slice;
//! 2. **dynamic force-directed layout** (`viva-layout`): Barnes-Hut
//!    accelerated springs/charges keep the picture stable while groups
//!    collapse or expand, nodes are dragged, and parameters change.
//!
//! The central type is [`AnalysisSession`]: built once over a trace
//! (and optionally the platform it was recorded on) through
//! [`SessionBuilder`], it owns the interactive state (time-slice,
//! collapsed groups, sliders, pinned nodes), a precomputed aggregation
//! index that keeps slice changes at `O(log n)` per signal, and
//! produces [`GraphView`]s — pure scene descriptions — that render to
//! SVG through a [`Viewport`].
//!
//! ## Quickstart
//!
//! ```
//! use viva::{AnalysisSession, Viewport};
//! use viva_agg::TimeSlice;
//! use viva_trace::{ContainerKind, TraceBuilder};
//!
//! // A two-host trace (normally produced by viva-simflow).
//! let mut b = TraceBuilder::new();
//! let cl = b.new_container(b.root(), "c", ContainerKind::Cluster)?;
//! let h1 = b.new_container(cl, "h1", ContainerKind::Host)?;
//! let h2 = b.new_container(cl, "h2", ContainerKind::Host)?;
//! let power = b.metric("power", "MFlop/s");
//! let used = b.metric("power_used", "MFlop/s");
//! b.set_variable(0.0, h1, power, 100.0)?;
//! b.set_variable(0.0, h2, power, 25.0)?;
//! b.set_variable(0.0, h1, used, 50.0)?;
//! let trace = b.finish(10.0);
//!
//! let mut session = AnalysisSession::builder(trace).build();
//! session.set_time_slice(TimeSlice::new(0.0, 10.0));
//! session.relax(200);
//! let view = session.view();
//! assert_eq!(view.nodes.len(), 2);
//! let svg = session.render(&Viewport::new(640.0, 480.0));
//! assert!(svg.starts_with("<svg"));
//! # Ok::<(), viva_trace::TraceError>(())
//! ```

pub mod animation;
pub mod color;
pub mod lod;
pub mod mapping;
pub mod scaling;
pub mod session;
pub mod svg;
pub mod view;
pub mod viewport;

pub use animation::Animation;
pub use lod::{LodCut, TileSeed};
pub use mapping::{MappingConfig, NodeMapping, Shape};
pub use scaling::ScalingConfig;
pub use session::{AnalysisSession, SessionBuilder, SessionConfig, SessionError};
pub use view::{GraphView, ViewEdge, ViewNode, ViewTile};
pub use viewport::{Camera, CameraError, ParseThemeError, Theme, Viewport, ViewportError};
