//! Level-of-detail cut: which containers to draw, which to tile.
//!
//! The paper scales its topology view by letting the *analyst*
//! aggregate subtrees (§3.2.2). This module adds the complementary
//! *automatic* scaling: given a camera (zoom/pan) over the layout
//! plane, walk the container hierarchy **top-down** and stop early —
//! real nodes are drawn only where they are visible at readable size,
//! and every subtree that is collapsed-by-resolution or fully
//! offscreen is represented by a single aggregate **tile**. Because
//! the walk prunes whole subtrees before any per-node aggregation
//! happens, a frame over 100k hosts costs `O(drawn + tiles)` index
//! queries instead of `O(frontier)`.
//!
//! The cut never second-guesses the analyst: it only ever *groups*
//! visible-frontier nodes, so a tile aggregates exactly the subtree an
//! explicit collapse of its root would — which is what makes tile
//! values testable against plain `AggIndex` subtree queries.

use viva_layout::Vec2;
use viva_trace::{ContainerId, ContainerTree};

/// A subtree the cut decided to draw as one aggregate tile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TileSeed {
    /// Root of the tiled subtree.
    pub root: ContainerId,
    /// Number of visible-frontier nodes the tile absorbed.
    pub nodes: usize,
    /// World-space bounding box of those nodes' positions.
    pub lo: Vec2,
    /// See [`TileSeed::lo`].
    pub hi: Vec2,
    /// `true` when the subtree was tiled for being fully outside the
    /// canvas (rather than too small to read).
    pub offscreen: bool,
}

/// The result of a level-of-detail cut over one frame.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LodCut {
    /// Frontier containers drawn as real nodes, in container-id order.
    pub keep: Vec<ContainerId>,
    /// Tiled subtrees, in container-id order of their roots. Disjoint
    /// from each other and from `keep`.
    pub tiles: Vec<TileSeed>,
    /// Frontier nodes dropped for being individually offscreen. A
    /// *subtree* that is fully offscreen collapses to one offscreen
    /// tile; but once the walk has descended into a partly-visible
    /// subtree, its offscreen members are simply culled — at deep zoom
    /// over 100k spread hosts, tiling each of them would materialize
    /// the very per-node cost the cut exists to avoid. `keep`, the
    /// tiles' absorbed nodes, and `culled` together partition the
    /// visible frontier.
    pub culled: usize,
}

/// Computes the cut for one frame.
///
/// * `frontier` — the visible frontier (the collapse state's output);
/// * `position` — world coordinates per frontier container;
/// * `to_screen` — the frame's world→canvas projection (camera
///   applied). It must preserve axis order (positive uniform scale);
/// * `canvas_w`/`canvas_h` — canvas size in pixels;
/// * `detail_px` — readability threshold: an expanded subtree of two
///   or more frontier nodes is tiled when its projected extent is
///   below this, or when its projected footprint gives each node less
///   than `detail_px²` of canvas area. `0.0` disables resolution
///   tiling (only fully-offscreen subtrees tile).
///
/// The walk starts at the tree root and descends only through
/// subtrees that are partly on screen and large enough to resolve;
/// everything else becomes a [`TileSeed`]. A frontier node reached by
/// the walk is always kept (a single node is always readable), so
/// with an identity camera and `detail_px = 0` the cut keeps the
/// whole frontier — the byte-identity guarantee of the legacy render
/// path rests on that.
pub fn cut(
    tree: &ContainerTree,
    frontier: &[ContainerId],
    position: &dyn Fn(ContainerId) -> Vec2,
    to_screen: &dyn Fn(Vec2) -> Vec2,
    canvas_w: f64,
    canvas_h: f64,
    detail_px: f64,
) -> LodCut {
    let n = tree.len();
    // Per-container bbox + count of frontier positions, accumulated up
    // the ancestor chains: O(frontier × depth), dense-indexed.
    let mut lo = vec![Vec2::new(f64::INFINITY, f64::INFINITY); n];
    let mut hi = vec![Vec2::new(f64::NEG_INFINITY, f64::NEG_INFINITY); n];
    let mut count = vec![0usize; n];
    let mut on_frontier = vec![false; n];
    for &c in frontier {
        on_frontier[c.index()] = true;
        let p = position(c);
        let mut cur = Some(c);
        while let Some(g) = cur {
            let i = g.index();
            lo[i] = lo[i].min(p);
            hi[i] = hi[i].max(p);
            count[i] += 1;
            cur = tree.node(g).parent();
        }
    }

    let mut keep = Vec::new();
    let mut tiles = Vec::new();
    let mut culled = 0usize;
    let mut stack = vec![tree.root()];
    while let Some(c) = stack.pop() {
        let i = c.index();
        if count[i] == 0 {
            continue; // no visible member anywhere below
        }
        let seed = |offscreen| TileSeed { root: c, nodes: count[i], lo: lo[i], hi: hi[i], offscreen };
        let a = to_screen(lo[i]);
        // Single-member bbox is a point: one projection suffices, and
        // at deep zoom the walk reaches every frontier leaf.
        let b = if count[i] == 1 { a } else { to_screen(hi[i]) };
        if b.x < 0.0 || b.y < 0.0 || a.x > canvas_w || a.y > canvas_h {
            // A whole offscreen subtree is worth one summary tile; a
            // single offscreen frontier node inside a partly-visible
            // subtree is just culled (see [`LodCut::culled`]).
            if on_frontier[i] {
                culled += 1;
            } else {
                tiles.push(seed(true));
            }
            continue;
        }
        if on_frontier[i] {
            keep.push(c);
            continue;
        }
        if count[i] >= 2 {
            let (w, h) = (b.x - a.x, b.y - a.y);
            // Footprint area for the density test: a thin line of
            // nodes is still readable if spacing along it is, so each
            // dimension counts as at least one glyph.
            let area = w.max(detail_px) * h.max(detail_px);
            if w.max(h) < detail_px || (count[i] as f64) * detail_px * detail_px > area {
                tiles.push(seed(false));
                continue;
            }
        }
        for &child in tree.node(c).children() {
            stack.push(child);
        }
    }
    keep.sort();
    tiles.sort_by_key(|t| t.root);
    LodCut { keep, tiles, culled }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viva_agg::ViewState;
    use viva_trace::ContainerKind;

    /// root → (c1 → h0,h1 tight at x≈0 ; c2 → h2,h3 spread at x≈100).
    fn tree() -> (ContainerTree, Vec<ContainerId>) {
        let mut t = ContainerTree::new();
        let c1 = t.add(t.root(), "c1", ContainerKind::Cluster).unwrap();
        let c2 = t.add(t.root(), "c2", ContainerKind::Cluster).unwrap();
        let h0 = t.add(c1, "h0", ContainerKind::Host).unwrap();
        let h1 = t.add(c1, "h1", ContainerKind::Host).unwrap();
        let h2 = t.add(c2, "h2", ContainerKind::Host).unwrap();
        let h3 = t.add(c2, "h3", ContainerKind::Host).unwrap();
        (t, vec![c1, c2, h0, h1, h2, h3])
    }

    fn positions(ids: &[ContainerId]) -> impl Fn(ContainerId) -> Vec2 + '_ {
        move |c| match () {
            _ if c == ids[2] => Vec2::new(0.0, 0.0),
            _ if c == ids[3] => Vec2::new(1.0, 1.0),
            _ if c == ids[4] => Vec2::new(100.0, 0.0),
            _ if c == ids[5] => Vec2::new(100.0, 80.0),
            _ => Vec2::default(),
        }
    }

    #[test]
    fn zero_threshold_identity_projection_keeps_everything() {
        let (t, ids) = tree();
        let frontier = ViewState::new().visible(&t);
        let cut = cut(&t, &frontier, &positions(&ids), &|p| p, 200.0, 200.0, 0.0);
        assert_eq!(cut.keep, frontier);
        assert!(cut.tiles.is_empty());
    }

    #[test]
    fn unreadable_subtree_becomes_one_tile() {
        let (t, ids) = tree();
        let frontier = ViewState::new().visible(&t);
        // c1's two hosts project ~1.4px apart: below a 16px threshold
        // they tile; c2's spread hosts survive as real nodes.
        let cut = cut(&t, &frontier, &positions(&ids), &|p| p, 200.0, 200.0, 16.0);
        assert_eq!(cut.keep, vec![ids[4], ids[5]]);
        assert_eq!(cut.tiles.len(), 1);
        let tile = cut.tiles[0];
        assert_eq!(tile.root, ids[0]);
        assert_eq!(tile.nodes, 2);
        assert!(!tile.offscreen);
        assert_eq!((tile.lo, tile.hi), (Vec2::new(0.0, 0.0), Vec2::new(1.0, 1.0)));
    }

    #[test]
    fn offscreen_subtree_becomes_one_tile() {
        let (t, ids) = tree();
        let frontier = ViewState::new().visible(&t);
        // Shift the world so c2 lands past the right canvas edge.
        let shifted = |p: Vec2| Vec2::new(p.x + 50.0, p.y);
        let pos = positions(&ids);
        let cut = cut(&t, &frontier, &pos, &shifted, 120.0, 200.0, 0.0);
        assert_eq!(cut.keep, vec![ids[2], ids[3]]);
        assert_eq!(cut.tiles.len(), 1);
        assert_eq!(cut.tiles[0].root, ids[1]);
        assert!(cut.tiles[0].offscreen);
    }

    #[test]
    fn dense_footprint_tiles_even_when_spread() {
        let (t, ids) = tree();
        let frontier = ViewState::new().visible(&t);
        // A huge per-node threshold: even well-separated nodes get
        // less canvas area than detail_px² each, so the root tiles.
        let cut = cut(&t, &frontier, &positions(&ids), &|p| p, 200.0, 200.0, 150.0);
        assert!(cut.keep.is_empty());
        assert_eq!(cut.tiles.len(), 1);
        assert_eq!(cut.tiles[0].root, t.root());
        assert_eq!(cut.tiles[0].nodes, 4);
    }

    #[test]
    fn collapsed_frontier_node_is_kept_not_tiled() {
        let (t, ids) = tree();
        let mut state = ViewState::new();
        state.collapse(ids[0]); // c1 aggregated by the analyst
        let frontier = state.visible(&t);
        let cut = cut(&t, &frontier, &positions(&ids), &|p| p, 200.0, 200.0, 16.0);
        // The analyst's aggregate is a real frontier node: kept even
        // though its own extent is a point.
        assert!(cut.keep.contains(&ids[0]));
    }

    #[test]
    fn cut_partitions_the_frontier() {
        let (t, ids) = tree();
        let frontier = ViewState::new().visible(&t);
        for detail in [0.0, 4.0, 16.0, 150.0] {
            let cut = cut(&t, &frontier, &positions(&ids), &|p| p, 200.0, 200.0, detail);
            let absorbed: usize = cut.tiles.iter().map(|s| s.nodes).sum();
            assert_eq!(
                cut.keep.len() + absorbed + cut.culled,
                frontier.len(),
                "detail={detail}"
            );
        }
    }

    #[test]
    fn lone_offscreen_frontier_node_is_culled_not_tiled() {
        let (t, ids) = tree();
        let frontier = ViewState::new().visible(&t);
        // Clip the canvas so h3 (y = 80) falls below the bottom edge
        // while its sibling h2 stays visible: c2 is partly visible, so
        // the walk descends and h3 is culled rather than tiled.
        let cut = cut(&t, &frontier, &positions(&ids), &|p| p, 200.0, 50.0, 0.0);
        assert!(cut.keep.contains(&ids[4]));
        assert!(!cut.keep.contains(&ids[5]));
        assert_eq!(cut.culled, 1);
        assert!(cut.tiles.is_empty());
        let absorbed: usize = cut.tiles.iter().map(|s| s.nodes).sum();
        assert_eq!(cut.keep.len() + absorbed + cut.culled, frontier.len());
    }
}
