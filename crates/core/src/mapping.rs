//! Mapping trace metrics to graph visuals (paper §3.1).
//!
//! "A square can be used to represent a host, its size according to its
//! computing power; a diamond to a network link, its size according to
//! the bandwidth utilization" — and, deliberately, *only* simple shapes
//! and properties are offered: square, diamond, circle; size, color and
//! an optional proportional fill.

use std::collections::HashMap;

use viva_trace::ContainerKind;

/// The geometric shape of a node (the paper's full set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Shape {
    /// A square (hosts, by convention).
    #[default]
    Square,
    /// A diamond (links, by convention).
    Diamond,
    /// A circle (routers and generic entities).
    Circle,
}

impl Shape {
    /// Short lowercase label (used by SVG class names and tests).
    pub fn label(self) -> &'static str {
        match self {
            Shape::Square => "square",
            Shape::Diamond => "diamond",
            Shape::Circle => "circle",
        }
    }
}

/// How one kind of monitored entity is drawn.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeMapping {
    /// Geometric shape.
    pub shape: Shape,
    /// Metric whose aggregated value drives the node size (e.g.
    /// `"power"`). `None` draws a fixed-size node.
    pub size_metric: Option<String>,
    /// Metric whose aggregated value drives the proportional fill
    /// (e.g. `"power_used"`). `None` draws an unfilled node.
    pub fill_metric: Option<String>,
}

impl NodeMapping {
    /// A fixed-size, unfilled node of the given shape.
    pub fn plain(shape: Shape) -> NodeMapping {
        NodeMapping { shape, size_metric: None, fill_metric: None }
    }
}

/// The full metric→visual mapping, per container kind.
///
/// "Any mapping defined can be dynamically changed at a given point of
/// the analysis" (§3.1): all accessors have mutable counterparts and
/// the next [`crate::AnalysisSession::view`] call picks changes up.
#[derive(Debug, Clone, PartialEq)]
pub struct MappingConfig {
    rules: HashMap<ContainerKind, NodeMapping>,
}

impl MappingConfig {
    /// The paper's §3.1 default: hosts are squares sized by `power`
    /// and filled by `power_used`; links are diamonds sized by
    /// `bandwidth` and filled by `bandwidth_used`; routers are small
    /// plain circles. Grouping kinds (site/cluster/...) inherit the
    /// host mapping since host metrics dominate their aggregates.
    pub fn paper_defaults() -> MappingConfig {
        use viva_trace::metric::names;
        let host = NodeMapping {
            shape: Shape::Square,
            size_metric: Some(names::POWER.to_owned()),
            fill_metric: Some(names::POWER_USED.to_owned()),
        };
        let link = NodeMapping {
            shape: Shape::Diamond,
            size_metric: Some(names::BANDWIDTH.to_owned()),
            fill_metric: Some(names::BANDWIDTH_USED.to_owned()),
        };
        let mut rules = HashMap::new();
        rules.insert(ContainerKind::Host, host.clone());
        rules.insert(ContainerKind::Link, link);
        rules.insert(ContainerKind::Router, NodeMapping::plain(Shape::Circle));
        for kind in [
            ContainerKind::Root,
            ContainerKind::Site,
            ContainerKind::Cluster,
            ContainerKind::Group,
            ContainerKind::Process,
        ] {
            rules.insert(kind, host.clone());
        }
        MappingConfig { rules }
    }

    /// The mapping for `kind` (falls back to a plain circle for kinds
    /// with no rule).
    pub fn rule(&self, kind: ContainerKind) -> NodeMapping {
        self.rules
            .get(&kind)
            .cloned()
            .unwrap_or_else(|| NodeMapping::plain(Shape::Circle))
    }

    /// Replaces the mapping for `kind`.
    pub fn set_rule(&mut self, kind: ContainerKind, mapping: NodeMapping) {
        self.rules.insert(kind, mapping);
    }

    /// The *size group* of a kind: nodes whose size is driven by the
    /// same metric share one screen scale (paper §4.1). Kinds with no
    /// size metric get their own fixed-size group.
    pub fn size_group(&self, kind: ContainerKind) -> String {
        self.rule(kind)
            .size_metric
            .unwrap_or_else(|| format!("fixed:{kind}"))
    }
}

impl Default for MappingConfig {
    fn default() -> Self {
        MappingConfig::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_follow_section_3_1() {
        let m = MappingConfig::paper_defaults();
        let host = m.rule(ContainerKind::Host);
        assert_eq!(host.shape, Shape::Square);
        assert_eq!(host.size_metric.as_deref(), Some("power"));
        assert_eq!(host.fill_metric.as_deref(), Some("power_used"));
        let link = m.rule(ContainerKind::Link);
        assert_eq!(link.shape, Shape::Diamond);
        assert_eq!(link.size_metric.as_deref(), Some("bandwidth"));
        let router = m.rule(ContainerKind::Router);
        assert_eq!(router.shape, Shape::Circle);
        assert!(router.size_metric.is_none());
    }

    #[test]
    fn rules_can_change_dynamically() {
        let mut m = MappingConfig::default();
        m.set_rule(
            ContainerKind::Host,
            NodeMapping {
                shape: Shape::Circle,
                size_metric: Some("power_used".into()),
                fill_metric: None,
            },
        );
        assert_eq!(m.rule(ContainerKind::Host).shape, Shape::Circle);
    }

    #[test]
    fn size_groups_by_metric() {
        let m = MappingConfig::default();
        // Clusters aggregate hosts: same size group.
        assert_eq!(
            m.size_group(ContainerKind::Host),
            m.size_group(ContainerKind::Cluster)
        );
        assert_ne!(
            m.size_group(ContainerKind::Host),
            m.size_group(ContainerKind::Link)
        );
        // Fixed-size kinds get distinct groups.
        assert_eq!(m.size_group(ContainerKind::Router), "fixed:router");
    }

    #[test]
    fn shape_labels() {
        assert_eq!(Shape::Square.label(), "square");
        assert_eq!(Shape::Diamond.label(), "diamond");
        assert_eq!(Shape::Circle.label(), "circle");
        assert_eq!(Shape::default(), Shape::Square);
    }
}
