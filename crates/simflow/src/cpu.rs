//! Fluid CPU model: tasks on one host share its power equally.

use std::collections::HashMap;

use viva_platform::{HostId, Platform};

use crate::actor::{AccountId, ActorId, Tag};

/// A running computation.
#[derive(Debug)]
pub struct Task {
    /// The actor that issued the computation.
    pub actor: ActorId,
    /// Correlation tag echoed in `on_compute_done`.
    pub tag: Tag,
    /// Optional billing account.
    pub account: Option<AccountId>,
    /// Host executing the task.
    pub host: HostId,
    /// Remaining work, MFlop.
    pub remaining: f64,
    /// Current rate, MFlop/s.
    pub rate: f64,
}

/// All running computations, with per-host fair sharing.
#[derive(Debug, Default)]
pub struct CpuState {
    tasks: HashMap<u64, Task>,
    next_id: u64,
    /// Task ids per host (dense by host index).
    per_host: Vec<Vec<u64>>,
    /// Current effective power per host (capacity may change over
    /// time, e.g. external load or reservations — paper Fig. 1 shows
    /// time-varying availability).
    power: Vec<f64>,
    updated_at: f64,
}

impl CpuState {
    /// Creates an idle CPU state for the hosts of `platform`, at their
    /// nominal power.
    pub fn new_for(platform: &Platform) -> CpuState {
        CpuState {
            tasks: HashMap::new(),
            next_id: 0,
            per_host: vec![Vec::new(); platform.hosts().len()],
            power: platform.hosts().iter().map(|h| h.power()).collect(),
            updated_at: 0.0,
        }
    }

    /// Creates an idle CPU state for `n_hosts` hosts (all at power 0
    /// until [`CpuState::set_power`] is called — prefer
    /// [`CpuState::new_for`]).
    pub fn new(n_hosts: usize) -> CpuState {
        CpuState {
            tasks: HashMap::new(),
            next_id: 0,
            per_host: vec![Vec::new(); n_hosts],
            power: vec![0.0; n_hosts],
            updated_at: 0.0,
        }
    }

    /// Current effective power of `host`, MFlop/s.
    pub fn power(&self, host: HostId) -> f64 {
        self.power[host.index()]
    }

    /// Changes the effective power of `host` (caller must `advance`
    /// first) and rebalances its running tasks.
    pub fn set_power(&mut self, host: HostId, power: f64) {
        self.power[host.index()] = power.max(0.0);
        self.rebalance(host);
    }

    /// Number of running tasks (all hosts).
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether no task is running.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Read access to a task.
    pub fn task(&self, id: u64) -> Option<&Task> {
        self.tasks.get(&id)
    }

    /// Number of tasks on `host`.
    pub fn tasks_on(&self, host: HostId) -> usize {
        self.per_host[host.index()].len()
    }

    /// Drains `remaining` of every task for the elapsed time since the
    /// last call.
    pub fn advance(&mut self, now: f64) {
        let dt = now - self.updated_at;
        if dt > 0.0 {
            for t in self.tasks.values_mut() {
                t.remaining = (t.remaining - t.rate * dt).max(0.0);
            }
        }
        self.updated_at = now;
    }

    /// Registers a task and rebalances its host. Returns the task id.
    pub fn add(&mut self, task: Task) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        let host = task.host;
        self.per_host[host.index()].push(id);
        self.tasks.insert(id, task);
        self.rebalance(host);
        id
    }

    /// Removes a task and rebalances its host.
    pub fn remove(&mut self, id: u64) -> Option<Task> {
        let task = self.tasks.remove(&id)?;
        let slot = &mut self.per_host[task.host.index()];
        slot.retain(|&t| t != id);
        self.rebalance(task.host);
        Some(task)
    }

    fn rebalance(&mut self, host: HostId) {
        let ids = &self.per_host[host.index()];
        if ids.is_empty() {
            return;
        }
        let share = self.power[host.index()] / ids.len() as f64;
        for id in ids {
            self.tasks.get_mut(id).expect("listed id").rate = share;
        }
    }

    /// The earliest completion `(task id, time)` over all tasks.
    pub fn next_completion(&self) -> Option<(u64, f64)> {
        let mut best: Option<(u64, f64)> = None;
        for (&id, t) in &self.tasks {
            if t.rate <= 0.0 {
                continue;
            }
            let at = self.updated_at + t.remaining / t.rate;
            match best {
                Some((bid, bt)) if at > bt || (at == bt && id > bid) => {}
                _ => best = Some((id, at)),
            }
        }
        best
    }

    /// Ids of tasks finished at `now`, ascending.
    pub fn completed_at(&self, now: f64) -> Vec<u64> {
        let _ = now;
        let eps = 1e-9;
        let mut done: Vec<u64> = self
            .tasks
            .iter()
            .filter(|(_, t)| t.remaining <= eps || (t.rate > 0.0 && t.remaining / t.rate <= eps))
            .map(|(&id, _)| id)
            .collect();
        done.sort_unstable();
        done
    }

    /// Removes *all* tasks on `host` (fault injection: the host
    /// crashed), returning them in ascending id order. No rebalance is
    /// needed — the host has no tasks left.
    pub fn drain_host(&mut self, host: HostId) -> Vec<Task> {
        let mut ids = std::mem::take(&mut self.per_host[host.index()]);
        ids.sort_unstable();
        ids.iter()
            .map(|id| self.tasks.remove(id).expect("listed id"))
            .collect()
    }

    /// Power used on `host` by each account, `(account, MFlop/s)`.
    pub fn usage_by_account(&self, host: HostId) -> HashMap<AccountId, f64> {
        let mut out = HashMap::new();
        for id in &self.per_host[host.index()] {
            let t = &self.tasks[id];
            if let Some(acc) = t.account {
                *out.entry(acc).or_insert(0.0) += t.rate;
            }
        }
        out
    }

    /// Total power currently used on `host`, MFlop/s.
    pub fn usage(&self, host: HostId) -> f64 {
        self.per_host[host.index()]
            .iter()
            .map(|id| self.tasks[id].rate)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viva_platform::generators;

    fn platform() -> Platform {
        generators::star(2, 100.0, 1000.0).unwrap()
    }

    fn task(host: HostId, flops: f64) -> Task {
        Task {
            actor: ActorId(0),
            tag: Tag(0),
            account: None,
            host,
            remaining: flops,
            rate: 0.0,
        }
    }

    #[test]
    fn single_task_runs_at_full_power() {
        let p = platform();
        let h = p.hosts()[0].id();
        let mut cpu = CpuState::new_for(&p);
        let id = cpu.add(task(h, 200.0));
        assert_eq!(cpu.task(id).unwrap().rate, 100.0);
        assert_eq!(cpu.next_completion(), Some((id, 2.0)));
        assert_eq!(cpu.usage(h), 100.0);
    }

    #[test]
    fn two_tasks_share_equally() {
        let p = platform();
        let h = p.hosts()[0].id();
        let mut cpu = CpuState::new_for(&p);
        let a = cpu.add(task(h, 100.0));
        let b = cpu.add(task(h, 100.0));
        assert_eq!(cpu.task(a).unwrap().rate, 50.0);
        assert_eq!(cpu.task(b).unwrap().rate, 50.0);
        // Removing one re-accelerates the other.
        cpu.advance(1.0);
        cpu.remove(a);
        assert_eq!(cpu.task(b).unwrap().rate, 100.0);
        assert_eq!(cpu.task(b).unwrap().remaining, 50.0);
        assert_eq!(cpu.next_completion(), Some((b, 1.5)));
    }

    #[test]
    fn tasks_on_different_hosts_are_independent() {
        let p = platform();
        let h0 = p.hosts()[0].id();
        let h1 = p.hosts()[1].id();
        let mut cpu = CpuState::new_for(&p);
        let a = cpu.add(task(h0, 100.0));
        let b = cpu.add(task(h1, 100.0));
        assert_eq!(cpu.task(a).unwrap().rate, 100.0);
        assert_eq!(cpu.task(b).unwrap().rate, 100.0);
        assert_eq!(cpu.tasks_on(h0), 1);
    }

    #[test]
    fn account_usage_tracks_shares() {
        let p = platform();
        let h = p.hosts()[0].id();
        let mut cpu = CpuState::new_for(&p);
        let mut t1 = task(h, 100.0);
        t1.account = Some(AccountId(0));
        let mut t2 = task(h, 100.0);
        t2.account = Some(AccountId(1));
        cpu.add(t1);
        cpu.add(t2);
        let usage = cpu.usage_by_account(h);
        assert_eq!(usage[&AccountId(0)], 50.0);
        assert_eq!(usage[&AccountId(1)], 50.0);
    }

    #[test]
    fn completed_at_flags_drained_tasks() {
        let p = platform();
        let h = p.hosts()[0].id();
        let mut cpu = CpuState::new_for(&p);
        let id = cpu.add(task(h, 100.0));
        cpu.advance(1.0);
        assert_eq!(cpu.completed_at(1.0), vec![id]);
    }
}
