//! Deterministic fault injection: host crashes, link failures,
//! transient degradation windows and message loss.
//!
//! A [`FaultPlan`] is a schedule of [`FaultEvent`]s validated against a
//! platform and handed to [`crate::Simulation::inject_faults`] before
//! the run. Everything is deterministic: the same plan (including its
//! `seed`, which drives message-loss sampling) against the same
//! simulation yields a byte-identical trace.
//!
//! Fault semantics implemented by the engine:
//!
//! * **Host crash** — running tasks on the host are killed, in-flight
//!   flows from/to actors on the host are killed (live peers get
//!   [`crate::Actor::on_send_failed`]), and every event addressed to an
//!   actor on the host (timers, deliveries, completions) is dropped
//!   until the host recovers. Actors do *not* lose their memory on
//!   recovery — the model is a machine going silent, not a process
//!   restart.
//! * **Link failure** — flows crossing the link are killed (senders get
//!   `on_send_failed`), and new sends routed across it fail after the
//!   route latency.
//! * **Degradation window** — the link's capacity is multiplied by a
//!   factor in `(0, 1]` between two instants; flows slow down but
//!   survive.
//! * **Message loss window** — during the window each send is dropped
//!   independently with the given probability (sampled from the plan's
//!   seed and the send's sequence number, so unrelated sends do not
//!   perturb each other). A dropped send triggers *no* callback: the
//!   sender must protect itself with
//!   [`crate::Ctx::send_with_timeout`].
//!
//! The module also hosts the actor-level resilience primitives:
//! [`RetryPolicy`] (exponential backoff with deterministic jitter) and
//! [`Heartbeat`] (peer liveness bookkeeping by timeout).

use std::collections::HashMap;
use std::fmt;

use viva_platform::{HostId, LinkId, Platform};

use crate::actor::ActorId;

/// Why a send did not complete. Delivered to the sender via
/// [`crate::Actor::on_send_failed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SendFailure {
    /// The destination host was down when the send was issued, or
    /// crashed while the message was in flight.
    HostDown,
    /// A link on the route was down when the send was issued, or failed
    /// while the message was in flight.
    LinkDown,
    /// A send issued with [`crate::Ctx::send_with_timeout`] did not
    /// complete within its timeout.
    TimedOut,
}

impl fmt::Display for SendFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendFailure::HostDown => f.write_str("destination host down"),
            SendFailure::LinkDown => f.write_str("route link down"),
            SendFailure::TimedOut => f.write_str("send timed out"),
        }
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// The host goes silent at `at`: tasks and flows killed, events
    /// dropped.
    HostCrash { at: f64, host: HostId },
    /// The host comes back at `at` with its nominal power.
    HostRecover { at: f64, host: HostId },
    /// The link goes down at `at`: crossing flows killed.
    LinkFail { at: f64, link: LinkId },
    /// The link comes back at `at` with its nominal bandwidth.
    LinkRecover { at: f64, link: LinkId },
    /// The link's capacity is multiplied by `factor` during
    /// `[at, until)`.
    LinkDegrade {
        at: f64,
        until: f64,
        link: LinkId,
        factor: f64,
    },
    /// During `[at, until)` every send is dropped independently with
    /// `probability`.
    MessageLoss {
        at: f64,
        until: f64,
        probability: f64,
    },
}

impl FaultEvent {
    /// The instant the fault takes effect.
    pub fn at(&self) -> f64 {
        match *self {
            FaultEvent::HostCrash { at, .. }
            | FaultEvent::HostRecover { at, .. }
            | FaultEvent::LinkFail { at, .. }
            | FaultEvent::LinkRecover { at, .. }
            | FaultEvent::LinkDegrade { at, .. }
            | FaultEvent::MessageLoss { at, .. } => at,
        }
    }
}

/// An invalid [`FaultPlan`] (caught by validation, never by a panic
/// mid-simulation).
#[derive(Debug, Clone, PartialEq)]
pub enum FaultError {
    /// A host id outside the platform.
    UnknownHost(HostId),
    /// A link id outside the platform.
    UnknownLink(LinkId),
    /// An event time that is negative or not finite.
    InvalidTime(f64),
    /// A window whose end precedes its start.
    InvalidWindow { at: f64, until: f64 },
    /// A degradation factor outside `(0, 1]`.
    InvalidFactor(f64),
    /// A loss probability outside `[0, 1]`.
    InvalidProbability(f64),
    /// Faults injected after the simulation started.
    SimulationStarted,
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::UnknownHost(h) => write!(f, "unknown host index {}", h.index()),
            FaultError::UnknownLink(l) => write!(f, "unknown link index {}", l.index()),
            FaultError::InvalidTime(t) => write!(f, "invalid fault time {t}"),
            FaultError::InvalidWindow { at, until } => {
                write!(f, "invalid fault window [{at}, {until})")
            }
            FaultError::InvalidFactor(x) => {
                write!(f, "degradation factor {x} outside (0, 1]")
            }
            FaultError::InvalidProbability(p) => {
                write!(f, "loss probability {p} outside [0, 1]")
            }
            FaultError::SimulationStarted => {
                f.write_str("faults must be injected before the simulation starts")
            }
        }
    }
}

impl std::error::Error for FaultError {}

/// A seeded, deterministic schedule of faults.
///
/// Build with the fluent methods, validate implicitly via
/// [`crate::Simulation::inject_faults`] (or explicitly via
/// [`FaultPlan::validate`]).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    seed: u64,
}

impl FaultPlan {
    /// An empty plan with seed 0.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Sets the seed driving message-loss sampling.
    pub fn with_seed(mut self, seed: u64) -> FaultPlan {
        self.seed = seed;
        self
    }

    /// The message-loss sampling seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Schedules a host crash at `at`.
    pub fn host_crash(mut self, at: f64, host: HostId) -> FaultPlan {
        self.events.push(FaultEvent::HostCrash { at, host });
        self
    }

    /// Schedules a host recovery at `at`.
    pub fn host_recover(mut self, at: f64, host: HostId) -> FaultPlan {
        self.events.push(FaultEvent::HostRecover { at, host });
        self
    }

    /// Schedules a crash at `at` and recovery at `at + downtime`.
    pub fn host_outage(self, at: f64, downtime: f64, host: HostId) -> FaultPlan {
        self.host_crash(at, host).host_recover(at + downtime, host)
    }

    /// Schedules a link failure at `at`.
    pub fn link_fail(mut self, at: f64, link: LinkId) -> FaultPlan {
        self.events.push(FaultEvent::LinkFail { at, link });
        self
    }

    /// Schedules a link recovery at `at`.
    pub fn link_recover(mut self, at: f64, link: LinkId) -> FaultPlan {
        self.events.push(FaultEvent::LinkRecover { at, link });
        self
    }

    /// Schedules a failure at `at` and recovery at `at + downtime`.
    pub fn link_outage(self, at: f64, downtime: f64, link: LinkId) -> FaultPlan {
        self.link_fail(at, link).link_recover(at + downtime, link)
    }

    /// Multiplies the link's capacity by `factor` during `[at, until)`.
    pub fn link_degrade(mut self, at: f64, until: f64, link: LinkId, factor: f64) -> FaultPlan {
        self.events.push(FaultEvent::LinkDegrade { at, until, link, factor });
        self
    }

    /// Drops each send with `probability` during `[at, until)`.
    pub fn message_loss(mut self, at: f64, until: f64, probability: f64) -> FaultPlan {
        self.events.push(FaultEvent::MessageLoss { at, until, probability });
        self
    }

    /// Checks every event against `platform`: ids in range, times
    /// finite and non-negative, windows ordered, factors and
    /// probabilities in range.
    pub fn validate(&self, platform: &Platform) -> Result<(), FaultError> {
        let n_hosts = platform.hosts().len();
        let n_links = platform.links().len();
        let check_time = |t: f64| {
            if t.is_finite() && t >= 0.0 {
                Ok(())
            } else {
                Err(FaultError::InvalidTime(t))
            }
        };
        for ev in &self.events {
            match *ev {
                FaultEvent::HostCrash { at, host } | FaultEvent::HostRecover { at, host } => {
                    check_time(at)?;
                    if host.index() >= n_hosts {
                        return Err(FaultError::UnknownHost(host));
                    }
                }
                FaultEvent::LinkFail { at, link } | FaultEvent::LinkRecover { at, link } => {
                    check_time(at)?;
                    if link.index() >= n_links {
                        return Err(FaultError::UnknownLink(link));
                    }
                }
                FaultEvent::LinkDegrade { at, until, link, factor } => {
                    check_time(at)?;
                    check_time(until)?;
                    if until < at {
                        return Err(FaultError::InvalidWindow { at, until });
                    }
                    if link.index() >= n_links {
                        return Err(FaultError::UnknownLink(link));
                    }
                    if !(factor > 0.0 && factor <= 1.0) {
                        return Err(FaultError::InvalidFactor(factor));
                    }
                }
                FaultEvent::MessageLoss { at, until, probability } => {
                    check_time(at)?;
                    check_time(until)?;
                    if until < at {
                        return Err(FaultError::InvalidWindow { at, until });
                    }
                    if !(0.0..=1.0).contains(&probability) {
                        return Err(FaultError::InvalidProbability(probability));
                    }
                }
            }
        }
        Ok(())
    }
}

/// SplitMix64 finalizer: a well-mixed 64-bit hash.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform `f64` in `[0, 1)` from `(seed, counter)` — stateless, so a
/// draw for one send never perturbs the draw for another.
pub(crate) fn unit_hash(seed: u64, counter: u64) -> f64 {
    (mix64(seed ^ mix64(counter)) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Retry schedule: exponential backoff with deterministic jitter.
///
/// Attempt `n` (0-based) waits `base_delay · factor^n`, capped at
/// `max_delay`, stretched by up to `jitter` (relative) using a hash of
/// `(seed, n)` — deterministic per attempt, yet desynchronized between
/// actors using different seeds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Give up after this many attempts.
    pub max_attempts: u32,
    /// Delay before the first retry, seconds.
    pub base_delay: f64,
    /// Multiplier applied per attempt (≥ 1).
    pub factor: f64,
    /// Upper bound on the un-jittered delay, seconds.
    pub max_delay: f64,
    /// Relative jitter amplitude in `[0, 1]`: the delay is stretched by
    /// `1 + jitter · u` with `u` uniform in `[0, 1)`.
    pub jitter: f64,
    /// Seed for the jitter hash (use the actor id to desynchronize).
    pub seed: u64,
}

impl RetryPolicy {
    /// Doubling backoff from `base_delay`, 10% jitter, capped at
    /// `64 · base_delay`.
    pub fn exponential(base_delay: f64, max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts,
            base_delay,
            factor: 2.0,
            max_delay: base_delay * 64.0,
            jitter: 0.1,
            seed: 0,
        }
    }

    /// Same policy with a different jitter seed.
    pub fn with_seed(mut self, seed: u64) -> RetryPolicy {
        self.seed = seed;
        self
    }

    /// The delay before retry number `attempt` (0-based), or `None`
    /// when the attempt budget is exhausted.
    pub fn delay(&self, attempt: u32) -> Option<f64> {
        if attempt >= self.max_attempts {
            return None;
        }
        let backoff = (self.base_delay * self.factor.powi(attempt as i32)).min(self.max_delay);
        let stretch = 1.0 + self.jitter * unit_hash(self.seed, attempt as u64);
        Some(backoff * stretch)
    }
}

/// Peer liveness bookkeeping: record when each peer was last heard
/// from, report the ones silent past the timeout.
#[derive(Debug, Clone)]
pub struct Heartbeat {
    timeout: f64,
    last_seen: HashMap<ActorId, f64>,
}

impl Heartbeat {
    /// Peers silent for longer than `timeout` seconds are presumed
    /// dead.
    pub fn new(timeout: f64) -> Heartbeat {
        assert!(timeout > 0.0, "heartbeat timeout must be positive");
        Heartbeat { timeout, last_seen: HashMap::new() }
    }

    /// The configured timeout, seconds.
    pub fn timeout(&self) -> f64 {
        self.timeout
    }

    /// Records a sign of life from `peer` at time `now`.
    pub fn observe(&mut self, peer: ActorId, now: f64) {
        self.last_seen.insert(peer, now);
    }

    /// Stops tracking `peer` (e.g. once presumed dead).
    pub fn forget(&mut self, peer: ActorId) {
        self.last_seen.remove(&peer);
    }

    /// Number of tracked peers.
    pub fn tracked(&self) -> usize {
        self.last_seen.len()
    }

    /// Peers silent past the timeout at time `now`, in ascending id
    /// order (deterministic).
    pub fn expired(&self, now: f64) -> Vec<ActorId> {
        let mut out: Vec<ActorId> = self
            .last_seen
            .iter()
            .filter(|&(_, &seen)| now - seen > self.timeout)
            .map(|(&a, _)| a)
            .collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viva_platform::generators;

    #[test]
    fn plan_validates_against_platform() {
        let p = generators::star(2, 100.0, 1000.0).unwrap();
        let h = p.hosts()[0].id();
        let l = p.links()[0].id();
        let good = FaultPlan::new()
            .host_outage(1.0, 2.0, h)
            .link_outage(0.5, 1.0, l)
            .link_degrade(2.0, 3.0, l, 0.25)
            .message_loss(0.0, 10.0, 0.1);
        assert!(good.validate(&p).is_ok());
        assert_eq!(good.events().len(), 6);

        let bad_host = FaultPlan::new().host_crash(1.0, HostId::from_index(99));
        assert_eq!(
            bad_host.validate(&p),
            Err(FaultError::UnknownHost(HostId::from_index(99)))
        );
        let bad_link = FaultPlan::new().link_fail(1.0, LinkId::from_index(99));
        assert_eq!(
            bad_link.validate(&p),
            Err(FaultError::UnknownLink(LinkId::from_index(99)))
        );
        let bad_time = FaultPlan::new().host_crash(f64::NAN, h);
        assert!(matches!(bad_time.validate(&p), Err(FaultError::InvalidTime(_))));
        let bad_window = FaultPlan::new().link_degrade(5.0, 1.0, l, 0.5);
        assert_eq!(
            bad_window.validate(&p),
            Err(FaultError::InvalidWindow { at: 5.0, until: 1.0 })
        );
        let bad_factor = FaultPlan::new().link_degrade(1.0, 2.0, l, 0.0);
        assert_eq!(bad_factor.validate(&p), Err(FaultError::InvalidFactor(0.0)));
        let bad_p = FaultPlan::new().message_loss(0.0, 1.0, 1.5);
        assert_eq!(bad_p.validate(&p), Err(FaultError::InvalidProbability(1.5)));
    }

    #[test]
    fn retry_policy_backs_off_exponentially() {
        let r = RetryPolicy { jitter: 0.0, ..RetryPolicy::exponential(1.0, 4) };
        assert_eq!(r.delay(0), Some(1.0));
        assert_eq!(r.delay(1), Some(2.0));
        assert_eq!(r.delay(2), Some(4.0));
        assert_eq!(r.delay(3), Some(8.0));
        assert_eq!(r.delay(4), None);
    }

    #[test]
    fn retry_jitter_is_deterministic_and_bounded() {
        let r = RetryPolicy::exponential(1.0, 8).with_seed(42);
        for attempt in 0..8 {
            let a = r.delay(attempt).unwrap();
            let b = r.delay(attempt).unwrap();
            assert_eq!(a, b, "jitter must be deterministic");
            let base = 2.0f64.powi(attempt as i32).min(64.0);
            assert!(a >= base && a <= base * 1.1 + 1e-12, "delay {a} for base {base}");
        }
        // Different seeds desynchronize.
        let other = RetryPolicy::exponential(1.0, 8).with_seed(43);
        assert!((0..8).any(|i| r.delay(i) != other.delay(i)));
    }

    #[test]
    fn heartbeat_expires_silent_peers() {
        let mut hb = Heartbeat::new(5.0);
        hb.observe(ActorId(1), 0.0);
        hb.observe(ActorId(2), 3.0);
        assert!(hb.expired(4.0).is_empty());
        assert_eq!(hb.expired(6.0), vec![ActorId(1)]);
        assert_eq!(hb.expired(100.0), vec![ActorId(1), ActorId(2)]);
        hb.observe(ActorId(1), 7.0);
        assert_eq!(hb.expired(9.0), vec![ActorId(2)]);
        hb.forget(ActorId(2));
        assert!(hb.expired(9.0).is_empty());
        assert_eq!(hb.tracked(), 1);
    }

    #[test]
    fn unit_hash_is_uniform_enough() {
        let n = 10_000;
        let mean: f64 = (0..n).map(|i| unit_hash(7, i)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        // Stateless: same inputs, same output.
        assert_eq!(unit_hash(7, 3), unit_hash(7, 3));
        assert_ne!(unit_hash(7, 3), unit_hash(8, 3));
    }
}
