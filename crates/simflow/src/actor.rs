//! The actor programming model: event-driven application processes.

use std::any::Any;
use std::fmt;

use viva_platform::{HostId, Platform};

/// Identifier of a spawned actor within one [`crate::Simulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActorId(pub(crate) u32);

impl ActorId {
    /// Dense index of this actor (spawn order).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds the id of the `index`-th spawned actor. Ids are assigned
    /// deterministically in spawn order, so workloads may compute the
    /// ids of actors they have not spawned yet (e.g. to wire a task
    /// graph whose stages reference each other).
    pub fn from_index(index: usize) -> ActorId {
        ActorId(index as u32)
    }
}

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// Identifier of a traced *account* — one competing application whose
/// resource usage is recorded separately (paper §5.2 traces two
/// master-worker applications on the same platform).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AccountId(pub(crate) u32);

impl AccountId {
    /// Dense index of this account (registration order).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// User-chosen correlation tag echoed back in completion callbacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tag(pub u64);

/// An opaque message payload.
pub type Payload = Box<dyn Any>;

/// An application process. All methods default to no-ops; implement
/// the ones your protocol needs.
///
/// Methods receive a [`Ctx`] through which all side effects (sends,
/// computations, timers) are issued; effects are applied by the engine
/// after the callback returns, in issue order.
pub trait Actor {
    /// Called once when the simulation starts.
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let _ = ctx;
    }

    /// A message sent by `from` has been fully received.
    fn on_message(&mut self, from: ActorId, payload: Payload, ctx: &mut Ctx<'_>) {
        let _ = (from, payload, ctx);
    }

    /// A send issued with this tag has left this actor's NIC (the flow
    /// completed; the receiver gets `on_message` at the same instant).
    fn on_send_done(&mut self, tag: Tag, ctx: &mut Ctx<'_>) {
        let _ = (tag, ctx);
    }

    /// A computation issued with this tag finished.
    fn on_compute_done(&mut self, tag: Tag, ctx: &mut Ctx<'_>) {
        let _ = (tag, ctx);
    }

    /// A timer issued with this tag fired.
    fn on_timer(&mut self, tag: Tag, ctx: &mut Ctx<'_>) {
        let _ = (tag, ctx);
    }

    /// A send issued with this tag failed: the destination host or a
    /// route link was (or went) down, or the send's timeout elapsed
    /// (see [`crate::fault::SendFailure`]). The message is lost; the
    /// receiver never sees it. Note that a *silently dropped* message
    /// (fault-plan message loss) triggers no callback at all — pair
    /// sends with [`Ctx::send_with_timeout`] to detect those.
    fn on_send_failed(&mut self, tag: Tag, reason: crate::fault::SendFailure, ctx: &mut Ctx<'_>) {
        let _ = (tag, reason, ctx);
    }
}

/// A side effect requested by an actor callback.
#[derive(Debug)]
pub(crate) enum Command {
    Send {
        from: ActorId,
        to: ActorId,
        size: f64,
        payload: Payload,
        tag: Tag,
        account: Option<AccountId>,
        timeout: Option<f64>,
    },
    Execute {
        actor: ActorId,
        flops: f64,
        tag: Tag,
        account: Option<AccountId>,
    },
    Timer {
        actor: ActorId,
        delay: f64,
        tag: Tag,
    },
    PushState {
        actor: ActorId,
        state: String,
    },
    PopState {
        actor: ActorId,
    },
}

/// The command context handed to actor callbacks.
///
/// Provides read access to simulated time and the platform, and
/// collects the side effects the actor requests.
#[derive(Debug)]
pub struct Ctx<'a> {
    pub(crate) now: f64,
    pub(crate) me: ActorId,
    pub(crate) host: HostId,
    pub(crate) platform: &'a Platform,
    pub(crate) commands: &'a mut Vec<Command>,
}

impl Ctx<'_> {
    /// Current simulated time, seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// The actor being called.
    pub fn me(&self) -> ActorId {
        self.me
    }

    /// The host this actor runs on.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// The simulated platform.
    pub fn platform(&self) -> &Platform {
        self.platform
    }

    /// Sends `size` Mbit to `to`; the receiver gets
    /// [`Actor::on_message`] when the flow completes, and this actor
    /// gets [`Actor::on_send_done`] with `tag` at the same instant.
    pub fn send(&mut self, to: ActorId, size: f64, payload: Payload, tag: Tag) {
        self.send_as(to, size, payload, tag, None);
    }

    /// Like [`Ctx::send`] but billed to `account` in the trace.
    pub fn send_as(
        &mut self,
        to: ActorId,
        size: f64,
        payload: Payload,
        tag: Tag,
        account: Option<AccountId>,
    ) {
        self.commands.push(Command::Send {
            from: self.me,
            to,
            size,
            payload,
            tag,
            account,
            timeout: None,
        });
    }

    /// Like [`Ctx::send`], but if the message has not been delivered
    /// within `timeout` seconds the flow is killed and this actor gets
    /// [`Actor::on_send_failed`] with
    /// [`crate::fault::SendFailure::TimedOut`]. The timeout also fires
    /// when the message was silently dropped by a fault-plan loss
    /// window — this is the only way for a sender to detect that.
    pub fn send_with_timeout(
        &mut self,
        to: ActorId,
        size: f64,
        payload: Payload,
        tag: Tag,
        timeout: f64,
    ) {
        self.send_with_timeout_as(to, size, payload, tag, timeout, None);
    }

    /// Like [`Ctx::send_with_timeout`] but billed to `account`.
    pub fn send_with_timeout_as(
        &mut self,
        to: ActorId,
        size: f64,
        payload: Payload,
        tag: Tag,
        timeout: f64,
        account: Option<AccountId>,
    ) {
        self.commands.push(Command::Send {
            from: self.me,
            to,
            size,
            payload,
            tag,
            account,
            timeout: Some(timeout),
        });
    }

    /// Starts a computation of `flops` MFlop on this actor's host;
    /// completion is signalled via [`Actor::on_compute_done`].
    pub fn execute(&mut self, flops: f64, tag: Tag) {
        self.execute_as(flops, tag, None);
    }

    /// Like [`Ctx::execute`] but billed to `account` in the trace.
    pub fn execute_as(&mut self, flops: f64, tag: Tag, account: Option<AccountId>) {
        self.commands.push(Command::Execute {
            actor: self.me,
            flops,
            tag,
            account,
        });
    }

    /// Fires [`Actor::on_timer`] with `tag` after `delay` seconds.
    pub fn set_timer(&mut self, delay: f64, tag: Tag) {
        self.commands.push(Command::Timer { actor: self.me, delay, tag });
    }

    /// Records entering a named state on this actor's host container
    /// (no-op when tracing is disabled).
    pub fn push_state(&mut self, state: impl Into<String>) {
        self.commands.push(Command::PushState { actor: self.me, state: state.into() });
    }

    /// Records leaving the current state (no-op when tracing is
    /// disabled).
    pub fn pop_state(&mut self) {
        self.commands.push(Command::PopState { actor: self.me });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display() {
        assert_eq!(ActorId(4).to_string(), "a4");
        assert_eq!(ActorId(4).index(), 4);
        assert_eq!(AccountId(1).index(), 1);
    }

    #[test]
    fn ctx_queues_commands_in_order() {
        let platform = viva_platform::PlatformBuilder::new("x").build().unwrap();
        let mut commands = Vec::new();
        let mut ctx = Ctx {
            now: 1.0,
            me: ActorId(0),
            host: viva_platform::HostId::from_index(0),
            platform: &platform,
            commands: &mut commands,
        };
        ctx.execute(10.0, Tag(1));
        ctx.set_timer(2.0, Tag(2));
        ctx.push_state("busy");
        assert_eq!(ctx.now(), 1.0);
        assert_eq!(ctx.me(), ActorId(0));
        assert_eq!(commands.len(), 3);
        assert!(matches!(commands[0], Command::Execute { flops, .. } if flops == 10.0));
        assert!(matches!(commands[1], Command::Timer { delay, .. } if delay == 2.0));
        assert!(matches!(&commands[2], Command::PushState { state, .. } if state == "busy"));
    }
}
