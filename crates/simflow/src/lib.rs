//! # viva-simflow — discrete-event flow-level simulator
//!
//! A SimGrid-flavoured simulator that produces the traces the paper's
//! case studies visualize (§5: "The traces used in these case studies
//! were obtained using SMPI and the SimGrid simulation toolkit").
//!
//! The model is *fluid*: network transfers and computations are
//! activities with a remaining amount of work that drains at a rate set
//! by resource sharing —
//!
//! * **network**: all flows crossing a set of links share bandwidth
//!   according to **max-min fairness** computed by progressive filling
//!   ([`network::maxmin_rates`]), the same family of models SimGrid
//!   uses for TCP;
//! * **CPU**: tasks running on one host share its power equally.
//!
//! Applications are written as [`Actor`]s: event-driven state machines
//! that react to messages, completions and timers via a command
//! context ([`Ctx`]). The engine is fully deterministic: same platform,
//! same actors, same event order, byte-identical traces.
//!
//! When tracing is enabled ([`Simulation::enable_tracing`]) the engine
//! records a [`viva_trace::Trace`] with the platform hierarchy as the
//! container tree and capacity/utilization signals per host and link —
//! optionally broken down per *account* (one account per competing
//! application; this feeds the paper's Fig. 8/9 analysis).
//!
//! ## Example
//!
//! ```
//! use viva_platform::generators;
//! use viva_simflow::{Actor, Ctx, Payload, Simulation, Tag};
//!
//! struct Pinger { peer: Option<viva_simflow::ActorId> }
//! struct Ponger;
//!
//! impl Actor for Pinger {
//!     fn on_start(&mut self, ctx: &mut Ctx<'_>) {
//!         if let Some(p) = self.peer {
//!             ctx.send(p, 8.0, Box::new("ping"), Tag(1));
//!         }
//!     }
//! }
//! impl Actor for Ponger {
//!     fn on_message(&mut self, _from: viva_simflow::ActorId, msg: Payload, _ctx: &mut Ctx<'_>) {
//!         assert_eq!(*msg.downcast::<&str>().unwrap(), "ping");
//!     }
//! }
//!
//! let p = generators::two_clusters(&Default::default())?;
//! let a = p.host_by_name("adonis-1").unwrap().id();
//! let b = p.host_by_name("griffon-1").unwrap().id();
//! let mut sim = Simulation::new(p);
//! let ponger = sim.spawn(b, Box::new(Ponger));
//! sim.spawn(a, Box::new(Pinger { peer: Some(ponger) }));
//! let end = sim.run();
//! assert!(end > 0.0); // transfer took simulated time
//! # Ok::<(), viva_platform::PlatformError>(())
//! ```

pub mod actor;
pub mod cpu;
pub mod engine;
pub mod fault;
pub mod network;
pub mod tracer;

pub use actor::{AccountId, Actor, ActorId, Ctx, Payload, Tag};
pub use engine::Simulation;
pub use fault::{FaultError, FaultEvent, FaultPlan, Heartbeat, RetryPolicy, SendFailure};
pub use tracer::{metric_for_account, TracingConfig};
