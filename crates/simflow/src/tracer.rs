//! Trace recording: mirrors the simulated platform into a
//! [`viva_trace::Trace`] while the simulation runs.
//!
//! The container tree follows the platform hierarchy (paper §3.2.2:
//! spatial neighbourhoods are "inherited from the traces through the
//! definition of groups"): `root → site → cluster → host`, with link
//! containers attached to the scope that owns them (cluster links under
//! their cluster, site links under their site, backbone links under the
//! root).
//!
//! Recorded metrics (paper §3.1's running example):
//!
//! * `power` / `bandwidth` — capacities, set once at time 0 (node
//!   *size* in the visualization);
//! * `power_used` / `bandwidth_used` — instantaneous utilization (node
//!   *fill*);
//! * `power_used:{account}` / `bandwidth_used:{account}` — per-account
//!   utilization breakdown when accounts are registered.

use std::collections::HashMap;

use viva_platform::{LinkScope, Platform, RouterId};
use viva_trace::{metric::names, ContainerId, ContainerKind, MetricId, Trace, TraceBuilder};

use crate::actor::AccountId;

/// Picks the container a router should live under: the most specific
/// scope (cluster > site > grid) among its incident links.
fn router_scope(platform: &Platform, router: RouterId) -> LinkScope {
    let mut best = LinkScope::Grid;
    for &(link, _) in platform.neighbors(router.into()) {
        match (platform.link(link).scope(), best) {
            (s @ LinkScope::Cluster(_), _) => return s,
            (s @ LinkScope::Site(_), LinkScope::Grid) => best = s,
            _ => {}
        }
    }
    best
}

/// Name of the per-account variant of a base metric.
pub fn metric_for_account(base: &str, account: &str) -> String {
    format!("{base}:{account}")
}

/// What the tracer records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TracingConfig {
    /// Record one [`viva_trace::LinkRecord`] per completed transfer
    /// (host-to-host). Heavy for large workloads.
    pub record_messages: bool,
    /// Record per-account utilization metrics.
    pub record_accounts: bool,
}

impl Default for TracingConfig {
    fn default() -> Self {
        TracingConfig { record_messages: true, record_accounts: true }
    }
}

/// The live trace recorder owned by a tracing [`crate::Simulation`].
#[derive(Debug)]
pub struct SimTracer {
    builder: TraceBuilder,
    config: TracingConfig,
    host_containers: Vec<ContainerId>,
    link_containers: Vec<ContainerId>,
    power: MetricId,
    power_used: MetricId,
    bandwidth: MetricId,
    bandwidth_used: MetricId,
    availability: MetricId,
    /// `(account, is_power)` → metric id, created lazily.
    account_metrics: HashMap<(AccountId, bool), MetricId>,
    account_names: Vec<String>,
    /// Last emitted utilization per host / link, to suppress
    /// no-op breakpoints.
    last_host_used: Vec<f64>,
    last_link_used: Vec<f64>,
    last_host_acct: HashMap<(usize, AccountId), f64>,
    last_link_acct: HashMap<(usize, AccountId), f64>,
}

impl SimTracer {
    /// Builds the container tree and capacity signals for `platform`.
    pub fn new(platform: &Platform, config: TracingConfig, accounts: &[String]) -> SimTracer {
        let mut b = TraceBuilder::new();
        let root = b.root();
        let power = b.metric(names::POWER, "MFlop/s");
        let power_used = b.metric(names::POWER_USED, "MFlop/s");
        let bandwidth = b.metric(names::BANDWIDTH, "Mbit/s");
        let bandwidth_used = b.metric(names::BANDWIDTH_USED, "Mbit/s");
        let availability = b.metric(names::AVAILABILITY, "fraction");

        let mut site_containers = Vec::with_capacity(platform.sites().len());
        for s in platform.sites() {
            let c = b
                .new_container(root, s.name(), ContainerKind::Site)
                .expect("root exists");
            site_containers.push(c);
        }
        let mut cluster_containers = Vec::with_capacity(platform.clusters().len());
        for cl in platform.clusters() {
            let parent = site_containers[cl.site().index()];
            let c = b
                .new_container(parent, cl.name(), ContainerKind::Cluster)
                .expect("site exists");
            cluster_containers.push(c);
        }
        let mut host_containers = Vec::with_capacity(platform.hosts().len());
        for h in platform.hosts() {
            let parent = cluster_containers[h.cluster().index()];
            let c = b
                .new_container(parent, h.name(), ContainerKind::Host)
                .expect("cluster exists");
            b.set_variable(0.0, c, power, h.power()).expect("fresh signal");
            b.set_variable(0.0, c, availability, 1.0).expect("fresh signal");
            host_containers.push(c);
        }
        // Routers carry no metrics but are part of the drawn topology
        // (hosts connect to links, links to switches); attach each to
        // the most specific scope among its incident links.
        for r in platform.routers() {
            let parent = match router_scope(platform, r.id()) {
                LinkScope::Cluster(cl) => cluster_containers[cl.index()],
                LinkScope::Site(s) => site_containers[s.index()],
                LinkScope::Grid => root,
            };
            b.new_container(parent, r.name(), ContainerKind::Router)
                .expect("scope container exists");
        }
        let mut link_containers = Vec::with_capacity(platform.links().len());
        for l in platform.links() {
            let parent = match l.scope() {
                LinkScope::Cluster(cl) => cluster_containers[cl.index()],
                LinkScope::Site(s) => site_containers[s.index()],
                LinkScope::Grid => root,
            };
            let c = b
                .new_container(parent, l.name(), ContainerKind::Link)
                .expect("scope container exists");
            b.set_variable(0.0, c, bandwidth, l.bandwidth()).expect("fresh signal");
            b.set_variable(0.0, c, availability, 1.0).expect("fresh signal");
            link_containers.push(c);
        }

        SimTracer {
            builder: b,
            config,
            last_host_used: vec![0.0; host_containers.len()],
            last_link_used: vec![0.0; link_containers.len()],
            host_containers,
            link_containers,
            power,
            power_used,
            bandwidth,
            bandwidth_used,
            availability,
            account_metrics: HashMap::new(),
            account_names: accounts.to_vec(),
            last_host_acct: HashMap::new(),
            last_link_acct: HashMap::new(),
        }
    }

    fn account_metric(&mut self, account: AccountId, is_power: bool) -> MetricId {
        let names_ref = &self.account_names;
        let builder = &mut self.builder;
        *self
            .account_metrics
            .entry((account, is_power))
            .or_insert_with(|| {
                let name = &names_ref[account.index()];
                if is_power {
                    builder.metric(metric_for_account(names::POWER_USED, name), "MFlop/s")
                } else {
                    builder.metric(metric_for_account(names::BANDWIDTH_USED, name), "Mbit/s")
                }
            })
    }

    /// Emits host utilization (total and per-account) at time `t`.
    /// Values equal to the last emitted ones are suppressed.
    pub fn host_usage(
        &mut self,
        t: f64,
        host_index: usize,
        total: f64,
        by_account: &HashMap<AccountId, f64>,
    ) {
        let c = self.host_containers[host_index];
        if (self.last_host_used[host_index] - total).abs() > 1e-9 {
            self.last_host_used[host_index] = total;
            self.builder
                .set_variable(t, c, self.power_used, total)
                .expect("monotonic simulation time");
        }
        if self.config.record_accounts {
            // Touch every account seen before plus the current ones so
            // that a vanished account drops to 0.
            let mut accounts: Vec<AccountId> = by_account.keys().copied().collect();
            for &(h, acc) in self.last_host_acct.keys() {
                if h == host_index {
                    accounts.push(acc);
                }
            }
            accounts.sort_unstable();
            accounts.dedup();
            for acc in accounts {
                let v = by_account.get(&acc).copied().unwrap_or(0.0);
                let slot = self.last_host_acct.entry((host_index, acc)).or_insert(0.0);
                if (*slot - v).abs() > 1e-9 {
                    *slot = v;
                    let m = self.account_metric(acc, true);
                    self.builder
                        .set_variable(t, c, m, v)
                        .expect("monotonic simulation time");
                }
            }
        }
    }

    /// Emits link utilization (total and per-account) at time `t`.
    pub fn link_usage(
        &mut self,
        t: f64,
        link_index: usize,
        total: f64,
        by_account: &HashMap<(usize, AccountId), f64>,
    ) {
        let c = self.link_containers[link_index];
        if (self.last_link_used[link_index] - total).abs() > 1e-9 {
            self.last_link_used[link_index] = total;
            self.builder
                .set_variable(t, c, self.bandwidth_used, total)
                .expect("monotonic simulation time");
        }
        if self.config.record_accounts {
            let mut accounts: Vec<AccountId> = by_account
                .keys()
                .filter(|(l, _)| *l == link_index)
                .map(|&(_, a)| a)
                .collect();
            for &(l, acc) in self.last_link_acct.keys() {
                if l == link_index {
                    accounts.push(acc);
                }
            }
            accounts.sort_unstable();
            accounts.dedup();
            for acc in accounts {
                let v = by_account.get(&(link_index, acc)).copied().unwrap_or(0.0);
                let slot = self.last_link_acct.entry((link_index, acc)).or_insert(0.0);
                if (*slot - v).abs() > 1e-9 {
                    *slot = v;
                    let m = self.account_metric(acc, false);
                    self.builder
                        .set_variable(t, c, m, v)
                        .expect("monotonic simulation time");
                }
            }
        }
    }

    /// Records a change of a host's available computing power (the
    /// time-varying capacity of paper Fig. 1).
    pub fn host_power(&mut self, t: f64, host_index: usize, power: f64) {
        self.builder
            .set_variable(t, self.host_containers[host_index], self.power, power)
            .expect("monotonic simulation time");
    }

    /// Records a change of a link's available bandwidth.
    pub fn link_bandwidth(&mut self, t: f64, link_index: usize, bandwidth: f64) {
        self.builder
            .set_variable(t, self.link_containers[link_index], self.bandwidth, bandwidth)
            .expect("monotonic simulation time");
    }

    /// Records a host going down (`up = false`) or coming back
    /// (`up = true`) at time `t` — fault injection. The availability
    /// signal is first-class state: the time-mean over a slice is the
    /// availability fraction the visualization renders.
    pub fn host_availability(&mut self, t: f64, host_index: usize, up: bool) {
        self.builder
            .set_variable(
                t,
                self.host_containers[host_index],
                self.availability,
                if up { 1.0 } else { 0.0 },
            )
            .expect("monotonic simulation time");
    }

    /// Records a link going down or coming back at time `t`.
    pub fn link_availability(&mut self, t: f64, link_index: usize, up: bool) {
        self.builder
            .set_variable(
                t,
                self.link_containers[link_index],
                self.availability,
                if up { 1.0 } else { 0.0 },
            )
            .expect("monotonic simulation time");
    }

    /// Records a completed host-to-host message.
    pub fn message(&mut self, start: f64, end: f64, from_host: usize, to_host: usize, size: f64) {
        if self.config.record_messages {
            self.builder
                .link(
                    start,
                    end,
                    self.host_containers[from_host],
                    self.host_containers[to_host],
                    size,
                )
                .expect("valid containers");
        }
    }

    /// Enters a named state on a host container.
    pub fn push_state(&mut self, t: f64, host_index: usize, state: String) {
        self.builder
            .push_state(t, self.host_containers[host_index], state)
            .expect("valid container");
    }

    /// Leaves the current state on a host container.
    pub fn pop_state(&mut self, t: f64, host_index: usize) {
        // An unbalanced pop is an actor bug; surface it loudly.
        self.builder
            .pop_state(t, self.host_containers[host_index])
            .expect("balanced state stack");
    }

    /// Finalizes the trace at time `end`.
    pub fn finish(self, end: f64) -> Trace {
        self.builder.finish(end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viva_platform::generators;

    #[test]
    fn container_tree_mirrors_platform() {
        let p = generators::two_clusters(&Default::default()).unwrap();
        let tr = SimTracer::new(&p, TracingConfig::default(), &[]);
        let trace = tr.finish(1.0);
        let t = trace.containers();
        // 1 root + 2 sites + 2 clusters + 22 hosts + 3 routers + 24 links.
        assert_eq!(t.len(), 1 + 2 + 2 + 22 + 3 + 24);
        // Cluster switches live under their cluster, the core router
        // under the root.
        let sw = t.by_name("adonis-sw").unwrap();
        assert_eq!(t.node(sw.parent().unwrap()).name(), "adonis");
        let core = t.by_name("backbone").unwrap();
        assert_eq!(core.parent(), Some(t.root()));
        let adonis1 = t.by_name("adonis-1").unwrap();
        assert_eq!(t.path(adonis1.id()), "grenoble/adonis/adonis-1");
        // Backbone links live under the root.
        let bb = t.by_name("adonis-bb").unwrap();
        assert_eq!(bb.parent(), Some(t.root()));
        // Host uplinks live under their cluster.
        let up = t.by_name("griffon-3-up").unwrap();
        assert_eq!(t.node(up.parent().unwrap()).name(), "griffon");
    }

    #[test]
    fn capacities_recorded_at_time_zero() {
        let p = generators::two_clusters(&Default::default()).unwrap();
        let tr = SimTracer::new(&p, TracingConfig::default(), &[]);
        let trace = tr.finish(1.0);
        let h = trace.containers().by_name("adonis-1").unwrap().id();
        assert_eq!(
            trace.signal_by_name(h, names::POWER).unwrap().value_at(0.5),
            1000.0
        );
        let l = trace.containers().by_name("adonis-bb").unwrap().id();
        assert_eq!(
            trace.signal_by_name(l, names::BANDWIDTH).unwrap().value_at(0.5),
            1500.0
        );
    }

    #[test]
    fn usage_suppresses_duplicate_values() {
        let p = generators::star(2, 100.0, 1000.0).unwrap();
        let mut tr = SimTracer::new(&p, TracingConfig::default(), &[]);
        let none = HashMap::new();
        tr.host_usage(1.0, 0, 100.0, &none);
        tr.host_usage(2.0, 0, 100.0, &none); // suppressed
        tr.host_usage(3.0, 0, 0.0, &none);
        let trace = tr.finish(4.0);
        let h = trace.containers().by_name("star-1").unwrap().id();
        let sig = trace.signal_by_name(h, names::POWER_USED).unwrap();
        assert_eq!(sig.len(), 2);
        assert_eq!(sig.integrate(0.0, 4.0), 200.0);
    }

    #[test]
    fn account_metrics_appear_on_demand() {
        let p = generators::star(2, 100.0, 1000.0).unwrap();
        let mut tr =
            SimTracer::new(&p, TracingConfig::default(), &["app1".into(), "app2".into()]);
        let mut by = HashMap::new();
        by.insert(AccountId(0), 60.0);
        tr.host_usage(1.0, 0, 60.0, &by);
        by.clear();
        tr.host_usage(2.0, 0, 0.0, &by); // account drops to 0
        let trace = tr.finish(3.0);
        let h = trace.containers().by_name("star-1").unwrap().id();
        let sig = trace.signal_by_name(h, "power_used:app1").unwrap();
        assert_eq!(sig.integrate(0.0, 3.0), 60.0);
        assert!(trace.metric_id("power_used:app2").is_none());
    }

    #[test]
    fn messages_respect_config() {
        let p = generators::star(2, 100.0, 1000.0).unwrap();
        let mut tr = SimTracer::new(
            &p,
            TracingConfig { record_messages: false, ..Default::default() },
            &[],
        );
        tr.message(0.0, 1.0, 0, 1, 8.0);
        assert!(tr.finish(2.0).links().is_empty());

        let mut tr = SimTracer::new(&p, TracingConfig::default(), &[]);
        tr.message(0.0, 1.0, 0, 1, 8.0);
        assert_eq!(tr.finish(2.0).links().len(), 1);
    }
}
