//! Fluid network model: flows over multi-link routes with max-min fair
//! bandwidth sharing.

use std::collections::HashMap;

use viva_platform::{LinkId, Platform};

use crate::actor::{AccountId, ActorId, Payload, Tag};

/// Computes max-min fair rates by progressive filling.
///
/// * `capacity[l]` — capacity of link `l` (must be positive);
/// * `routes[f]` — indices into `capacity` crossed by flow `f` (flows
///   with empty routes get an infinite rate and should be special-cased
///   by the caller).
///
/// Returns one rate per flow. The classic invariants hold: no link's
/// capacity is exceeded, and every flow is bottlenecked by at least one
/// saturated link (it could not be increased without decreasing an
/// equal-or-slower flow).
pub fn maxmin_rates(capacity: &[f64], routes: &[Vec<usize>]) -> Vec<f64> {
    let n_links = capacity.len();
    let n_flows = routes.len();
    let mut rate = vec![0.0f64; n_flows];
    let mut frozen = vec![false; n_flows];
    let mut remaining_flows = 0usize;
    let mut cap = capacity.to_vec();
    let mut count = vec![0usize; n_links];
    for r in routes {
        for &l in r {
            count[l] += 1;
        }
    }
    for (f, r) in routes.iter().enumerate() {
        if r.is_empty() {
            rate[f] = f64::INFINITY;
            frozen[f] = true;
        } else {
            remaining_flows += 1;
        }
    }
    while remaining_flows > 0 {
        // The equal increment all unfrozen flows can still take.
        let mut inc = f64::INFINITY;
        for l in 0..n_links {
            if count[l] > 0 {
                inc = inc.min(cap[l] / count[l] as f64);
            }
        }
        debug_assert!(inc.is_finite() && inc >= 0.0, "unfrozen flow without links");
        // Apply the increment and drain capacities.
        for f in 0..n_flows {
            if !frozen[f] {
                rate[f] += inc;
            }
        }
        for l in 0..n_links {
            if count[l] > 0 {
                cap[l] -= inc * count[l] as f64;
            }
        }
        // Freeze flows crossing a saturated link.
        let eps = 1e-12;
        let saturated: Vec<bool> = (0..n_links)
            .map(|l| count[l] > 0 && cap[l] <= eps * capacity[l].max(1.0))
            .collect();
        let mut any_frozen = false;
        for f in 0..n_flows {
            if !frozen[f] && routes[f].iter().any(|&l| saturated[l]) {
                frozen[f] = true;
                remaining_flows -= 1;
                any_frozen = true;
                for &l in &routes[f] {
                    count[l] -= 1;
                }
            }
        }
        debug_assert!(any_frozen, "progressive filling must make progress");
        if !any_frozen {
            break; // numerical safety net
        }
    }
    rate
}

/// An in-flight network transfer.
#[derive(Debug)]
pub struct Flow {
    /// Sending actor (gets `on_send_done`).
    pub from: ActorId,
    /// Receiving actor (gets `on_message`).
    pub to: ActorId,
    /// Sender-side tag.
    pub tag: Tag,
    /// Optional billing account.
    pub account: Option<AccountId>,
    /// Links crossed (non-empty; loopback flows bypass the network).
    pub route: Vec<LinkId>,
    /// Total route latency, seconds.
    pub latency: f64,
    /// Start time.
    pub start: f64,
    /// Payload size, Mbit (for the trace link record).
    pub size: f64,
    /// Remaining volume, Mbit.
    pub remaining: f64,
    /// Current fair rate, Mbit/s.
    pub rate: f64,
    /// The message carried (taken on delivery).
    pub payload: Option<Payload>,
    /// Send-timeout watch id, when issued via
    /// [`crate::Ctx::send_with_timeout`].
    pub watch: Option<u64>,
}

/// The set of active flows plus cached per-link usage.
#[derive(Debug, Default)]
pub struct NetworkState {
    flows: HashMap<u64, Flow>,
    next_id: u64,
    /// Cached sum of flow rates per link (dense by link index).
    usage: Vec<f64>,
    /// Current effective capacity per link, Mbit/s (may change over
    /// time: degraded links, reservations).
    capacity: Vec<f64>,
    /// Simulated time of the last [`NetworkState::advance`].
    updated_at: f64,
}

impl NetworkState {
    /// Creates an empty network for the links of `platform`, at their
    /// nominal bandwidth.
    pub fn new_for(platform: &Platform) -> NetworkState {
        NetworkState {
            flows: HashMap::new(),
            next_id: 0,
            usage: vec![0.0; platform.links().len()],
            capacity: platform.links().iter().map(|l| l.bandwidth()).collect(),
            updated_at: 0.0,
        }
    }

    /// Current effective capacity of link index `l`, Mbit/s.
    pub fn capacity(&self, l: usize) -> f64 {
        self.capacity[l]
    }

    /// Changes the effective capacity of link index `l` (caller must
    /// `advance` and then `reshare`).
    pub fn set_capacity(&mut self, l: usize, bandwidth: f64) {
        self.capacity[l] = bandwidth.max(1e-9);
    }

    /// Number of in-flight flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// Whether no flow is in flight.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Current total rate through each link, Mbit/s.
    pub fn usage(&self) -> &[f64] {
        &self.usage
    }

    /// Read access to a flow.
    pub fn flow(&self, id: u64) -> Option<&Flow> {
        self.flows.get(&id)
    }

    /// Drains `remaining` of every flow for the elapsed time since the
    /// last call. Must be called with the current time before any
    /// topology change.
    pub fn advance(&mut self, now: f64) {
        let dt = now - self.updated_at;
        if dt > 0.0 {
            for f in self.flows.values_mut() {
                f.remaining = (f.remaining - f.rate * dt).max(0.0);
            }
        }
        self.updated_at = now;
    }

    /// Registers a flow (caller must then call
    /// [`NetworkState::reshare`]). Returns the flow id.
    pub fn add(&mut self, flow: Flow) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.flows.insert(id, flow);
        id
    }

    /// Removes a flow (caller must then call
    /// [`NetworkState::reshare`]).
    pub fn remove(&mut self, id: u64) -> Option<Flow> {
        self.flows.remove(&id)
    }

    /// Removes every flow matching `pred` (fault injection: a host
    /// crashed or a link failed mid-transfer), returning them in
    /// ascending id order. The caller must then
    /// [`NetworkState::reshare`].
    pub fn drain_matching(&mut self, pred: impl Fn(&Flow) -> bool) -> Vec<Flow> {
        let mut ids: Vec<u64> = self
            .flows
            .iter()
            .filter(|(_, f)| pred(f))
            .map(|(&id, _)| id)
            .collect();
        ids.sort_unstable();
        ids.iter()
            .map(|id| self.flows.remove(id).expect("listed id"))
            .collect()
    }

    /// Recomputes all max-min rates and the per-link usage cache.
    /// Returns the indices of links whose usage changed (for trace
    /// emission).
    pub fn reshare(&mut self) -> Vec<usize> {
        let mut ids: Vec<u64> = self.flows.keys().copied().collect();
        ids.sort_unstable(); // deterministic order
        let routes: Vec<Vec<usize>> = ids
            .iter()
            .map(|id| self.flows[id].route.iter().map(|l| l.index()).collect())
            .collect();
        let rates = maxmin_rates(&self.capacity, &routes);
        for (id, rate) in ids.iter().zip(&rates) {
            self.flows.get_mut(id).expect("listed id").rate = *rate;
        }
        let mut new_usage = vec![0.0; self.capacity.len()];
        for f in self.flows.values() {
            for &l in &f.route {
                new_usage[l.index()] += f.rate;
            }
        }
        let mut changed = Vec::new();
        for (l, (&old, &new)) in self.usage.iter().zip(&new_usage).enumerate() {
            if (old - new).abs() > 1e-9 {
                changed.push(l);
            }
        }
        self.usage = new_usage;
        changed
    }

    /// The earliest completion time over all flows, with the event
    /// payload `(flow id, completion time)`. `None` when idle.
    ///
    /// A flow completes when its volume has drained *and* its route
    /// latency has elapsed.
    pub fn next_completion(&self) -> Option<(u64, f64)> {
        let mut best: Option<(u64, f64)> = None;
        for (&id, f) in &self.flows {
            let drain = if f.remaining <= 0.0 {
                self.updated_at
            } else if f.rate > 0.0 {
                self.updated_at + f.remaining / f.rate
            } else {
                continue; // starved flow: wait for a reshare
            };
            let t = drain.max(f.start + f.latency);
            match best {
                // Tie-break on id for determinism.
                Some((bid, bt)) if t > bt || (t == bt && id > bid) => {}
                _ => best = Some((id, t)),
            }
        }
        best
    }

    /// Ids of the flows completed at time `now` (drained and past
    /// latency), in ascending id order.
    pub fn completed_at(&self, now: f64) -> Vec<u64> {
        let eps = 1e-9;
        let mut done: Vec<u64> = self
            .flows
            .iter()
            .filter(|(_, f)| {
                let drained = f.remaining <= eps * f.size.max(1.0)
                    || (f.rate > 0.0 && f.remaining / f.rate <= eps);
                drained && now + eps >= f.start + f.latency
            })
            .map(|(&id, _)| id)
            .collect();
        done.sort_unstable();
        done
    }

    /// Per-account rate through each link, as `(link index, account,
    /// rate)` triples summed over flows. Used by the tracer.
    pub fn usage_by_account(&self) -> HashMap<(usize, AccountId), f64> {
        let mut out = HashMap::new();
        for f in self.flows.values() {
            if let Some(acc) = f.account {
                for &l in &f.route {
                    *out.entry((l.index(), acc)).or_insert(0.0) += f.rate;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_flow_gets_bottleneck() {
        // Two links 10 and 4: the flow rate is 4.
        let r = maxmin_rates(&[10.0, 4.0], &[vec![0, 1]]);
        assert_eq!(r, vec![4.0]);
    }

    #[test]
    fn two_flows_share_one_link() {
        let r = maxmin_rates(&[10.0], &[vec![0], vec![0]]);
        assert_eq!(r, vec![5.0, 5.0]);
    }

    #[test]
    fn classic_maxmin_example() {
        // Link A cap 10 shared by f0, f1; link B cap 3 crossed by f1.
        // f1 is limited to 3 by B; f0 then takes the remaining 7.
        let r = maxmin_rates(&[10.0, 3.0], &[vec![0], vec![0, 1]]);
        assert_eq!(r[1], 3.0);
        assert!((r[0] - 7.0).abs() < 1e-9);
    }

    #[test]
    fn empty_route_is_infinite() {
        let r = maxmin_rates(&[10.0], &[vec![], vec![0]]);
        assert_eq!(r[0], f64::INFINITY);
        assert_eq!(r[1], 10.0);
    }

    #[test]
    fn no_flows_no_rates() {
        assert!(maxmin_rates(&[1.0, 2.0], &[]).is_empty());
    }

    #[test]
    fn parking_lot_topology() {
        // Chain of 3 links cap 1; one long flow crosses all, three
        // short flows cross one each. Everybody gets 1/2.
        let routes = vec![vec![0, 1, 2], vec![0], vec![1], vec![2]];
        let r = maxmin_rates(&[1.0, 1.0, 1.0], &routes);
        for x in r {
            assert!((x - 0.5).abs() < 1e-9);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn instance() -> impl Strategy<Value = (Vec<f64>, Vec<Vec<usize>>)> {
        (2usize..6).prop_flat_map(|n_links| {
            let caps = proptest::collection::vec(0.5f64..100.0, n_links);
            let routes = proptest::collection::vec(
                proptest::collection::btree_set(0..n_links, 1..=n_links)
                    .prop_map(|s| s.into_iter().collect::<Vec<_>>()),
                1..8,
            );
            (caps, routes)
        })
    }

    proptest! {
        /// Feasibility: no link capacity exceeded.
        #[test]
        fn rates_are_feasible((caps, routes) in instance()) {
            let rates = maxmin_rates(&caps, &routes);
            for (l, &cap) in caps.iter().enumerate() {
                let load: f64 = routes
                    .iter()
                    .zip(&rates)
                    .filter(|(r, _)| r.contains(&l))
                    .map(|(_, &x)| x)
                    .sum();
                prop_assert!(load <= cap * (1.0 + 1e-6), "link {l}: {load} > {cap}");
            }
        }

        /// Max-min property: every flow crosses at least one saturated
        /// link on which it is among the fastest flows.
        #[test]
        fn every_flow_is_bottlenecked((caps, routes) in instance()) {
            let rates = maxmin_rates(&caps, &routes);
            for (f, route) in routes.iter().enumerate() {
                let mut bottlenecked = false;
                for &l in route {
                    let load: f64 = routes
                        .iter()
                        .zip(&rates)
                        .filter(|(r, _)| r.contains(&l))
                        .map(|(_, &x)| x)
                        .sum();
                    let saturated = load >= caps[l] * (1.0 - 1e-6);
                    let max_on_l = routes
                        .iter()
                        .zip(&rates)
                        .filter(|(r, _)| r.contains(&l))
                        .map(|(_, &x)| x)
                        .fold(0.0f64, f64::max);
                    if saturated && rates[f] >= max_on_l * (1.0 - 1e-6) {
                        bottlenecked = true;
                        break;
                    }
                }
                prop_assert!(bottlenecked, "flow {f} (rate {}) has no bottleneck", rates[f]);
            }
        }

        /// Rates are positive whenever capacities are.
        #[test]
        fn rates_are_positive((caps, routes) in instance()) {
            for r in maxmin_rates(&caps, &routes) {
                prop_assert!(r > 0.0);
            }
        }
    }
}
