//! The simulation engine: calendar, activity bookkeeping, actor
//! dispatch and trace emission.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::{HashMap, HashSet};

use viva_platform::{HostId, LinkId, Platform, RouteTable};
use viva_trace::Trace;

use crate::actor::{AccountId, Actor, ActorId, Command, Ctx, Payload, Tag};
use crate::cpu::{CpuState, Task};
use crate::fault::{unit_hash, FaultError, FaultEvent, FaultPlan, SendFailure};
use crate::network::{Flow, NetworkState};
use crate::tracer::{SimTracer, TracingConfig};

/// A calendar entry. Ordered by `(time, seq)` so that same-time events
/// fire in insertion order (deterministic).
#[derive(Debug)]
struct CalEntry {
    time: f64,
    seq: u64,
    event: Ev,
}

#[derive(Debug)]
enum Ev {
    /// A timer set by an actor.
    Timer { actor: ActorId, tag: Tag },
    /// Direct delivery of a loopback (same-host) message.
    Deliver {
        from: ActorId,
        to: ActorId,
        tag: Tag,
        payload: Payload,
        size: f64,
        start: f64,
        watch: Option<u64>,
    },
    /// Predicted next network completion; stale if `gen` mismatches.
    NetCheck { gen: u64 },
    /// Predicted next CPU completion; stale if `gen` mismatches.
    CpuCheck { gen: u64 },
    /// A host's available power changes (external load, reservation).
    HostPower { host: HostId, power: f64 },
    /// A link's available bandwidth changes.
    LinkBandwidth { link: LinkId, bandwidth: f64 },
    /// Fault injection: a host crashes (`up = false`) or recovers.
    HostFault { host: HostId, up: bool },
    /// Fault injection: a link fails or recovers.
    LinkFault { link: LinkId, up: bool },
    /// Fault injection: a link's capacity factor changes (1.0 restores
    /// nominal).
    LinkDegrade { link: LinkId, factor: f64 },
    /// A send issued with a timeout has run out of time.
    SendTimeout { watch: u64 },
    /// Deferred sender notification that a send failed.
    SendFailed {
        actor: ActorId,
        tag: Tag,
        reason: SendFailure,
        watch: Option<u64>,
    },
}

/// Bookkeeping for a send issued with a timeout: who to notify, and
/// the in-flight flow to kill when the timeout fires.
#[derive(Debug)]
struct SendWatch {
    from: ActorId,
    tag: Tag,
    flow: Option<u64>,
}

impl PartialEq for CalEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for CalEntry {}
impl Ord for CalEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we pop the earliest.
        other
            .time
            .total_cmp(&self.time)
            .then(other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for CalEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A discrete-event simulation over a [`Platform`].
///
/// Lifecycle: construct, [`spawn`](Simulation::spawn) actors,
/// optionally [`enable_tracing`](Simulation::enable_tracing), then
/// [`run`](Simulation::run). After the run,
/// [`into_trace`](Simulation::into_trace) yields the recorded trace.
pub struct Simulation {
    platform: Platform,
    routes: RouteTable,
    actors: Vec<Option<Box<dyn Actor>>>,
    actor_hosts: Vec<HostId>,
    net: NetworkState,
    cpu: CpuState,
    calendar: BinaryHeap<CalEntry>,
    seq: u64,
    now: f64,
    net_gen: u64,
    cpu_gen: u64,
    net_dirty: bool,
    cpu_dirty: bool,
    touched_hosts: HashSet<usize>,
    tracer: Option<SimTracer>,
    accounts: Vec<String>,
    tracing_config: Option<TracingConfig>,
    events_processed: u64,
    started: bool,
    /// Fault state: liveness per host / link, the capacities to restore
    /// on recovery, and the current degradation factor per link.
    host_up: Vec<bool>,
    link_up: Vec<bool>,
    nominal_power: Vec<f64>,
    nominal_bandwidth: Vec<f64>,
    link_factor: Vec<f64>,
    /// Message-loss windows `(at, until, probability)`.
    loss_windows: Vec<(f64, f64, f64)>,
    fault_seed: u64,
    /// Sends issued so far: the per-send message-loss draw hashes
    /// `(fault_seed, send index)`, so it is deterministic.
    send_count: u64,
    /// Active send timeouts by watch id.
    watches: HashMap<u64, SendWatch>,
    watch_seq: u64,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("platform", &self.platform.name())
            .field("actors", &self.actors.len())
            .field("now", &self.now)
            .field("events_processed", &self.events_processed)
            .finish()
    }
}

impl Simulation {
    /// Creates a simulation over `platform` with no actors and tracing
    /// disabled.
    pub fn new(platform: Platform) -> Simulation {
        Simulation {
            net: NetworkState::new_for(&platform),
            cpu: CpuState::new_for(&platform),
            host_up: vec![true; platform.hosts().len()],
            link_up: vec![true; platform.links().len()],
            nominal_power: platform.hosts().iter().map(|h| h.power()).collect(),
            nominal_bandwidth: platform.links().iter().map(|l| l.bandwidth()).collect(),
            link_factor: vec![1.0; platform.links().len()],
            platform,
            routes: RouteTable::new(),
            actors: Vec::new(),
            actor_hosts: Vec::new(),
            calendar: BinaryHeap::new(),
            seq: 0,
            now: 0.0,
            net_gen: 0,
            cpu_gen: 0,
            net_dirty: false,
            cpu_dirty: false,
            touched_hosts: HashSet::new(),
            tracer: None,
            accounts: Vec::new(),
            tracing_config: None,
            events_processed: 0,
            started: false,
            loss_windows: Vec::new(),
            fault_seed: 0,
            send_count: 0,
            watches: HashMap::new(),
            watch_seq: 0,
        }
    }

    /// Registers a billing account (one per competing application).
    /// Must be called before [`enable_tracing`](Simulation::enable_tracing).
    pub fn account(&mut self, name: impl Into<String>) -> AccountId {
        let id = AccountId(self.accounts.len() as u32);
        self.accounts.push(name.into());
        id
    }

    /// Turns on trace recording. Call after registering accounts and
    /// before [`run`](Simulation::run).
    pub fn enable_tracing(&mut self, config: TracingConfig) {
        self.tracing_config = Some(config);
    }

    /// Spawns `actor` on `host`. Actors spawned before
    /// [`run`](Simulation::run) get [`Actor::on_start`] at time 0 in
    /// spawn order.
    ///
    /// # Panics
    ///
    /// Panics when `host` is not part of the platform.
    pub fn spawn(&mut self, host: HostId, actor: Box<dyn Actor>) -> ActorId {
        assert!(host.index() < self.platform.hosts().len(), "unknown host");
        let id = ActorId(self.actors.len() as u32);
        self.actors.push(Some(actor));
        self.actor_hosts.push(host);
        id
    }

    /// Schedules a change of `host`'s available computing power at
    /// simulated time `t`: running and future tasks share the new
    /// capacity. This models the dynamic environments of the paper's
    /// Fig. 1 (time-varying availability).
    ///
    /// # Panics
    ///
    /// Panics when `host` is not part of the platform or `power` is
    /// negative/non-finite.
    pub fn schedule_host_power(&mut self, t: f64, host: HostId, power: f64) {
        assert!(host.index() < self.platform.hosts().len(), "unknown host");
        assert!(power.is_finite() && power >= 0.0, "invalid power {power}");
        self.push_event(t, Ev::HostPower { host, power });
    }

    /// Schedules a change of `link`'s available bandwidth at simulated
    /// time `t`: in-flight and future flows share the new capacity.
    ///
    /// # Panics
    ///
    /// Panics when `link` is not part of the platform or `bandwidth`
    /// is not positive and finite.
    pub fn schedule_link_bandwidth(&mut self, t: f64, link: LinkId, bandwidth: f64) {
        assert!(link.index() < self.platform.links().len(), "unknown link");
        assert!(
            bandwidth.is_finite() && bandwidth > 0.0,
            "invalid bandwidth {bandwidth}"
        );
        self.push_event(t, Ev::LinkBandwidth { link, bandwidth });
    }

    /// Schedules the faults of `plan` (validated against the platform).
    /// Must be called before the simulation starts; the plan's seed
    /// drives the message-loss sampling.
    ///
    /// # Errors
    ///
    /// Returns the first invalid event found, or
    /// [`FaultError::SimulationStarted`] when called after
    /// [`run`](Simulation::run).
    pub fn inject_faults(&mut self, plan: &FaultPlan) -> Result<(), FaultError> {
        if self.started {
            return Err(FaultError::SimulationStarted);
        }
        plan.validate(&self.platform)?;
        self.fault_seed = plan.seed();
        for ev in plan.events() {
            match *ev {
                FaultEvent::HostCrash { at, host } => {
                    self.push_event(at, Ev::HostFault { host, up: false });
                }
                FaultEvent::HostRecover { at, host } => {
                    self.push_event(at, Ev::HostFault { host, up: true });
                }
                FaultEvent::LinkFail { at, link } => {
                    self.push_event(at, Ev::LinkFault { link, up: false });
                }
                FaultEvent::LinkRecover { at, link } => {
                    self.push_event(at, Ev::LinkFault { link, up: true });
                }
                FaultEvent::LinkDegrade { at, until, link, factor } => {
                    self.push_event(at, Ev::LinkDegrade { link, factor });
                    self.push_event(until, Ev::LinkDegrade { link, factor: 1.0 });
                }
                FaultEvent::MessageLoss { at, until, probability } => {
                    self.loss_windows.push((at, until, probability));
                }
            }
        }
        Ok(())
    }

    /// Whether `host` is currently up (fault injection).
    pub fn host_is_up(&self, host: HostId) -> bool {
        self.host_up[host.index()]
    }

    /// Whether `link` is currently up (fault injection).
    pub fn link_is_up(&self, link: LinkId) -> bool {
        self.link_up[link.index()]
    }

    /// Current simulated time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// The simulated platform.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Number of calendar events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    fn push_event(&mut self, time: f64, event: Ev) {
        let seq = self.seq;
        self.seq += 1;
        self.calendar.push(CalEntry { time, seq, event });
    }

    /// Invokes a callback on an actor, then applies the commands it
    /// issued. Actors on a crashed host are silent: every callback
    /// (messages, completions, timers) is uniformly dropped until the
    /// host recovers.
    fn invoke(&mut self, actor: ActorId, f: impl FnOnce(&mut dyn Actor, &mut Ctx<'_>)) {
        if !self.host_up[self.actor_hosts[actor.index()].index()] {
            return;
        }
        let Some(mut a) = self.actors[actor.index()].take() else {
            return; // actor slot empty (re-entrant call cannot happen)
        };
        let mut commands = Vec::new();
        {
            let mut ctx = Ctx {
                now: self.now,
                me: actor,
                host: self.actor_hosts[actor.index()],
                platform: &self.platform,
                commands: &mut commands,
            };
            f(a.as_mut(), &mut ctx);
        }
        self.actors[actor.index()] = Some(a);
        for c in commands {
            self.apply(c);
        }
    }

    /// Whether the current send is dropped by an active message-loss
    /// window. Every send consumes one draw from the `(seed, index)`
    /// hash stream, so the outcome per send does not depend on what
    /// other windows are active.
    fn message_dropped(&mut self) -> bool {
        let n = self.send_count;
        self.send_count += 1;
        let p = self
            .loss_windows
            .iter()
            .filter(|&&(at, until, _)| self.now >= at && self.now < until)
            .map(|&(_, _, p)| p)
            .fold(0.0_f64, f64::max);
        p > 0.0 && unit_hash(self.fault_seed, n) < p
    }

    fn apply(&mut self, command: Command) {
        match command {
            Command::Send { from, to, size, payload, tag, account, timeout } => {
                let src = self.actor_hosts[from.index()];
                let dst = self.actor_hosts[to.index()];
                let route = self
                    .routes
                    .route(&self.platform, src, dst)
                    .expect("validated platforms are connected");
                // Register the timeout watch first: it must fire even
                // when the message is lost without a failure signal.
                let watch = timeout.map(|t| {
                    let id = self.watch_seq;
                    self.watch_seq += 1;
                    self.watches.insert(id, SendWatch { from, tag, flow: None });
                    self.push_event(self.now + t, Ev::SendTimeout { watch: id });
                    id
                });
                // A send towards a dead host or across a dead link
                // fails after the route latency (the time it takes the
                // sender's stack to notice).
                let reason = if !self.host_up[dst.index()] {
                    Some(SendFailure::HostDown)
                } else if route.links.iter().any(|l| !self.link_up[l.index()]) {
                    Some(SendFailure::LinkDown)
                } else {
                    None
                };
                if let Some(reason) = reason {
                    self.push_event(
                        self.now + route.latency,
                        Ev::SendFailed { actor: from, tag, reason, watch },
                    );
                    return;
                }
                if self.message_dropped() {
                    // Silent loss: no flow, no callbacks. The watch (if
                    // any) stays armed and will report `TimedOut`.
                    return;
                }
                if route.links.is_empty() || size <= 0.0 {
                    // Loopback, and zero-size control messages: no
                    // bandwidth is consumed, only latency elapses.
                    let start = self.now;
                    self.push_event(
                        self.now + route.latency,
                        Ev::Deliver { from, to, tag, payload, size, start, watch },
                    );
                } else {
                    self.net.advance(self.now);
                    let flow_id = self.net.add(Flow {
                        from,
                        to,
                        tag,
                        account,
                        latency: route.latency,
                        route: route.links,
                        start: self.now,
                        size,
                        remaining: size,
                        rate: 0.0,
                        payload: Some(payload),
                        watch,
                    });
                    if let Some(w) = watch {
                        self.watches.get_mut(&w).expect("just inserted").flow = Some(flow_id);
                    }
                    self.net_dirty = true;
                }
            }
            Command::Execute { actor, flops, tag, account } => {
                let host = self.actor_hosts[actor.index()];
                self.cpu.advance(self.now);
                self.cpu.add(Task { actor, tag, account, host, remaining: flops, rate: 0.0 });
                self.cpu_dirty = true;
                self.touched_hosts.insert(host.index());
            }
            Command::Timer { actor, delay, tag } => {
                self.push_event(self.now + delay, Ev::Timer { actor, tag });
            }
            Command::PushState { actor, state } => {
                let host = self.actor_hosts[actor.index()].index();
                let now = self.now;
                if let Some(tr) = self.tracer.as_mut() {
                    tr.push_state(now, host, state);
                }
            }
            Command::PopState { actor } => {
                let host = self.actor_hosts[actor.index()].index();
                let now = self.now;
                if let Some(tr) = self.tracer.as_mut() {
                    tr.pop_state(now, host);
                }
            }
        }
    }

    /// Applies pending resource changes: recomputes shares, emits trace
    /// samples, reschedules the completion probes.
    fn flush(&mut self) {
        if self.cpu_dirty {
            self.cpu_dirty = false;
            self.cpu.advance(self.now);
            if self.tracer.is_none() {
                self.touched_hosts.clear();
            } else {
                let mut hosts: Vec<usize> = self.touched_hosts.drain().collect();
                hosts.sort_unstable();
                for h in hosts {
                    let hid = HostId::from_index(h);
                    let total = self.cpu.usage(hid);
                    let by_account = self.cpu.usage_by_account(hid);
                    if let Some(tr) = self.tracer.as_mut() {
                        tr.host_usage(self.now, h, total, &by_account);
                    }
                }
            }
            self.cpu_gen += 1;
            if let Some((_, t)) = self.cpu.next_completion() {
                let gen = self.cpu_gen;
                self.push_event(t, Ev::CpuCheck { gen });
            }
        }
        if self.net_dirty {
            self.net_dirty = false;
            self.net.advance(self.now);
            let changed = self.net.reshare();
            if self.tracer.is_some() && !changed.is_empty() {
                let by_account = self.net.usage_by_account();
                for l in changed {
                    let total = self.net.usage()[l];
                    if let Some(tr) = self.tracer.as_mut() {
                        tr.link_usage(self.now, l, total, &by_account);
                    }
                }
            }
            self.net_gen += 1;
            if let Some((_, t)) = self.net.next_completion() {
                let gen = self.net_gen;
                self.push_event(t.max(self.now), Ev::NetCheck { gen });
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn deliver(
        &mut self,
        from: ActorId,
        to: ActorId,
        tag: Tag,
        payload: Payload,
        size: f64,
        start: f64,
        watch: Option<u64>,
    ) {
        // A watch that is no longer registered timed out earlier: the
        // sender was already told the send failed, so the message is
        // considered lost — do not deliver it after all.
        if let Some(w) = watch {
            if self.watches.remove(&w).is_none() {
                return;
            }
        }
        // Receiver crashed while the message was in flight (loopback
        // deliveries are not killed by the crash handler): the message
        // is lost and the sender learns about it.
        if !self.host_up[self.actor_hosts[to.index()].index()] {
            self.invoke(from, |a, ctx| a.on_send_failed(tag, SendFailure::HostDown, ctx));
            return;
        }
        let now = self.now;
        if let Some(tr) = self.tracer.as_mut() {
            tr.message(
                start,
                now,
                self.actor_hosts[from.index()].index(),
                self.actor_hosts[to.index()].index(),
                size,
            );
        }
        // Sender learns first, receiver second (documented order).
        self.invoke(from, |a, ctx| a.on_send_done(tag, ctx));
        self.invoke(to, |a, ctx| a.on_message(from, payload, ctx));
    }

    /// Kills every running task and in-flight flow touching the crashed
    /// `host`, notifying live senders whose transfers died.
    fn kill_activities_on_host(&mut self, host: HostId) {
        self.cpu.advance(self.now);
        let killed_tasks = self.cpu.drain_host(host);
        if !killed_tasks.is_empty() {
            // The owners are on the dead host — no one to notify.
            self.cpu_dirty = true;
            self.touched_hosts.insert(host.index());
        }
        self.net.advance(self.now);
        let hosts = &self.actor_hosts;
        let killed_flows = self.net.drain_matching(|f| {
            hosts[f.from.index()] == host || hosts[f.to.index()] == host
        });
        if !killed_flows.is_empty() {
            self.net_dirty = true;
        }
        for f in killed_flows {
            self.fail_killed_flow(f, SendFailure::HostDown);
        }
    }

    /// Reports a flow killed by a fault back to its sender (deferred so
    /// the callback runs at a clean point of the event loop), dropping
    /// the notification when the sender itself is dead.
    fn fail_killed_flow(&mut self, f: Flow, reason: SendFailure) {
        if self.host_up[self.actor_hosts[f.from.index()].index()] {
            self.push_event(
                self.now,
                Ev::SendFailed { actor: f.from, tag: f.tag, reason, watch: f.watch },
            );
        } else if let Some(w) = f.watch {
            self.watches.remove(&w);
        }
    }

    /// Runs until the calendar drains. Returns the final simulated
    /// time.
    pub fn run(&mut self) -> f64 {
        self.run_until(f64::INFINITY)
    }

    /// Runs until the calendar drains or simulated time would exceed
    /// `deadline`. Returns the time reached.
    pub fn run_until(&mut self, deadline: f64) -> f64 {
        if self.tracer.is_none() {
            if let Some(cfg) = self.tracing_config.take() {
                self.tracer = Some(SimTracer::new(&self.platform, cfg, &self.accounts));
            }
        }
        if !self.started {
            self.started = true;
            for i in 0..self.actors.len() {
                self.invoke(ActorId(i as u32), |a, ctx| a.on_start(ctx));
            }
            self.flush();
        }
        while let Some(entry) = self.calendar.peek() {
            if entry.time > deadline {
                self.now = deadline;
                break;
            }
            let CalEntry { time, event, .. } = self.calendar.pop().expect("peeked");
            // Drop stale completion probes before they advance the
            // clock: a fault that killed the predicted activity leaves
            // its probe dangling past the real end of the workload, and
            // the final time must not be inflated by it.
            match &event {
                Ev::NetCheck { gen } if *gen != self.net_gen => continue,
                Ev::CpuCheck { gen } if *gen != self.cpu_gen => continue,
                _ => {}
            }
            debug_assert!(time >= self.now - 1e-9, "time went backwards");
            self.now = self.now.max(time);
            self.events_processed += 1;
            match event {
                Ev::Timer { actor, tag } => {
                    self.invoke(actor, |a, ctx| a.on_timer(tag, ctx));
                }
                Ev::Deliver { from, to, tag, payload, size, start, watch } => {
                    self.deliver(from, to, tag, payload, size, start, watch);
                }
                Ev::NetCheck { gen } => {
                    debug_assert_eq!(gen, self.net_gen, "stale probes dropped above");
                    self.net.advance(self.now);
                    let done = self.net.completed_at(self.now);
                    debug_assert!(!done.is_empty(), "live NetCheck with no completion");
                    for id in done {
                        let flow = self.net.remove(id).expect("listed id");
                        self.net_dirty = true;
                        let payload = flow.payload.expect("payload present until delivery");
                        self.deliver(
                            flow.from, flow.to, flow.tag, payload, flow.size, flow.start,
                            flow.watch,
                        );
                    }
                }
                Ev::HostPower { host, power } => {
                    // The nominal power is what a recovery restores;
                    // while the host is down the change is recorded but
                    // not applied.
                    self.nominal_power[host.index()] = power;
                    if self.host_up[host.index()] {
                        self.cpu.advance(self.now);
                        self.cpu.set_power(host, power);
                        self.cpu_dirty = true;
                        self.touched_hosts.insert(host.index());
                        let now = self.now;
                        if let Some(tr) = self.tracer.as_mut() {
                            tr.host_power(now, host.index(), power);
                        }
                    }
                }
                Ev::LinkBandwidth { link, bandwidth } => {
                    self.nominal_bandwidth[link.index()] = bandwidth;
                    if self.link_up[link.index()] {
                        let effective = bandwidth * self.link_factor[link.index()];
                        self.net.advance(self.now);
                        self.net.set_capacity(link.index(), effective);
                        self.net_dirty = true;
                        let now = self.now;
                        if let Some(tr) = self.tracer.as_mut() {
                            tr.link_bandwidth(now, link.index(), effective);
                        }
                    }
                }
                Ev::HostFault { host, up } => {
                    if up == self.host_up[host.index()] {
                        continue; // idempotent: already in that state
                    }
                    let h = host.index();
                    let now = self.now;
                    if up {
                        self.host_up[h] = true;
                        self.cpu.advance(now);
                        self.cpu.set_power(host, self.nominal_power[h]);
                        self.cpu_dirty = true;
                        self.touched_hosts.insert(h);
                        let power = self.nominal_power[h];
                        if let Some(tr) = self.tracer.as_mut() {
                            tr.host_power(now, h, power);
                            tr.host_availability(now, h, true);
                        }
                    } else {
                        self.host_up[h] = false;
                        self.kill_activities_on_host(host);
                        self.cpu.set_power(host, 0.0);
                        self.cpu_dirty = true;
                        self.touched_hosts.insert(h);
                        if let Some(tr) = self.tracer.as_mut() {
                            tr.host_power(now, h, 0.0);
                            tr.host_availability(now, h, false);
                        }
                    }
                }
                Ev::LinkFault { link, up } => {
                    if up == self.link_up[link.index()] {
                        continue;
                    }
                    let l = link.index();
                    let now = self.now;
                    self.net.advance(now);
                    if up {
                        self.link_up[l] = true;
                        let effective = self.nominal_bandwidth[l] * self.link_factor[l];
                        self.net.set_capacity(l, effective);
                        self.net_dirty = true;
                        if let Some(tr) = self.tracer.as_mut() {
                            tr.link_bandwidth(now, l, effective);
                            tr.link_availability(now, l, true);
                        }
                    } else {
                        self.link_up[l] = false;
                        let killed = self.net.drain_matching(|f| f.route.contains(&link));
                        self.net_dirty = true;
                        for f in killed {
                            self.fail_killed_flow(f, SendFailure::LinkDown);
                        }
                        self.net.set_capacity(l, 0.0); // clamped to epsilon
                        if let Some(tr) = self.tracer.as_mut() {
                            tr.link_bandwidth(now, l, 0.0);
                            tr.link_availability(now, l, false);
                        }
                    }
                }
                Ev::LinkDegrade { link, factor } => {
                    let l = link.index();
                    self.link_factor[l] = factor;
                    if self.link_up[l] {
                        let effective = self.nominal_bandwidth[l] * factor;
                        self.net.advance(self.now);
                        self.net.set_capacity(l, effective);
                        self.net_dirty = true;
                        let now = self.now;
                        if let Some(tr) = self.tracer.as_mut() {
                            tr.link_bandwidth(now, l, effective);
                        }
                    }
                }
                Ev::SendTimeout { watch } => {
                    if let Some(w) = self.watches.remove(&watch) {
                        if let Some(flow_id) = w.flow {
                            self.net.advance(self.now);
                            if self.net.remove(flow_id).is_some() {
                                self.net_dirty = true;
                            }
                        }
                        self.invoke(w.from, |a, ctx| {
                            a.on_send_failed(w.tag, SendFailure::TimedOut, ctx)
                        });
                    }
                }
                Ev::SendFailed { actor, tag, reason, watch } => {
                    // When the send carried a watch that already fired,
                    // the sender has been notified (`TimedOut`) — do
                    // not notify twice.
                    let notify = match watch {
                        None => true,
                        Some(w) => self.watches.remove(&w).is_some(),
                    };
                    if notify {
                        self.invoke(actor, |a, ctx| a.on_send_failed(tag, reason, ctx));
                    }
                }
                Ev::CpuCheck { gen } => {
                    debug_assert_eq!(gen, self.cpu_gen, "stale probes dropped above");
                    self.cpu.advance(self.now);
                    let done = self.cpu.completed_at(self.now);
                    debug_assert!(!done.is_empty(), "live CpuCheck with no completion");
                    for id in done {
                        let task = self.cpu.remove(id).expect("listed id");
                        self.cpu_dirty = true;
                        self.touched_hosts.insert(task.host.index());
                        self.invoke(task.actor, |a, ctx| a.on_compute_done(task.tag, ctx));
                    }
                }
            }
            self.flush();
        }
        self.now
    }

    /// Finalizes and returns the recorded trace (`None` when tracing
    /// was never enabled).
    pub fn into_trace(self) -> Option<Trace> {
        let end = self.now;
        self.tracer.map(|t| t.finish(end))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viva_platform::generators;
    use viva_trace::metric::names;

    /// Computes one task then stops.
    struct OneShot {
        flops: f64,
        done_at: std::rc::Rc<std::cell::Cell<f64>>,
    }
    impl Actor for OneShot {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.execute(self.flops, Tag(0));
        }
        fn on_compute_done(&mut self, _tag: Tag, ctx: &mut Ctx<'_>) {
            self.done_at.set(ctx.now());
        }
    }

    #[test]
    fn compute_takes_flops_over_power() {
        let p = generators::star(1, 100.0, 1000.0).unwrap();
        let h = p.hosts()[0].id();
        let done = std::rc::Rc::new(std::cell::Cell::new(0.0));
        let mut sim = Simulation::new(p);
        sim.spawn(h, Box::new(OneShot { flops: 250.0, done_at: done.clone() }));
        let end = sim.run();
        assert!((done.get() - 2.5).abs() < 1e-9);
        assert!((end - 2.5).abs() < 1e-9);
    }

    /// Sends one message, peer records arrival time.
    struct Sender {
        to: ActorId,
        size: f64,
        send_done: std::rc::Rc<std::cell::Cell<f64>>,
    }
    impl Actor for Sender {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.send(self.to, self.size, Box::new(123u32), Tag(7));
        }
        fn on_send_done(&mut self, tag: Tag, ctx: &mut Ctx<'_>) {
            assert_eq!(tag, Tag(7));
            self.send_done.set(ctx.now());
        }
    }
    #[derive(Default)]
    struct Receiver {
        got: std::rc::Rc<std::cell::Cell<f64>>,
    }
    impl Actor for Receiver {
        fn on_message(&mut self, _from: ActorId, payload: Payload, ctx: &mut Ctx<'_>) {
            assert_eq!(*payload.downcast::<u32>().unwrap(), 123);
            self.got.set(ctx.now());
        }
    }

    #[test]
    fn transfer_time_is_latency_plus_size_over_bottleneck() {
        // star: two hosts behind one switch; route = 2 links of
        // 1000 Mbit/s, 1e-5 s each. 8000 Mbit at 1000 Mbit/s = 8 s.
        let p = generators::star(2, 100.0, 1000.0).unwrap();
        let h0 = p.hosts()[0].id();
        let h1 = p.hosts()[1].id();
        let got = std::rc::Rc::new(std::cell::Cell::new(0.0));
        let sent = std::rc::Rc::new(std::cell::Cell::new(0.0));
        let mut sim = Simulation::new(p);
        let recv = sim.spawn(h1, Box::new(Receiver { got: got.clone() }));
        sim.spawn(
            h0,
            Box::new(Sender { to: recv, size: 8000.0, send_done: sent.clone() }),
        );
        sim.run();
        // The fluid model completes a flow when its volume has drained
        // AND its latency has elapsed: max(8 s, 2e-5 s) = 8 s.
        let expect = 8.0;
        assert!((got.get() - expect).abs() < 1e-6, "got {}", got.get());
        assert_eq!(got.get(), sent.get());
    }

    #[test]
    fn loopback_message_is_instant() {
        let p = generators::star(2, 100.0, 1000.0).unwrap();
        let h0 = p.hosts()[0].id();
        let got = std::rc::Rc::new(std::cell::Cell::new(-1.0));
        let sent = std::rc::Rc::new(std::cell::Cell::new(-1.0));
        let mut sim = Simulation::new(p);
        let recv = sim.spawn(h0, Box::new(Receiver { got: got.clone() }));
        sim.spawn(
            h0,
            Box::new(Sender { to: recv, size: 8000.0, send_done: sent.clone() }),
        );
        sim.run();
        assert_eq!(got.get(), 0.0);
        assert_eq!(sent.get(), 0.0);
    }

    /// Two concurrent senders to the same receiver host share its
    /// downlink fairly: each 4000 Mbit flow takes ~8 s instead of ~4.
    #[test]
    fn concurrent_flows_share_bottleneck() {
        let p = generators::star(3, 100.0, 1000.0).unwrap();
        let hosts: Vec<HostId> = p.hosts().iter().map(|h| h.id()).collect();
        let got = std::rc::Rc::new(std::cell::Cell::new(0.0));
        let s1 = std::rc::Rc::new(std::cell::Cell::new(0.0));
        let s2 = std::rc::Rc::new(std::cell::Cell::new(0.0));
        let mut sim = Simulation::new(p);
        let recv = sim.spawn(hosts[2], Box::new(Receiver { got: got.clone() }));
        sim.spawn(
            hosts[0],
            Box::new(Sender { to: recv, size: 4000.0, send_done: s1.clone() }),
        );
        sim.spawn(
            hosts[1],
            Box::new(Sender { to: recv, size: 4000.0, send_done: s2.clone() }),
        );
        let end = sim.run();
        assert!((end - 8.0).abs() < 1e-3, "end {end}");
        assert!((s1.get() - s2.get()).abs() < 1e-6);
    }

    /// Timers fire in order and at the right time.
    struct TimerActor {
        fired: std::rc::Rc<std::cell::RefCell<Vec<(u64, f64)>>>,
    }
    impl Actor for TimerActor {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(2.0, Tag(2));
            ctx.set_timer(1.0, Tag(1));
            ctx.set_timer(1.0, Tag(11)); // same-time: insertion order
        }
        fn on_timer(&mut self, tag: Tag, ctx: &mut Ctx<'_>) {
            self.fired.borrow_mut().push((tag.0, ctx.now()));
        }
    }

    #[test]
    fn timers_fire_in_deterministic_order() {
        let p = generators::star(1, 100.0, 1000.0).unwrap();
        let h = p.hosts()[0].id();
        let fired = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut sim = Simulation::new(p);
        sim.spawn(h, Box::new(TimerActor { fired: fired.clone() }));
        sim.run();
        assert_eq!(*fired.borrow(), vec![(1, 1.0), (11, 1.0), (2, 2.0)]);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let p = generators::star(1, 100.0, 1000.0).unwrap();
        let h = p.hosts()[0].id();
        let done = std::rc::Rc::new(std::cell::Cell::new(0.0));
        let mut sim = Simulation::new(p);
        sim.spawn(h, Box::new(OneShot { flops: 1000.0, done_at: done.clone() }));
        let t = sim.run_until(3.0);
        assert_eq!(t, 3.0);
        assert_eq!(done.get(), 0.0, "task must not have completed yet");
        let t = sim.run_until(f64::INFINITY);
        assert!((t - 10.0).abs() < 1e-9);
        assert!((done.get() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn tracing_records_compute_utilization() {
        let p = generators::star(1, 100.0, 1000.0).unwrap();
        let h = p.hosts()[0].id();
        let done = std::rc::Rc::new(std::cell::Cell::new(0.0));
        let mut sim = Simulation::new(p);
        sim.enable_tracing(TracingConfig::default());
        sim.spawn(h, Box::new(OneShot { flops: 250.0, done_at: done }));
        sim.run();
        let trace = sim.into_trace().expect("tracing enabled");
        let hc = trace.containers().by_name("star-1").unwrap().id();
        let used = trace.signal_by_name(hc, names::POWER_USED).unwrap();
        // Busy at 100 MFlop/s for 2.5 s.
        assert!((used.integrate(0.0, 3.0) - 250.0).abs() < 1e-6);
        assert_eq!(used.value_at(1.0), 100.0);
        assert_eq!(used.value_at(2.6), 0.0);
    }

    #[test]
    fn tracing_records_link_utilization_and_messages() {
        let p = generators::star(2, 100.0, 1000.0).unwrap();
        let h0 = p.hosts()[0].id();
        let h1 = p.hosts()[1].id();
        let got = std::rc::Rc::new(std::cell::Cell::new(0.0));
        let sent = std::rc::Rc::new(std::cell::Cell::new(0.0));
        let mut sim = Simulation::new(p);
        sim.enable_tracing(TracingConfig::default());
        let recv = sim.spawn(h1, Box::new(Receiver { got }));
        sim.spawn(h0, Box::new(Sender { to: recv, size: 8000.0, send_done: sent }));
        sim.run();
        let trace = sim.into_trace().unwrap();
        let l = trace.containers().by_name("star-1-up").unwrap().id();
        let used = trace.signal_by_name(l, names::BANDWIDTH_USED).unwrap();
        // The flow drove the uplink at 1000 Mbit/s for ~8 s.
        let total = used.integrate(0.0, trace.end());
        assert!((total - 8000.0).abs() < 1.0, "total {total}");
        assert_eq!(trace.links().len(), 1);
        assert_eq!(trace.links()[0].size, 8000.0);
    }

    #[test]
    fn host_power_change_slows_running_task() {
        // 100 MFlop/s host, 200 MFlop task; power halves at t = 1.
        // Work done: 100 in [0,1], then 50/s → done at 1 + 100/50 = 3.
        let p = generators::star(1, 100.0, 1000.0).unwrap();
        let h = p.hosts()[0].id();
        let done = std::rc::Rc::new(std::cell::Cell::new(0.0));
        let mut sim = Simulation::new(p);
        sim.enable_tracing(TracingConfig::default());
        sim.spawn(h, Box::new(OneShot { flops: 200.0, done_at: done.clone() }));
        sim.schedule_host_power(1.0, h, 50.0);
        sim.run();
        assert!((done.get() - 3.0).abs() < 1e-9, "done at {}", done.get());
        // The capacity change landed in the trace (Fig. 1 style).
        let trace = sim.into_trace().unwrap();
        let hc = trace.containers().by_name("star-1").unwrap().id();
        let power = trace.signal_by_name(hc, names::POWER).unwrap();
        assert_eq!(power.value_at(0.5), 100.0);
        assert_eq!(power.value_at(2.0), 50.0);
    }

    #[test]
    fn link_bandwidth_change_slows_flow() {
        // 8000 Mbit over a 2-link route at 1000 Mbit/s; at t = 4 the
        // uplink degrades to 250. Transferred by then: 4000; the rest
        // takes 4000/250 = 16 s → total 20 s.
        let p = generators::star(2, 100.0, 1000.0).unwrap();
        let h0 = p.hosts()[0].id();
        let h1 = p.hosts()[1].id();
        let uplink = p.link_by_name("star-1-up").unwrap().id();
        let got = std::rc::Rc::new(std::cell::Cell::new(0.0));
        let sent = std::rc::Rc::new(std::cell::Cell::new(0.0));
        let mut sim = Simulation::new(p);
        let recv = sim.spawn(h1, Box::new(Receiver { got: got.clone() }));
        sim.spawn(h0, Box::new(Sender { to: recv, size: 8000.0, send_done: sent }));
        sim.schedule_link_bandwidth(4.0, uplink, 250.0);
        sim.run();
        assert!((got.get() - 20.0).abs() < 1e-6, "got {}", got.get());
    }

    #[test]
    #[should_panic(expected = "invalid power")]
    fn schedule_host_power_rejects_nan() {
        let p = generators::star(1, 100.0, 1000.0).unwrap();
        let h = p.hosts()[0].id();
        let mut sim = Simulation::new(p);
        sim.schedule_host_power(1.0, h, f64::NAN);
    }

    use crate::fault::{FaultPlan, SendFailure};

    /// Records every send failure it sees. Sends at `delay` (0 = at
    /// start).
    struct FailureProbe {
        to: ActorId,
        size: f64,
        delay: f64,
        timeout: Option<f64>,
        failures: std::rc::Rc<std::cell::RefCell<Vec<(u64, SendFailure, f64)>>>,
        delivered: std::rc::Rc<std::cell::Cell<u32>>,
    }
    impl FailureProbe {
        fn ship(&self, ctx: &mut Ctx<'_>) {
            match self.timeout {
                Some(t) => ctx.send_with_timeout(self.to, self.size, Box::new(0u8), Tag(1), t),
                None => ctx.send(self.to, self.size, Box::new(0u8), Tag(1)),
            }
        }
    }
    impl Actor for FailureProbe {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            if self.delay > 0.0 {
                ctx.set_timer(self.delay, Tag(99));
            } else {
                self.ship(ctx);
            }
        }
        fn on_timer(&mut self, _tag: Tag, ctx: &mut Ctx<'_>) {
            self.ship(ctx);
        }
        fn on_send_done(&mut self, _tag: Tag, _ctx: &mut Ctx<'_>) {
            self.delivered.set(self.delivered.get() + 1);
        }
        fn on_send_failed(&mut self, tag: Tag, reason: SendFailure, ctx: &mut Ctx<'_>) {
            self.failures.borrow_mut().push((tag.0, reason, ctx.now()));
        }
    }

    #[derive(Default)]
    struct Sink {
        got: std::rc::Rc<std::cell::Cell<u32>>,
    }
    impl Actor for Sink {
        fn on_message(&mut self, _from: ActorId, _payload: Payload, _ctx: &mut Ctx<'_>) {
            self.got.set(self.got.get() + 1);
        }
    }

    #[test]
    fn host_crash_kills_running_task() {
        // 100 MFlop/s host, 1000 MFlop task (10 s); crash at t = 2.
        let p = generators::star(1, 100.0, 1000.0).unwrap();
        let h = p.hosts()[0].id();
        let done = std::rc::Rc::new(std::cell::Cell::new(-1.0));
        let mut sim = Simulation::new(p);
        sim.spawn(h, Box::new(OneShot { flops: 1000.0, done_at: done.clone() }));
        sim.inject_faults(&FaultPlan::new().host_crash(2.0, h)).unwrap();
        let end = sim.run();
        assert_eq!(done.get(), -1.0, "the task must never complete");
        assert!(!sim.host_is_up(h));
        assert!((end - 2.0).abs() < 1e-9, "nothing left after the crash: {end}");
    }

    #[test]
    fn receiver_crash_fails_inflight_send() {
        let p = generators::star(2, 100.0, 1000.0).unwrap();
        let h0 = p.hosts()[0].id();
        let h1 = p.hosts()[1].id();
        let failures = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let delivered = std::rc::Rc::new(std::cell::Cell::new(0));
        let got = std::rc::Rc::new(std::cell::Cell::new(0));
        let mut sim = Simulation::new(p);
        let recv = sim.spawn(h1, Box::new(Sink { got: got.clone() }));
        sim.spawn(
            h0,
            // 8000 Mbit needs 8 s; the receiver dies at t = 3.
            Box::new(FailureProbe {
                to: recv,
                size: 8000.0,
                delay: 0.0,
                timeout: None,
                failures: failures.clone(),
                delivered: delivered.clone(),
            }),
        );
        sim.inject_faults(&FaultPlan::new().host_crash(3.0, h1)).unwrap();
        sim.run();
        assert_eq!(got.get(), 0);
        assert_eq!(delivered.get(), 0);
        assert_eq!(*failures.borrow(), vec![(1, SendFailure::HostDown, 3.0)]);
    }

    #[test]
    fn send_to_dead_host_fails_after_latency() {
        let p = generators::star(2, 100.0, 1000.0).unwrap();
        let h0 = p.hosts()[0].id();
        let h1 = p.hosts()[1].id();
        let failures = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let delivered = std::rc::Rc::new(std::cell::Cell::new(0));
        let got = std::rc::Rc::new(std::cell::Cell::new(0));
        let mut sim = Simulation::new(p);
        let recv = sim.spawn(h1, Box::new(Sink { got: got.clone() }));
        sim.spawn(
            h0,
            Box::new(FailureProbe {
                to: recv,
                size: 10.0,
                delay: 1.0,
                timeout: None,
                failures: failures.clone(),
                delivered,
            }),
        );
        // Host 1 is already dead when the send is issued at t = 1.
        sim.inject_faults(&FaultPlan::new().host_crash(0.5, h1)).unwrap();
        sim.run();
        let f = failures.borrow();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].1, SendFailure::HostDown);
        assert!(f[0].2 > 1.0, "failure surfaces after the route latency");
        assert_eq!(got.get(), 0);
    }

    #[test]
    fn link_failure_kills_crossing_flow() {
        let p = generators::star(2, 100.0, 1000.0).unwrap();
        let h0 = p.hosts()[0].id();
        let h1 = p.hosts()[1].id();
        let uplink = p.link_by_name("star-1-up").unwrap().id();
        let failures = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let delivered = std::rc::Rc::new(std::cell::Cell::new(0));
        let got = std::rc::Rc::new(std::cell::Cell::new(0));
        let mut sim = Simulation::new(p);
        let recv = sim.spawn(h1, Box::new(Sink { got: got.clone() }));
        sim.spawn(
            h0,
            Box::new(FailureProbe {
                to: recv,
                size: 8000.0,
                delay: 0.0,
                timeout: None,
                failures: failures.clone(),
                delivered,
            }),
        );
        sim.inject_faults(&FaultPlan::new().link_fail(2.0, uplink)).unwrap();
        sim.run();
        assert_eq!(*failures.borrow(), vec![(1, SendFailure::LinkDown, 2.0)]);
        assert_eq!(got.get(), 0);
        assert!(!sim.link_is_up(uplink));
    }

    #[test]
    fn link_outage_and_degradation_shape_transfer_time() {
        // 8000 Mbit at 1000 Mbit/s = 8 s nominal. Degrading the uplink
        // to 50% during [2, 4) loses 1 s of throughput → done at 9 s.
        let p = generators::star(2, 100.0, 1000.0).unwrap();
        let h0 = p.hosts()[0].id();
        let h1 = p.hosts()[1].id();
        let uplink = p.link_by_name("star-1-up").unwrap().id();
        let got = std::rc::Rc::new(std::cell::Cell::new(0.0));
        let sent = std::rc::Rc::new(std::cell::Cell::new(0.0));
        let mut sim = Simulation::new(p);
        let recv = sim.spawn(h1, Box::new(Receiver { got: got.clone() }));
        sim.spawn(h0, Box::new(Sender { to: recv, size: 8000.0, send_done: sent }));
        sim.inject_faults(&FaultPlan::new().link_degrade(2.0, 4.0, uplink, 0.5))
            .unwrap();
        sim.run();
        assert!((got.get() - 9.0).abs() < 1e-6, "got {}", got.get());
    }

    #[test]
    fn host_recovers_and_computes_again() {
        struct RetryOnce {
            done_at: std::rc::Rc<std::cell::Cell<f64>>,
        }
        impl Actor for RetryOnce {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(5.0, Tag(0)); // after recovery at t = 3
            }
            fn on_timer(&mut self, _tag: Tag, ctx: &mut Ctx<'_>) {
                ctx.execute(100.0, Tag(1));
            }
            fn on_compute_done(&mut self, _tag: Tag, ctx: &mut Ctx<'_>) {
                self.done_at.set(ctx.now());
            }
        }
        let p = generators::star(2, 100.0, 1000.0).unwrap();
        let h0 = p.hosts()[0].id();
        let h1 = p.hosts()[1].id();
        let done = std::rc::Rc::new(std::cell::Cell::new(-1.0));
        let mut sim = Simulation::new(p);
        sim.spawn(h1, Box::new(RetryOnce { done_at: done.clone() }));
        // A crash on the *other* host must not disturb h1's work; a
        // timer on h1 set before its own outage window still fires
        // because the host is back up by then.
        sim.inject_faults(
            &FaultPlan::new().host_outage(1.0, 1.0, h0).host_outage(2.0, 1.0, h1),
        )
        .unwrap();
        sim.run();
        assert!(sim.host_is_up(h0) && sim.host_is_up(h1));
        // Timer at t = 5 (host up again), 100 MFlop at 100 MFlop/s → 6.
        assert!((done.get() - 6.0).abs() < 1e-9, "done at {}", done.get());
    }

    #[test]
    fn timer_during_downtime_is_dropped() {
        struct TimerProbe {
            fired: std::rc::Rc<std::cell::Cell<u32>>,
        }
        impl Actor for TimerProbe {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(2.0, Tag(0)); // inside the outage [1, 3)
                ctx.set_timer(4.0, Tag(1)); // after recovery
            }
            fn on_timer(&mut self, _tag: Tag, ctx: &mut Ctx<'_>) {
                let _ = ctx;
                self.fired.set(self.fired.get() + 1);
            }
        }
        let p = generators::star(1, 100.0, 1000.0).unwrap();
        let h = p.hosts()[0].id();
        let fired = std::rc::Rc::new(std::cell::Cell::new(0));
        let mut sim = Simulation::new(p);
        sim.spawn(h, Box::new(TimerProbe { fired: fired.clone() }));
        sim.inject_faults(&FaultPlan::new().host_outage(1.0, 2.0, h)).unwrap();
        sim.run();
        assert_eq!(fired.get(), 1, "only the post-recovery timer fires");
    }

    #[test]
    fn send_timeout_fires_on_silent_loss() {
        let p = generators::star(2, 100.0, 1000.0).unwrap();
        let h0 = p.hosts()[0].id();
        let h1 = p.hosts()[1].id();
        let failures = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let delivered = std::rc::Rc::new(std::cell::Cell::new(0));
        let got = std::rc::Rc::new(std::cell::Cell::new(0));
        let mut sim = Simulation::new(p);
        let recv = sim.spawn(h1, Box::new(Sink { got: got.clone() }));
        sim.spawn(
            h0,
            Box::new(FailureProbe {
                to: recv,
                size: 10.0,
                delay: 0.0,
                timeout: Some(5.0),
                failures: failures.clone(),
                delivered,
            }),
        );
        // Certain loss: the send vanishes without any failure signal;
        // only the timeout reveals it.
        sim.inject_faults(&FaultPlan::new().message_loss(0.0, 1.0, 1.0)).unwrap();
        sim.run();
        assert_eq!(*failures.borrow(), vec![(1, SendFailure::TimedOut, 5.0)]);
        assert_eq!(got.get(), 0);
    }

    #[test]
    fn send_timeout_does_not_fire_on_success() {
        let p = generators::star(2, 100.0, 1000.0).unwrap();
        let h0 = p.hosts()[0].id();
        let h1 = p.hosts()[1].id();
        let failures = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let delivered = std::rc::Rc::new(std::cell::Cell::new(0));
        let got = std::rc::Rc::new(std::cell::Cell::new(0));
        let mut sim = Simulation::new(p);
        let recv = sim.spawn(h1, Box::new(Sink { got: got.clone() }));
        sim.spawn(
            h0,
            // 1000 Mbit at 1000 Mbit/s = 1 s, well within the timeout.
            Box::new(FailureProbe {
                to: recv,
                size: 1000.0,
                delay: 0.0,
                timeout: Some(5.0),
                failures: failures.clone(),
                delivered: delivered.clone(),
            }),
        );
        sim.run();
        assert!(failures.borrow().is_empty());
        assert_eq!(delivered.get(), 1);
        assert_eq!(got.get(), 1);
    }

    #[test]
    fn send_timeout_kills_slow_flow() {
        let p = generators::star(2, 100.0, 1000.0).unwrap();
        let h0 = p.hosts()[0].id();
        let h1 = p.hosts()[1].id();
        let failures = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let delivered = std::rc::Rc::new(std::cell::Cell::new(0));
        let got = std::rc::Rc::new(std::cell::Cell::new(0));
        let mut sim = Simulation::new(p);
        let recv = sim.spawn(h1, Box::new(Sink { got: got.clone() }));
        sim.spawn(
            h0,
            // 8000 Mbit needs 8 s but the sender only waits 2.
            Box::new(FailureProbe {
                to: recv,
                size: 8000.0,
                delay: 0.0,
                timeout: Some(2.0),
                failures: failures.clone(),
                delivered,
            }),
        );
        let end = sim.run();
        assert_eq!(*failures.borrow(), vec![(1, SendFailure::TimedOut, 2.0)]);
        assert_eq!(got.get(), 0, "the killed flow must not deliver");
        assert!((end - 2.0).abs() < 1e-9, "nothing outlives the timeout: {end}");
    }

    #[test]
    fn availability_is_recorded_in_trace() {
        let p = generators::star(2, 100.0, 1000.0).unwrap();
        let h0 = p.hosts()[0].id();
        let uplink = p.link_by_name("star-1-up").unwrap().id();
        let done = std::rc::Rc::new(std::cell::Cell::new(0.0));
        let mut sim = Simulation::new(p);
        sim.enable_tracing(TracingConfig::default());
        sim.spawn(h0, Box::new(OneShot { flops: 100.0, done_at: done }));
        sim.inject_faults(
            &FaultPlan::new().host_outage(2.0, 2.0, h0).link_outage(1.0, 3.0, uplink),
        )
        .unwrap();
        sim.run();
        let trace = sim.into_trace().unwrap();
        let hc = trace.containers().by_name("star-1").unwrap().id();
        let avail = trace.signal_by_name(hc, names::AVAILABILITY).unwrap();
        assert_eq!(avail.value_at(1.0), 1.0);
        assert_eq!(avail.value_at(3.0), 0.0);
        assert_eq!(avail.value_at(4.5), 1.0);
        // Availability fraction over [0, 4]: down for 2 of 4 seconds.
        assert!((avail.integrate(0.0, 4.0) / 4.0 - 0.5).abs() < 1e-9);
        let lc = trace.containers().by_name("star-1-up").unwrap().id();
        let lavail = trace.signal_by_name(lc, names::AVAILABILITY).unwrap();
        assert_eq!(lavail.value_at(0.5), 1.0);
        assert_eq!(lavail.value_at(2.0), 0.0);
        assert_eq!(lavail.value_at(4.5), 1.0, "link back up at 1 + 3 = 4");
        // The dead host's power capacity also drops to 0 (fill renders
        // dark) and comes back.
        let power = trace.signal_by_name(hc, names::POWER).unwrap();
        assert_eq!(power.value_at(3.0), 0.0);
        assert_eq!(power.value_at(4.5), 100.0);
    }

    #[test]
    fn faulty_runs_are_deterministic() {
        fn run_once() -> (f64, u64, Vec<(u64, SendFailure, f64)>) {
            let p = generators::star(3, 100.0, 1000.0).unwrap();
            let hosts: Vec<HostId> = p.hosts().iter().map(|h| h.id()).collect();
            let failures = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
            let delivered = std::rc::Rc::new(std::cell::Cell::new(0));
            let got = std::rc::Rc::new(std::cell::Cell::new(0));
            let mut sim = Simulation::new(p);
            let recv = sim.spawn(hosts[2], Box::new(Sink { got }));
            for h in &hosts[..2] {
                sim.spawn(
                    *h,
                    Box::new(FailureProbe {
                        to: recv,
                        size: 4000.0,
                        delay: 0.0,
                        timeout: Some(10.0),
                        failures: failures.clone(),
                        delivered: delivered.clone(),
                    }),
                );
            }
            sim.inject_faults(
                &FaultPlan::new()
                    .with_seed(7)
                    .host_outage(3.0, 2.0, hosts[2])
                    .message_loss(0.0, 1.0, 0.5),
            )
            .unwrap();
            let end = sim.run();
            let f = failures.borrow().clone();
            (end, sim.events_processed(), f)
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn inject_after_start_is_rejected() {
        let p = generators::star(1, 100.0, 1000.0).unwrap();
        let h = p.hosts()[0].id();
        let mut sim = Simulation::new(p);
        sim.run();
        assert_eq!(
            sim.inject_faults(&FaultPlan::new().host_crash(1.0, h)),
            Err(crate::fault::FaultError::SimulationStarted)
        );
    }

    #[test]
    fn deterministic_repeat_runs() {
        fn run_once() -> (f64, u64) {
            let p = generators::star(3, 100.0, 1000.0).unwrap();
            let hosts: Vec<HostId> = p.hosts().iter().map(|h| h.id()).collect();
            let got = std::rc::Rc::new(std::cell::Cell::new(0.0));
            let s = std::rc::Rc::new(std::cell::Cell::new(0.0));
            let mut sim = Simulation::new(p);
            let recv = sim.spawn(hosts[2], Box::new(Receiver { got }));
            sim.spawn(
                hosts[0],
                Box::new(Sender { to: recv, size: 4000.0, send_done: s.clone() }),
            );
            sim.spawn(
                hosts[1],
                Box::new(Sender { to: recv, size: 2000.0, send_done: s }),
            );
            let end = sim.run();
            (end, sim.events_processed())
        }
        assert_eq!(run_once(), run_once());
    }
}
