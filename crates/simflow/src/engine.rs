//! The simulation engine: calendar, activity bookkeeping, actor
//! dispatch and trace emission.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashSet;

use viva_platform::{HostId, LinkId, Platform, RouteTable};
use viva_trace::Trace;

use crate::actor::{AccountId, Actor, ActorId, Command, Ctx, Payload, Tag};
use crate::cpu::{CpuState, Task};
use crate::network::{Flow, NetworkState};
use crate::tracer::{SimTracer, TracingConfig};

/// A calendar entry. Ordered by `(time, seq)` so that same-time events
/// fire in insertion order (deterministic).
#[derive(Debug)]
struct CalEntry {
    time: f64,
    seq: u64,
    event: Ev,
}

#[derive(Debug)]
enum Ev {
    /// A timer set by an actor.
    Timer { actor: ActorId, tag: Tag },
    /// Direct delivery of a loopback (same-host) message.
    Deliver {
        from: ActorId,
        to: ActorId,
        tag: Tag,
        payload: Payload,
        size: f64,
        start: f64,
    },
    /// Predicted next network completion; stale if `gen` mismatches.
    NetCheck { gen: u64 },
    /// Predicted next CPU completion; stale if `gen` mismatches.
    CpuCheck { gen: u64 },
    /// A host's available power changes (external load, reservation).
    HostPower { host: HostId, power: f64 },
    /// A link's available bandwidth changes.
    LinkBandwidth { link: LinkId, bandwidth: f64 },
}

impl PartialEq for CalEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for CalEntry {}
impl Ord for CalEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we pop the earliest.
        other
            .time
            .total_cmp(&self.time)
            .then(other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for CalEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A discrete-event simulation over a [`Platform`].
///
/// Lifecycle: construct, [`spawn`](Simulation::spawn) actors,
/// optionally [`enable_tracing`](Simulation::enable_tracing), then
/// [`run`](Simulation::run). After the run,
/// [`into_trace`](Simulation::into_trace) yields the recorded trace.
pub struct Simulation {
    platform: Platform,
    routes: RouteTable,
    actors: Vec<Option<Box<dyn Actor>>>,
    actor_hosts: Vec<HostId>,
    net: NetworkState,
    cpu: CpuState,
    calendar: BinaryHeap<CalEntry>,
    seq: u64,
    now: f64,
    net_gen: u64,
    cpu_gen: u64,
    net_dirty: bool,
    cpu_dirty: bool,
    touched_hosts: HashSet<usize>,
    tracer: Option<SimTracer>,
    accounts: Vec<String>,
    tracing_config: Option<TracingConfig>,
    events_processed: u64,
    started: bool,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("platform", &self.platform.name())
            .field("actors", &self.actors.len())
            .field("now", &self.now)
            .field("events_processed", &self.events_processed)
            .finish()
    }
}

impl Simulation {
    /// Creates a simulation over `platform` with no actors and tracing
    /// disabled.
    pub fn new(platform: Platform) -> Simulation {
        Simulation {
            net: NetworkState::new_for(&platform),
            cpu: CpuState::new_for(&platform),
            platform,
            routes: RouteTable::new(),
            actors: Vec::new(),
            actor_hosts: Vec::new(),
            calendar: BinaryHeap::new(),
            seq: 0,
            now: 0.0,
            net_gen: 0,
            cpu_gen: 0,
            net_dirty: false,
            cpu_dirty: false,
            touched_hosts: HashSet::new(),
            tracer: None,
            accounts: Vec::new(),
            tracing_config: None,
            events_processed: 0,
            started: false,
        }
    }

    /// Registers a billing account (one per competing application).
    /// Must be called before [`enable_tracing`](Simulation::enable_tracing).
    pub fn account(&mut self, name: impl Into<String>) -> AccountId {
        let id = AccountId(self.accounts.len() as u32);
        self.accounts.push(name.into());
        id
    }

    /// Turns on trace recording. Call after registering accounts and
    /// before [`run`](Simulation::run).
    pub fn enable_tracing(&mut self, config: TracingConfig) {
        self.tracing_config = Some(config);
    }

    /// Spawns `actor` on `host`. Actors spawned before
    /// [`run`](Simulation::run) get [`Actor::on_start`] at time 0 in
    /// spawn order.
    ///
    /// # Panics
    ///
    /// Panics when `host` is not part of the platform.
    pub fn spawn(&mut self, host: HostId, actor: Box<dyn Actor>) -> ActorId {
        assert!(host.index() < self.platform.hosts().len(), "unknown host");
        let id = ActorId(self.actors.len() as u32);
        self.actors.push(Some(actor));
        self.actor_hosts.push(host);
        id
    }

    /// Schedules a change of `host`'s available computing power at
    /// simulated time `t`: running and future tasks share the new
    /// capacity. This models the dynamic environments of the paper's
    /// Fig. 1 (time-varying availability).
    ///
    /// # Panics
    ///
    /// Panics when `host` is not part of the platform or `power` is
    /// negative/non-finite.
    pub fn schedule_host_power(&mut self, t: f64, host: HostId, power: f64) {
        assert!(host.index() < self.platform.hosts().len(), "unknown host");
        assert!(power.is_finite() && power >= 0.0, "invalid power {power}");
        self.push_event(t, Ev::HostPower { host, power });
    }

    /// Schedules a change of `link`'s available bandwidth at simulated
    /// time `t`: in-flight and future flows share the new capacity.
    ///
    /// # Panics
    ///
    /// Panics when `link` is not part of the platform or `bandwidth`
    /// is not positive and finite.
    pub fn schedule_link_bandwidth(&mut self, t: f64, link: LinkId, bandwidth: f64) {
        assert!(link.index() < self.platform.links().len(), "unknown link");
        assert!(
            bandwidth.is_finite() && bandwidth > 0.0,
            "invalid bandwidth {bandwidth}"
        );
        self.push_event(t, Ev::LinkBandwidth { link, bandwidth });
    }

    /// Current simulated time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// The simulated platform.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Number of calendar events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    fn push_event(&mut self, time: f64, event: Ev) {
        let seq = self.seq;
        self.seq += 1;
        self.calendar.push(CalEntry { time, seq, event });
    }

    /// Invokes a callback on an actor, then applies the commands it
    /// issued.
    fn invoke(&mut self, actor: ActorId, f: impl FnOnce(&mut dyn Actor, &mut Ctx<'_>)) {
        let Some(mut a) = self.actors[actor.index()].take() else {
            return; // actor slot empty (re-entrant call cannot happen)
        };
        let mut commands = Vec::new();
        {
            let mut ctx = Ctx {
                now: self.now,
                me: actor,
                host: self.actor_hosts[actor.index()],
                platform: &self.platform,
                commands: &mut commands,
            };
            f(a.as_mut(), &mut ctx);
        }
        self.actors[actor.index()] = Some(a);
        for c in commands {
            self.apply(c);
        }
    }

    fn apply(&mut self, command: Command) {
        match command {
            Command::Send { from, to, size, payload, tag, account } => {
                let src = self.actor_hosts[from.index()];
                let dst = self.actor_hosts[to.index()];
                let route = self
                    .routes
                    .route(&self.platform, src, dst)
                    .expect("validated platforms are connected");
                if route.links.is_empty() || size <= 0.0 {
                    // Loopback, and zero-size control messages: no
                    // bandwidth is consumed, only latency elapses.
                    let start = self.now;
                    self.push_event(
                        self.now + route.latency,
                        Ev::Deliver { from, to, tag, payload, size, start },
                    );
                } else {
                    self.net.advance(self.now);
                    self.net.add(Flow {
                        from,
                        to,
                        tag,
                        account,
                        latency: route.latency,
                        route: route.links,
                        start: self.now,
                        size,
                        remaining: size,
                        rate: 0.0,
                        payload: Some(payload),
                    });
                    self.net_dirty = true;
                }
            }
            Command::Execute { actor, flops, tag, account } => {
                let host = self.actor_hosts[actor.index()];
                self.cpu.advance(self.now);
                self.cpu.add(Task { actor, tag, account, host, remaining: flops, rate: 0.0 });
                self.cpu_dirty = true;
                self.touched_hosts.insert(host.index());
            }
            Command::Timer { actor, delay, tag } => {
                self.push_event(self.now + delay, Ev::Timer { actor, tag });
            }
            Command::PushState { actor, state } => {
                let host = self.actor_hosts[actor.index()].index();
                let now = self.now;
                if let Some(tr) = self.tracer.as_mut() {
                    tr.push_state(now, host, state);
                }
            }
            Command::PopState { actor } => {
                let host = self.actor_hosts[actor.index()].index();
                let now = self.now;
                if let Some(tr) = self.tracer.as_mut() {
                    tr.pop_state(now, host);
                }
            }
        }
    }

    /// Applies pending resource changes: recomputes shares, emits trace
    /// samples, reschedules the completion probes.
    fn flush(&mut self) {
        if self.cpu_dirty {
            self.cpu_dirty = false;
            self.cpu.advance(self.now);
            if self.tracer.is_none() {
                self.touched_hosts.clear();
            } else {
                let mut hosts: Vec<usize> = self.touched_hosts.drain().collect();
                hosts.sort_unstable();
                for h in hosts {
                    let hid = HostId::from_index(h);
                    let total = self.cpu.usage(hid);
                    let by_account = self.cpu.usage_by_account(hid);
                    if let Some(tr) = self.tracer.as_mut() {
                        tr.host_usage(self.now, h, total, &by_account);
                    }
                }
            }
            self.cpu_gen += 1;
            if let Some((_, t)) = self.cpu.next_completion() {
                let gen = self.cpu_gen;
                self.push_event(t, Ev::CpuCheck { gen });
            }
        }
        if self.net_dirty {
            self.net_dirty = false;
            self.net.advance(self.now);
            let changed = self.net.reshare();
            if self.tracer.is_some() && !changed.is_empty() {
                let by_account = self.net.usage_by_account();
                for l in changed {
                    let total = self.net.usage()[l];
                    if let Some(tr) = self.tracer.as_mut() {
                        tr.link_usage(self.now, l, total, &by_account);
                    }
                }
            }
            self.net_gen += 1;
            if let Some((_, t)) = self.net.next_completion() {
                let gen = self.net_gen;
                self.push_event(t.max(self.now), Ev::NetCheck { gen });
            }
        }
    }

    fn deliver(&mut self, from: ActorId, to: ActorId, tag: Tag, payload: Payload, size: f64, start: f64) {
        let now = self.now;
        if let Some(tr) = self.tracer.as_mut() {
            tr.message(
                start,
                now,
                self.actor_hosts[from.index()].index(),
                self.actor_hosts[to.index()].index(),
                size,
            );
        }
        // Sender learns first, receiver second (documented order).
        self.invoke(from, |a, ctx| a.on_send_done(tag, ctx));
        self.invoke(to, |a, ctx| a.on_message(from, payload, ctx));
    }

    /// Runs until the calendar drains. Returns the final simulated
    /// time.
    pub fn run(&mut self) -> f64 {
        self.run_until(f64::INFINITY)
    }

    /// Runs until the calendar drains or simulated time would exceed
    /// `deadline`. Returns the time reached.
    pub fn run_until(&mut self, deadline: f64) -> f64 {
        if self.tracer.is_none() {
            if let Some(cfg) = self.tracing_config.take() {
                self.tracer = Some(SimTracer::new(&self.platform, cfg, &self.accounts));
            }
        }
        if !self.started {
            self.started = true;
            for i in 0..self.actors.len() {
                self.invoke(ActorId(i as u32), |a, ctx| a.on_start(ctx));
            }
            self.flush();
        }
        while let Some(entry) = self.calendar.peek() {
            if entry.time > deadline {
                self.now = deadline;
                break;
            }
            let CalEntry { time, event, .. } = self.calendar.pop().expect("peeked");
            debug_assert!(time >= self.now - 1e-9, "time went backwards");
            self.now = self.now.max(time);
            self.events_processed += 1;
            match event {
                Ev::Timer { actor, tag } => {
                    self.invoke(actor, |a, ctx| a.on_timer(tag, ctx));
                }
                Ev::Deliver { from, to, tag, payload, size, start } => {
                    self.deliver(from, to, tag, payload, size, start);
                }
                Ev::NetCheck { gen } => {
                    if gen != self.net_gen {
                        continue; // stale prediction
                    }
                    self.net.advance(self.now);
                    let done = self.net.completed_at(self.now);
                    debug_assert!(!done.is_empty(), "live NetCheck with no completion");
                    for id in done {
                        let flow = self.net.remove(id).expect("listed id");
                        self.net_dirty = true;
                        let payload = flow.payload.expect("payload present until delivery");
                        self.deliver(flow.from, flow.to, flow.tag, payload, flow.size, flow.start);
                    }
                }
                Ev::HostPower { host, power } => {
                    self.cpu.advance(self.now);
                    self.cpu.set_power(host, power);
                    self.cpu_dirty = true;
                    self.touched_hosts.insert(host.index());
                    let now = self.now;
                    if let Some(tr) = self.tracer.as_mut() {
                        tr.host_power(now, host.index(), power);
                    }
                }
                Ev::LinkBandwidth { link, bandwidth } => {
                    self.net.advance(self.now);
                    self.net.set_capacity(link.index(), bandwidth);
                    self.net_dirty = true;
                    let now = self.now;
                    if let Some(tr) = self.tracer.as_mut() {
                        tr.link_bandwidth(now, link.index(), bandwidth);
                    }
                }
                Ev::CpuCheck { gen } => {
                    if gen != self.cpu_gen {
                        continue;
                    }
                    self.cpu.advance(self.now);
                    let done = self.cpu.completed_at(self.now);
                    debug_assert!(!done.is_empty(), "live CpuCheck with no completion");
                    for id in done {
                        let task = self.cpu.remove(id).expect("listed id");
                        self.cpu_dirty = true;
                        self.touched_hosts.insert(task.host.index());
                        self.invoke(task.actor, |a, ctx| a.on_compute_done(task.tag, ctx));
                    }
                }
            }
            self.flush();
        }
        self.now
    }

    /// Finalizes and returns the recorded trace (`None` when tracing
    /// was never enabled).
    pub fn into_trace(self) -> Option<Trace> {
        let end = self.now;
        self.tracer.map(|t| t.finish(end))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viva_platform::generators;
    use viva_trace::metric::names;

    /// Computes one task then stops.
    struct OneShot {
        flops: f64,
        done_at: std::rc::Rc<std::cell::Cell<f64>>,
    }
    impl Actor for OneShot {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.execute(self.flops, Tag(0));
        }
        fn on_compute_done(&mut self, _tag: Tag, ctx: &mut Ctx<'_>) {
            self.done_at.set(ctx.now());
        }
    }

    #[test]
    fn compute_takes_flops_over_power() {
        let p = generators::star(1, 100.0, 1000.0).unwrap();
        let h = p.hosts()[0].id();
        let done = std::rc::Rc::new(std::cell::Cell::new(0.0));
        let mut sim = Simulation::new(p);
        sim.spawn(h, Box::new(OneShot { flops: 250.0, done_at: done.clone() }));
        let end = sim.run();
        assert!((done.get() - 2.5).abs() < 1e-9);
        assert!((end - 2.5).abs() < 1e-9);
    }

    /// Sends one message, peer records arrival time.
    struct Sender {
        to: ActorId,
        size: f64,
        send_done: std::rc::Rc<std::cell::Cell<f64>>,
    }
    impl Actor for Sender {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.send(self.to, self.size, Box::new(123u32), Tag(7));
        }
        fn on_send_done(&mut self, tag: Tag, ctx: &mut Ctx<'_>) {
            assert_eq!(tag, Tag(7));
            self.send_done.set(ctx.now());
        }
    }
    #[derive(Default)]
    struct Receiver {
        got: std::rc::Rc<std::cell::Cell<f64>>,
    }
    impl Actor for Receiver {
        fn on_message(&mut self, _from: ActorId, payload: Payload, ctx: &mut Ctx<'_>) {
            assert_eq!(*payload.downcast::<u32>().unwrap(), 123);
            self.got.set(ctx.now());
        }
    }

    #[test]
    fn transfer_time_is_latency_plus_size_over_bottleneck() {
        // star: two hosts behind one switch; route = 2 links of
        // 1000 Mbit/s, 1e-5 s each. 8000 Mbit at 1000 Mbit/s = 8 s.
        let p = generators::star(2, 100.0, 1000.0).unwrap();
        let h0 = p.hosts()[0].id();
        let h1 = p.hosts()[1].id();
        let got = std::rc::Rc::new(std::cell::Cell::new(0.0));
        let sent = std::rc::Rc::new(std::cell::Cell::new(0.0));
        let mut sim = Simulation::new(p);
        let recv = sim.spawn(h1, Box::new(Receiver { got: got.clone() }));
        sim.spawn(
            h0,
            Box::new(Sender { to: recv, size: 8000.0, send_done: sent.clone() }),
        );
        sim.run();
        // The fluid model completes a flow when its volume has drained
        // AND its latency has elapsed: max(8 s, 2e-5 s) = 8 s.
        let expect = 8.0;
        assert!((got.get() - expect).abs() < 1e-6, "got {}", got.get());
        assert_eq!(got.get(), sent.get());
    }

    #[test]
    fn loopback_message_is_instant() {
        let p = generators::star(2, 100.0, 1000.0).unwrap();
        let h0 = p.hosts()[0].id();
        let got = std::rc::Rc::new(std::cell::Cell::new(-1.0));
        let sent = std::rc::Rc::new(std::cell::Cell::new(-1.0));
        let mut sim = Simulation::new(p);
        let recv = sim.spawn(h0, Box::new(Receiver { got: got.clone() }));
        sim.spawn(
            h0,
            Box::new(Sender { to: recv, size: 8000.0, send_done: sent.clone() }),
        );
        sim.run();
        assert_eq!(got.get(), 0.0);
        assert_eq!(sent.get(), 0.0);
    }

    /// Two concurrent senders to the same receiver host share its
    /// downlink fairly: each 4000 Mbit flow takes ~8 s instead of ~4.
    #[test]
    fn concurrent_flows_share_bottleneck() {
        let p = generators::star(3, 100.0, 1000.0).unwrap();
        let hosts: Vec<HostId> = p.hosts().iter().map(|h| h.id()).collect();
        let got = std::rc::Rc::new(std::cell::Cell::new(0.0));
        let s1 = std::rc::Rc::new(std::cell::Cell::new(0.0));
        let s2 = std::rc::Rc::new(std::cell::Cell::new(0.0));
        let mut sim = Simulation::new(p);
        let recv = sim.spawn(hosts[2], Box::new(Receiver { got: got.clone() }));
        sim.spawn(
            hosts[0],
            Box::new(Sender { to: recv, size: 4000.0, send_done: s1.clone() }),
        );
        sim.spawn(
            hosts[1],
            Box::new(Sender { to: recv, size: 4000.0, send_done: s2.clone() }),
        );
        let end = sim.run();
        assert!((end - 8.0).abs() < 1e-3, "end {end}");
        assert!((s1.get() - s2.get()).abs() < 1e-6);
    }

    /// Timers fire in order and at the right time.
    struct TimerActor {
        fired: std::rc::Rc<std::cell::RefCell<Vec<(u64, f64)>>>,
    }
    impl Actor for TimerActor {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(2.0, Tag(2));
            ctx.set_timer(1.0, Tag(1));
            ctx.set_timer(1.0, Tag(11)); // same-time: insertion order
        }
        fn on_timer(&mut self, tag: Tag, ctx: &mut Ctx<'_>) {
            self.fired.borrow_mut().push((tag.0, ctx.now()));
        }
    }

    #[test]
    fn timers_fire_in_deterministic_order() {
        let p = generators::star(1, 100.0, 1000.0).unwrap();
        let h = p.hosts()[0].id();
        let fired = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut sim = Simulation::new(p);
        sim.spawn(h, Box::new(TimerActor { fired: fired.clone() }));
        sim.run();
        assert_eq!(*fired.borrow(), vec![(1, 1.0), (11, 1.0), (2, 2.0)]);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let p = generators::star(1, 100.0, 1000.0).unwrap();
        let h = p.hosts()[0].id();
        let done = std::rc::Rc::new(std::cell::Cell::new(0.0));
        let mut sim = Simulation::new(p);
        sim.spawn(h, Box::new(OneShot { flops: 1000.0, done_at: done.clone() }));
        let t = sim.run_until(3.0);
        assert_eq!(t, 3.0);
        assert_eq!(done.get(), 0.0, "task must not have completed yet");
        let t = sim.run_until(f64::INFINITY);
        assert!((t - 10.0).abs() < 1e-9);
        assert!((done.get() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn tracing_records_compute_utilization() {
        let p = generators::star(1, 100.0, 1000.0).unwrap();
        let h = p.hosts()[0].id();
        let done = std::rc::Rc::new(std::cell::Cell::new(0.0));
        let mut sim = Simulation::new(p);
        sim.enable_tracing(TracingConfig::default());
        sim.spawn(h, Box::new(OneShot { flops: 250.0, done_at: done }));
        sim.run();
        let trace = sim.into_trace().expect("tracing enabled");
        let hc = trace.containers().by_name("star-1").unwrap().id();
        let used = trace.signal_by_name(hc, names::POWER_USED).unwrap();
        // Busy at 100 MFlop/s for 2.5 s.
        assert!((used.integrate(0.0, 3.0) - 250.0).abs() < 1e-6);
        assert_eq!(used.value_at(1.0), 100.0);
        assert_eq!(used.value_at(2.6), 0.0);
    }

    #[test]
    fn tracing_records_link_utilization_and_messages() {
        let p = generators::star(2, 100.0, 1000.0).unwrap();
        let h0 = p.hosts()[0].id();
        let h1 = p.hosts()[1].id();
        let got = std::rc::Rc::new(std::cell::Cell::new(0.0));
        let sent = std::rc::Rc::new(std::cell::Cell::new(0.0));
        let mut sim = Simulation::new(p);
        sim.enable_tracing(TracingConfig::default());
        let recv = sim.spawn(h1, Box::new(Receiver { got }));
        sim.spawn(h0, Box::new(Sender { to: recv, size: 8000.0, send_done: sent }));
        sim.run();
        let trace = sim.into_trace().unwrap();
        let l = trace.containers().by_name("star-1-up").unwrap().id();
        let used = trace.signal_by_name(l, names::BANDWIDTH_USED).unwrap();
        // The flow drove the uplink at 1000 Mbit/s for ~8 s.
        let total = used.integrate(0.0, trace.end());
        assert!((total - 8000.0).abs() < 1.0, "total {total}");
        assert_eq!(trace.links().len(), 1);
        assert_eq!(trace.links()[0].size, 8000.0);
    }

    #[test]
    fn host_power_change_slows_running_task() {
        // 100 MFlop/s host, 200 MFlop task; power halves at t = 1.
        // Work done: 100 in [0,1], then 50/s → done at 1 + 100/50 = 3.
        let p = generators::star(1, 100.0, 1000.0).unwrap();
        let h = p.hosts()[0].id();
        let done = std::rc::Rc::new(std::cell::Cell::new(0.0));
        let mut sim = Simulation::new(p);
        sim.enable_tracing(TracingConfig::default());
        sim.spawn(h, Box::new(OneShot { flops: 200.0, done_at: done.clone() }));
        sim.schedule_host_power(1.0, h, 50.0);
        sim.run();
        assert!((done.get() - 3.0).abs() < 1e-9, "done at {}", done.get());
        // The capacity change landed in the trace (Fig. 1 style).
        let trace = sim.into_trace().unwrap();
        let hc = trace.containers().by_name("star-1").unwrap().id();
        let power = trace.signal_by_name(hc, names::POWER).unwrap();
        assert_eq!(power.value_at(0.5), 100.0);
        assert_eq!(power.value_at(2.0), 50.0);
    }

    #[test]
    fn link_bandwidth_change_slows_flow() {
        // 8000 Mbit over a 2-link route at 1000 Mbit/s; at t = 4 the
        // uplink degrades to 250. Transferred by then: 4000; the rest
        // takes 4000/250 = 16 s → total 20 s.
        let p = generators::star(2, 100.0, 1000.0).unwrap();
        let h0 = p.hosts()[0].id();
        let h1 = p.hosts()[1].id();
        let uplink = p.link_by_name("star-1-up").unwrap().id();
        let got = std::rc::Rc::new(std::cell::Cell::new(0.0));
        let sent = std::rc::Rc::new(std::cell::Cell::new(0.0));
        let mut sim = Simulation::new(p);
        let recv = sim.spawn(h1, Box::new(Receiver { got: got.clone() }));
        sim.spawn(h0, Box::new(Sender { to: recv, size: 8000.0, send_done: sent }));
        sim.schedule_link_bandwidth(4.0, uplink, 250.0);
        sim.run();
        assert!((got.get() - 20.0).abs() < 1e-6, "got {}", got.get());
    }

    #[test]
    #[should_panic(expected = "invalid power")]
    fn schedule_host_power_rejects_nan() {
        let p = generators::star(1, 100.0, 1000.0).unwrap();
        let h = p.hosts()[0].id();
        let mut sim = Simulation::new(p);
        sim.schedule_host_power(1.0, h, f64::NAN);
    }

    #[test]
    fn deterministic_repeat_runs() {
        fn run_once() -> (f64, u64) {
            let p = generators::star(3, 100.0, 1000.0).unwrap();
            let hosts: Vec<HostId> = p.hosts().iter().map(|h| h.id()).collect();
            let got = std::rc::Rc::new(std::cell::Cell::new(0.0));
            let s = std::rc::Rc::new(std::cell::Cell::new(0.0));
            let mut sim = Simulation::new(p);
            let recv = sim.spawn(hosts[2], Box::new(Receiver { got }));
            sim.spawn(
                hosts[0],
                Box::new(Sender { to: recv, size: 4000.0, send_done: s.clone() }),
            );
            sim.spawn(
                hosts[1],
                Box::new(Sender { to: recv, size: 2000.0, send_done: s }),
            );
            let end = sim.run();
            (end, sim.events_processed())
        }
        assert_eq!(run_once(), run_once());
    }
}
