//! # viva-workloads — the paper's two case-study applications
//!
//! Runnable reproductions of the workloads whose traces the paper
//! analyzes in §5:
//!
//! * [`dt`] — the NAS **DT (Data Traffic)** benchmark as a parametric
//!   task graph (White-Hole / Black-Hole / Shuffle) of communicating
//!   actors, with the two process deployments of §5.1 (sequential vs
//!   locality-aware) on the two-cluster platform;
//! * [`master_worker`] — two non-cooperative **master-worker**
//!   applications competing on a Grid'5000-scale platform, using the
//!   **bandwidth-centric** allocation strategy with per-worker prefetch
//!   buffers (§5.2), plus a FIFO baseline for the ablation the paper
//!   sketches ("a simple FIFO mechanism would not exhibit such
//!   locality").
//!
//! Both entry points return the recorded [`viva_trace::Trace`] ready
//! for a `viva` analysis session, plus the scalar outcomes (makespan,
//! tasks shipped) the figure harnesses report.
//!
//! ## Example
//!
//! ```
//! use viva_platform::generators;
//! use viva_workloads::{run_dt, Deployment, DtConfig};
//!
//! let platform = generators::two_clusters(&Default::default())?;
//! let cfg = DtConfig { rounds: 2, ..Default::default() };
//! let run = run_dt(platform, &cfg, Deployment::Sequential, None);
//! assert!(run.makespan > 0.0);
//! # Ok::<(), viva_platform::PlatformError>(())
//! ```

pub mod dt;
pub mod master_worker;

pub use dt::{deploy, run_dt, Deployment, DtClass, DtConfig, DtGraph, DtRun};
pub use master_worker::{
    run_master_worker, run_master_worker_with_faults, AppSpec, FtConfig, MwConfig, MwRun,
    Scheduler,
};
