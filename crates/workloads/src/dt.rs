//! The NAS DT (Data Traffic) benchmark as communicating actors.
//!
//! DT moves data through a feed-forward task graph. The paper uses the
//! **White-Hole** (WH) graph of class A: one source fans out through a
//! layer of forwarders to a layer of sinks (21 processes), stressing
//! the network. We model the graph parametrically:
//!
//! * `WhiteHole`: stage widths `[1, f, f²]` — expanding;
//! * `BlackHole`: stage widths `[f², f, 1]` — contracting;
//! * `Shuffle`:   stage widths `[f, f, f]` — permuting.
//!
//! Every stage-`i` node forwards each received (or generated) chunk to
//! all of its stage-`i+1` successors after a small per-chunk
//! computation. Class A uses `f = 4` (21 processes for WH/BH), matching
//! the paper's 22-host allocation with one idle host.
//!
//! The experiment of Figs. 6/7 is the *deployment* choice:
//! [`Deployment::Sequential`] allocates processes to hosts in hostfile
//! order (source + forwarders + first sinks on cluster 1, remaining
//! sinks on cluster 2 — most forwarder→sink traffic crosses the
//! inter-cluster links), while [`Deployment::Locality`] co-locates each
//! forwarder with its sinks (only source→forwarder chunks cross).

use std::collections::VecDeque;

use viva_platform::{HostId, Platform};
use viva_simflow::{Actor, ActorId, Ctx, Payload, Simulation, Tag, TracingConfig};
use viva_trace::Trace;

/// DT problem class: sets the fan factor and per-chunk volumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DtClass {
    /// Tiny smoke-test class (f = 2, 7 processes for WH).
    S,
    /// Small class (f = 3, 13 processes).
    W,
    /// The paper's class (f = 4, 21 processes).
    A,
    /// Double fan (f = 5, 31 processes).
    B,
}

impl DtClass {
    /// Fan factor `f`.
    pub fn fan(self) -> usize {
        match self {
            DtClass::S => 2,
            DtClass::W => 3,
            DtClass::A => 4,
            DtClass::B => 5,
        }
    }
}

/// The DT graph variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DtGraph {
    /// One source, `f` forwarders, `f²` sinks.
    WhiteHole,
    /// `f²` sources, `f` forwarders, one sink.
    BlackHole,
    /// `f` sources, `f` forwarders, `f` sinks (ring shift).
    Shuffle,
}

/// Process-to-host deployment policy (the §5.1 experiment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Deployment {
    /// Hostfile order: "processes are allocated sequentially, starting
    /// on the hosts of Adonis cluster".
    Sequential,
    /// Locality-aware: each forwarder is placed in the cluster of its
    /// sinks, "reducing the communication path and avoiding the
    /// interconnection between the two clusters".
    Locality,
}

/// Full DT workload configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DtConfig {
    /// Problem class (fan factor).
    pub class: DtClass,
    /// Graph variant.
    pub graph: DtGraph,
    /// Chunks generated per source.
    pub rounds: usize,
    /// Chunk size, Mbit.
    pub chunk_mbit: f64,
    /// Per-chunk computation at forwarders, MFlop.
    pub forward_flops: f64,
    /// Per-chunk computation at sinks, MFlop.
    pub sink_flops: f64,
}

impl Default for DtConfig {
    fn default() -> Self {
        DtConfig {
            class: DtClass::A,
            graph: DtGraph::WhiteHole,
            rounds: 30,
            chunk_mbit: 40.0,
            forward_flops: 20.0,
            sink_flops: 50.0,
        }
    }
}

impl DtConfig {
    /// Stage widths of the task graph, source stage first.
    pub fn stages(&self) -> [usize; 3] {
        let f = self.class.fan();
        match self.graph {
            DtGraph::WhiteHole => [1, f, f * f],
            DtGraph::BlackHole => [f * f, f, 1],
            DtGraph::Shuffle => [f, f, f],
        }
    }

    /// Total number of processes.
    pub fn processes(&self) -> usize {
        self.stages().iter().sum()
    }

    /// Successors of node `idx` (0-based within its stage) of `stage`
    /// (0 or 1; sinks have none).
    pub fn successors(&self, stage: usize, idx: usize) -> Vec<usize> {
        let widths = self.stages();
        if stage >= 2 {
            return Vec::new();
        }
        let (from, to) = (widths[stage], widths[stage + 1]);
        // Global process index of the first node of stage `stage + 1`.
        let base: usize = widths[..=stage].iter().sum();
        if to >= from {
            // Expanding (or equal): node j feeds children j·r..(j+1)·r,
            // where r = to/from; the Shuffle graph (r = 1) shifts by
            // one to force cross traffic.
            let r = to / from;
            let shift = usize::from(self.graph == DtGraph::Shuffle);
            (0..r.max(1))
                .map(|k| base + ((idx + shift) * r.max(1) + k) % to)
                .collect()
        } else {
            // Contracting: node j feeds parent j/(from/to).
            let r = from / to;
            vec![base + idx / r]
        }
    }

    /// Chunks each sink-stage process will receive over the whole run.
    pub fn chunks_at_sinks(&self) -> usize {
        // Every chunk emitted by a stage-1 node reaches each of its
        // successors once; by symmetry each sink receives the same
        // count: rounds · (stage0 emissions reaching it).
        let [w0, w1, _w2] = self.stages();
        match self.graph {
            DtGraph::WhiteHole => self.rounds, // 1 source → every sink sees each round once
            DtGraph::BlackHole => self.rounds * w0, // all source chunks funnel into the sink
            DtGraph::Shuffle => self.rounds * (w0 / w1),
        }
    }
}

/// Maps the `n` DT processes (stage-major order) onto the two-cluster
/// platform's hosts.
///
/// # Panics
///
/// Panics when the platform has fewer hosts than processes, or (for
/// [`Deployment::Locality`]) fewer than two clusters.
pub fn deploy(platform: &Platform, cfg: &DtConfig, deployment: Deployment) -> Vec<HostId> {
    let n = cfg.processes();
    let hosts: Vec<HostId> = platform.hosts().iter().map(|h| h.id()).collect();
    assert!(hosts.len() >= n, "need {n} hosts, platform has {}", hosts.len());
    match deployment {
        Deployment::Sequential => hosts[..n].to_vec(),
        Deployment::Locality => {
            assert!(platform.clusters().len() >= 2, "locality needs two clusters");
            let c0: Vec<HostId> = platform.clusters()[0].hosts().to_vec();
            let c1: Vec<HostId> = platform.clusters()[1].hosts().to_vec();
            let [w0, w1, w2] = cfg.stages();
            let mut assignment = vec![None; n];
            let mut take0 = c0.into_iter();
            let mut take1 = c1.into_iter();
            // Halve the middle stage across the clusters; co-locate
            // each stage-1 node with its successors, and stage-0 nodes
            // with *their* successors' cluster.
            let half = w1 / 2;
            let cluster_of_mid = |j: usize| usize::from(j >= half);
            #[allow(clippy::needless_range_loop)] // j names the stage-1 node, not a slot
            for j in 0..w1 {
                let take = if cluster_of_mid(j) == 0 { &mut take0 } else { &mut take1 };
                assignment[w0 + j] = Some(take.next().expect("cluster capacity"));
                for succ in cfg.successors(1, j) {
                    if assignment[succ].is_none() {
                        let take =
                            if cluster_of_mid(j) == 0 { &mut take0 } else { &mut take1 };
                        assignment[succ] = Some(take.next().expect("cluster capacity"));
                    }
                }
            }
            // Sources follow the cluster of their first successor.
            #[allow(clippy::needless_range_loop)] // j names the stage-0 node
            for j in 0..w0 {
                if assignment[j].is_none() {
                    let succ = cfg.successors(0, j)[0];
                    let mid_idx = succ - w0;
                    let take = if cluster_of_mid(mid_idx) == 0 {
                        &mut take0
                    } else {
                        &mut take1
                    };
                    assignment[j] = Some(take.next().expect("cluster capacity"));
                }
            }
            // Anything left (possible for exotic stage shapes).
            for slot in assignment.iter_mut() {
                if slot.is_none() {
                    *slot = Some(
                        take0
                            .next()
                            .or_else(|| take1.next())
                            .expect("cluster capacity"),
                    );
                }
            }
            let _ = w2;
            assignment.into_iter().map(|s| s.expect("filled")).collect()
        }
    }
}

/// A chunk in flight (the payload carries nothing the actors need).
struct Chunk;

/// Stage-0 process: emits `rounds` chunks to every successor, one
/// in-flight send at a time (store-and-forward pacing).
struct Source {
    targets: Vec<ActorId>,
    queue: VecDeque<ActorId>,
    rounds_left: usize,
    chunk_mbit: f64,
    sending: bool,
}

impl Source {
    fn refill(&mut self) {
        if self.rounds_left > 0 {
            self.rounds_left -= 1;
            self.queue.extend(self.targets.iter().copied());
        }
    }

    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        if self.sending {
            return;
        }
        if self.queue.is_empty() {
            self.refill();
        }
        if let Some(to) = self.queue.pop_front() {
            self.sending = true;
            ctx.send(to, self.chunk_mbit, Box::new(Chunk), Tag(0));
        }
    }
}

impl Actor for Source {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.pump(ctx);
    }

    fn on_send_done(&mut self, _tag: Tag, ctx: &mut Ctx<'_>) {
        self.sending = false;
        self.pump(ctx);
    }
}

/// Stage-1 process: computes on each received chunk, then forwards a
/// copy to every successor.
struct Forwarder {
    targets: Vec<ActorId>,
    chunk_mbit: f64,
    flops: f64,
    outbox: VecDeque<ActorId>,
    sending: bool,
}

impl Forwarder {
    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        if self.sending {
            return;
        }
        if let Some(to) = self.outbox.pop_front() {
            self.sending = true;
            ctx.send(to, self.chunk_mbit, Box::new(Chunk), Tag(0));
        }
    }
}

impl Actor for Forwarder {
    fn on_message(&mut self, _from: ActorId, _payload: Payload, ctx: &mut Ctx<'_>) {
        ctx.execute(self.flops, Tag(0));
    }

    fn on_compute_done(&mut self, _tag: Tag, ctx: &mut Ctx<'_>) {
        self.outbox.extend(self.targets.iter().copied());
        self.pump(ctx);
    }

    fn on_send_done(&mut self, _tag: Tag, ctx: &mut Ctx<'_>) {
        self.sending = false;
        self.pump(ctx);
    }
}

/// Stage-2 process: verifies (computes on) each received chunk.
struct Sink {
    flops: f64,
}

impl Actor for Sink {
    fn on_message(&mut self, _from: ActorId, _payload: Payload, ctx: &mut Ctx<'_>) {
        ctx.execute(self.flops, Tag(0));
    }
}

/// Outcome of a DT run.
#[derive(Debug)]
pub struct DtRun {
    /// Benchmark makespan, seconds.
    pub makespan: f64,
    /// Recorded trace (when tracing was requested).
    pub trace: Option<Trace>,
    /// The process→host assignment used.
    pub assignment: Vec<HostId>,
}

/// Runs DT on `platform` under the given deployment. Pass
/// `Some(TracingConfig)` to record the trace the topology views
/// consume.
///
/// # Panics
///
/// Panics when the platform is too small for the configured class (see
/// [`deploy`]).
pub fn run_dt(
    platform: Platform,
    cfg: &DtConfig,
    deployment: Deployment,
    tracing: Option<TracingConfig>,
) -> DtRun {
    let assignment = deploy(&platform, cfg, deployment);
    let mut sim = Simulation::new(platform);
    if let Some(t) = tracing {
        sim.enable_tracing(t);
    }
    let [w0, w1, w2] = cfg.stages();
    // Actor ids are spawn indices, so a process can reference its
    // successors before they are spawned (stage-major numbering).
    let actor_id = ActorId::from_index;
    let mut spawned = 0usize;
    for s in 0..w0 {
        let targets: Vec<ActorId> = cfg.successors(0, s).into_iter().map(actor_id).collect();
        sim.spawn(
            assignment[spawned],
            Box::new(Source {
                targets,
                queue: VecDeque::new(),
                rounds_left: cfg.rounds,
                chunk_mbit: cfg.chunk_mbit,
                sending: false,
            }),
        );
        spawned += 1;
    }
    for f in 0..w1 {
        let targets: Vec<ActorId> = cfg.successors(1, f).into_iter().map(actor_id).collect();
        sim.spawn(
            assignment[spawned],
            Box::new(Forwarder {
                targets,
                chunk_mbit: cfg.chunk_mbit,
                flops: cfg.forward_flops,
                outbox: VecDeque::new(),
                sending: false,
            }),
        );
        spawned += 1;
    }
    for _ in 0..w2 {
        sim.spawn(assignment[spawned], Box::new(Sink { flops: cfg.sink_flops }));
        spawned += 1;
    }
    let makespan = sim.run();
    DtRun { makespan, trace: sim.into_trace(), assignment }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viva_platform::generators::{self, TwoClustersConfig};
    use viva_trace::metric::names;

    #[test]
    fn class_a_white_hole_has_21_processes() {
        let cfg = DtConfig::default();
        assert_eq!(cfg.stages(), [1, 4, 16]);
        assert_eq!(cfg.processes(), 21);
        let bh = DtConfig { graph: DtGraph::BlackHole, ..cfg.clone() };
        assert_eq!(bh.stages(), [16, 4, 1]);
        let sh = DtConfig { graph: DtGraph::Shuffle, ..cfg };
        assert_eq!(sh.stages(), [4, 4, 4]);
    }

    #[test]
    fn white_hole_successors_fan_out() {
        let cfg = DtConfig::default();
        assert_eq!(cfg.successors(0, 0), vec![1, 2, 3, 4]);
        assert_eq!(cfg.successors(1, 0), vec![5, 6, 7, 8]);
        assert_eq!(cfg.successors(1, 3), vec![17, 18, 19, 20]);
        assert!(cfg.successors(2, 0).is_empty());
    }

    #[test]
    fn black_hole_successors_funnel() {
        let cfg = DtConfig { graph: DtGraph::BlackHole, ..Default::default() };
        // 16 sources (0..16), 4 forwarders (16..20), 1 sink (20).
        assert_eq!(cfg.successors(0, 0), vec![16]);
        assert_eq!(cfg.successors(0, 5), vec![17]);
        assert_eq!(cfg.successors(0, 15), vec![19]);
        assert_eq!(cfg.successors(1, 2), vec![20]);
    }

    #[test]
    fn shuffle_successors_shift() {
        let cfg = DtConfig { graph: DtGraph::Shuffle, ..Default::default() };
        // 4 sources, 4 forwarders (4..8), 4 sinks (8..12).
        assert_eq!(cfg.successors(0, 0), vec![5]);
        assert_eq!(cfg.successors(0, 3), vec![4]);
        assert_eq!(cfg.successors(1, 0), vec![9]);
    }

    #[test]
    fn sequential_deploy_uses_hostfile_order() {
        let p = generators::two_clusters(&TwoClustersConfig::default()).unwrap();
        let cfg = DtConfig::default();
        let a = deploy(&p, &cfg, Deployment::Sequential);
        assert_eq!(a.len(), 21);
        for (i, h) in a.iter().enumerate() {
            assert_eq!(h.index(), i);
        }
        // Source + 4 forwarders + 6 sinks on adonis; 10 sinks on
        // griffon: most forwarder→sink chunks cross the backbone.
        let adonis = p.clusters()[0].id();
        let cross = (0..4)
            .flat_map(|f| cfg.successors(1, f))
            .filter(|&s| p.host(a[s]).cluster() != adonis)
            .count();
        assert_eq!(cross, 10);
    }

    #[test]
    fn locality_deploy_colocates_forwarders_with_sinks() {
        let p = generators::two_clusters(&TwoClustersConfig::default()).unwrap();
        let cfg = DtConfig::default();
        let a = deploy(&p, &cfg, Deployment::Locality);
        assert_eq!(a.len(), 21);
        // Every forwarder shares a cluster with all of its sinks.
        for f in 0..4 {
            let fc = p.host(a[1 + f]).cluster();
            for s in cfg.successors(1, f) {
                assert_eq!(p.host(a[s]).cluster(), fc, "forwarder {f} sink {s}");
            }
        }
        // No host is used twice.
        let mut seen = a.clone();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), a.len());
    }

    #[test]
    fn small_run_conserves_work() {
        let p = generators::two_clusters(&TwoClustersConfig::default()).unwrap();
        let cfg = DtConfig {
            class: DtClass::S,
            rounds: 3,
            chunk_mbit: 8.0,
            forward_flops: 10.0,
            sink_flops: 20.0,
            ..Default::default()
        };
        let run = run_dt(p, &cfg, Deployment::Sequential, Some(TracingConfig::default()));
        assert!(run.makespan > 0.0);
        let trace = run.trace.expect("tracing enabled");
        // Total computed flops = forwarders (2·3 chunks · 10) + sinks
        // (4·3 chunks · 20) = 60 + 240.
        let used = trace.metric_id(names::POWER_USED).unwrap();
        let total: f64 = trace
            .containers()
            .of_kind(viva_trace::ContainerKind::Host)
            .into_iter()
            .map(|h| trace.integrate(h, used, 0.0, trace.end()))
            .sum();
        assert!((total - 300.0).abs() < 1e-6, "total {total}");
    }

    #[test]
    fn locality_beats_sequential_and_unloads_backbone() {
        let p = generators::two_clusters(&TwoClustersConfig::default()).unwrap();
        let cfg = DtConfig { rounds: 10, ..Default::default() };
        let seq = run_dt(
            p.clone(),
            &cfg,
            Deployment::Sequential,
            Some(TracingConfig { record_messages: false, record_accounts: false }),
        );
        let loc = run_dt(
            p,
            &cfg,
            Deployment::Locality,
            Some(TracingConfig { record_messages: false, record_accounts: false }),
        );
        // Fig. 7: ~20 % improvement in the paper; we accept any clear win.
        let improvement = 1.0 - loc.makespan / seq.makespan;
        assert!(
            improvement > 0.05,
            "locality should win clearly: seq {} loc {} ({improvement:.3})",
            seq.makespan,
            loc.makespan
        );
        // Fig. 6 vs 7: backbone traffic drops by a large factor.
        let bb_traffic = |run: &DtRun| {
            let t = run.trace.as_ref().unwrap();
            let m = t.metric_id(names::BANDWIDTH_USED).unwrap();
            ["adonis-bb", "griffon-bb"]
                .iter()
                .map(|n| {
                    let c = t.containers().by_name(n).unwrap().id();
                    t.integrate(c, m, 0.0, t.end())
                })
                .sum::<f64>()
        };
        let seq_bb = bb_traffic(&seq);
        let loc_bb = bb_traffic(&loc);
        assert!(
            loc_bb < seq_bb / 2.0,
            "backbone Mbit: sequential {seq_bb}, locality {loc_bb}"
        );
    }
}
