//! Two non-cooperative master-worker applications on a grid (§5.2).
//!
//! Each application has one **master** that distributes independent
//! tasks and one **worker per host** (both applications run a worker on
//! *every* host, so they compete for CPU — the paper's third expected
//! phenomenon). The master implements the **bandwidth-centric**
//! strategy of Beaumont et al.: "every time a master communicates a
//! task to a worker, it evaluates the worker's effective bandwidth and
//! uses this value to prioritize workers' requests: when several
//! workers request some work, the one with the largest bandwidth is
//! served in priority". Workers keep a **prefetch buffer of three
//! tasks** "to minimize \[their\] idleness".
//!
//! A FIFO scheduler is provided as the ablation the paper sketches:
//! "a simple FIFO mechanism would not exhibit such locality and would
//! exhibit an (inefficient) uniform resource usage".

use std::cell::Cell;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};
use std::rc::Rc;

use viva_platform::{HostId, Platform, RouteTable};
use viva_simflow::{
    AccountId, Actor, ActorId, Ctx, FaultError, FaultPlan, Heartbeat, Payload, SendFailure,
    Simulation, Tag, TracingConfig,
};
use viva_trace::Trace;

/// Master scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheduler {
    /// Serve the pending request with the largest effective bandwidth
    /// (the paper's strategy).
    BandwidthCentric,
    /// Serve requests in arrival order (the ablation baseline).
    Fifo,
}

/// Fault-tolerance knobs of a master-worker application.
///
/// When set on [`MwConfig::fault_tolerance`], workers heartbeat the
/// master and acknowledge each completed task; the master detects
/// silent workers by timeout, writes them off and **requeues** their
/// in-flight tasks so the run completes despite crashes. Task delivery
/// is *at least once*: a task whose worker is presumed dead may be
/// recomputed elsewhere even when the original worker actually finished
/// it.
///
/// The master's own host must stay up: the protocol recovers from
/// worker failures, not master failures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FtConfig {
    /// A worker silent for longer than this is presumed dead and its
    /// unacknowledged tasks are requeued. Must exceed
    /// `heartbeat_interval` comfortably.
    pub worker_timeout: f64,
    /// How often each worker heartbeats the master, seconds.
    pub heartbeat_interval: f64,
    /// Timeout on task shipments: a transfer not delivered within this
    /// many seconds is abandoned and the task requeued. Must exceed the
    /// expected transfer time, or every shipment is written off.
    pub send_timeout: f64,
}

impl Default for FtConfig {
    fn default() -> Self {
        FtConfig {
            worker_timeout: 30.0,
            heartbeat_interval: 5.0,
            send_timeout: 60.0,
        }
    }
}

/// Configuration of one master-worker application.
#[derive(Debug, Clone, PartialEq)]
pub struct MwConfig {
    /// Total number of tasks the master distributes.
    pub tasks: usize,
    /// Input data shipped per task, Mbit.
    pub task_size_mbit: f64,
    /// Computation per task, MFlop.
    pub task_flops: f64,
    /// Worker prefetch buffer size (the paper uses 3).
    pub prefetch: usize,
    /// Scheduling policy.
    pub scheduler: Scheduler,
    /// Worker-failure handling; `None` (the default) runs the original
    /// protocol with no heartbeats, acknowledgments or requeues.
    pub fault_tolerance: Option<FtConfig>,
}

impl Default for MwConfig {
    fn default() -> Self {
        MwConfig {
            tasks: 4000,
            task_size_mbit: 10.0,
            task_flops: 2000.0,
            prefetch: 3,
            scheduler: Scheduler::BandwidthCentric,
            fault_tolerance: None,
        }
    }
}

impl MwConfig {
    /// The paper's first application: CPU bound.
    pub fn cpu_bound() -> MwConfig {
        MwConfig::default()
    }

    /// The paper's second application: "a slightly higher communication
    /// to computation ratio".
    pub fn network_bound() -> MwConfig {
        MwConfig {
            task_size_mbit: 40.0,
            task_flops: 800.0,
            ..MwConfig::default()
        }
    }
}

/// One application to run: a name (becomes the trace account), the
/// host of its master, and its workload.
#[derive(Debug, Clone, PartialEq)]
pub struct AppSpec {
    /// Application name (account label in the trace, e.g. `"app1"`).
    pub name: String,
    /// Host running the master.
    pub master: HostId,
    /// Workload parameters.
    pub config: MwConfig,
}

/// Messages exchanged between master and workers.
enum Msg {
    /// Worker asks for one task.
    Request,
    /// Master ships one task's input data.
    Task,
    /// Master has no tasks left.
    Stop,
    /// Worker acknowledges one completed task (fault-tolerant mode).
    Done,
    /// Worker liveness beacon (fault-tolerant mode).
    Heartbeat,
}

/// A pending worker request with its priority.
#[derive(Debug, PartialEq)]
struct PendingRequest {
    bandwidth: f64,
    seq: u64,
    worker: ActorId,
}

impl Eq for PendingRequest {}

impl Ord for PendingRequest {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap by bandwidth; FIFO (low seq first) among equals.
        self.bandwidth
            .total_cmp(&other.bandwidth)
            .then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for PendingRequest {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Tag used by the master's periodic dead-worker sweep timer.
const SWEEP: Tag = Tag(9);
/// Tag used by the workers' heartbeat timer.
const BEAT: Tag = Tag(3);
/// Tag of a worker timer that retransmits a lost `Done` acknowledgment.
const RETRY_DONE: Tag = Tag(6);
/// Tag of a worker timer that retransmits a lost `Request`.
const RETRY_REQ: Tag = Tag(7);

struct Master {
    account: AccountId,
    config: MwConfig,
    /// Effective bandwidth per worker actor (indexed by actor id).
    bandwidth_of: std::collections::HashMap<ActorId, f64>,
    by_bandwidth: BinaryHeap<PendingRequest>,
    fifo: VecDeque<ActorId>,
    tasks_left: usize,
    seq: u64,
    sending: bool,
    // --- fault tolerance (all inert when `config.fault_tolerance` is
    // `None`: `dead` stays empty, `hb` is `None`, no timers fire) ---
    /// Shipments to each worker not yet acknowledged with `Done`.
    outstanding: HashMap<ActorId, usize>,
    /// Workers presumed dead; skipped by `pop`, revived by any message.
    dead: HashSet<ActorId>,
    /// Last-seen bookkeeping behind the timeout detector.
    hb: Option<Heartbeat>,
    /// Worker targeted by the in-flight shipment (one send at a time).
    in_flight_to: Option<ActorId>,
    /// Tasks acknowledged so far (fault-tolerant mode only).
    completed: usize,
    /// Whether the final Stop broadcast went out.
    stops_sent: bool,
    /// Shared counter of shipments, read by the harness after the run.
    shipped: Rc<Cell<usize>>,
}

impl Master {
    fn pop(&mut self) -> Option<ActorId> {
        loop {
            let worker = match self.config.scheduler {
                Scheduler::BandwidthCentric => self.by_bandwidth.pop().map(|r| r.worker),
                Scheduler::Fifo => self.fifo.pop_front(),
            }?;
            // Requests queued by a since-deceased worker are void.
            if !self.dead.contains(&worker) {
                return Some(worker);
            }
        }
    }

    fn serve(&mut self, ctx: &mut Ctx<'_>) {
        if self.sending || self.tasks_left == 0 {
            return;
        }
        if let Some(worker) = self.pop() {
            self.sending = true;
            self.tasks_left -= 1;
            self.shipped.set(self.shipped.get() + 1);
            match self.config.fault_tolerance {
                Some(ft) => {
                    self.in_flight_to = Some(worker);
                    *self.outstanding.entry(worker).or_insert(0) += 1;
                    ctx.send_with_timeout_as(
                        worker,
                        self.config.task_size_mbit,
                        Box::new(Msg::Task),
                        Tag(0),
                        ft.send_timeout,
                        Some(self.account),
                    );
                }
                None => ctx.send_as(
                    worker,
                    self.config.task_size_mbit,
                    Box::new(Msg::Task),
                    Tag(0),
                    Some(self.account),
                ),
            }
        }
    }

    /// Whether every task is finished: acknowledged in fault-tolerant
    /// mode, merely shipped otherwise (without acknowledgments the
    /// master cannot tell more).
    fn all_done(&self) -> bool {
        match self.config.fault_tolerance {
            Some(_) => self.completed >= self.config.tasks,
            None => self.tasks_left == 0,
        }
    }

    fn finish_if_done(&mut self, ctx: &mut Ctx<'_>) {
        if !self.all_done() {
            return;
        }
        if self.config.fault_tolerance.is_some() {
            if !self.stops_sent {
                self.stops_sent = true;
                // Stop *every* worker, not just queued requesters: a
                // worker whose heartbeats were merely lost in transit
                // would otherwise beat forever. Dead hosts drop the
                // message harmlessly.
                let mut workers: Vec<ActorId> = self.bandwidth_of.keys().copied().collect();
                workers.sort_unstable();
                for worker in workers {
                    ctx.send(worker, 0.0, Box::new(Msg::Stop), Tag(1));
                }
            }
        } else {
            while let Some(worker) = self.pop() {
                ctx.send(worker, 0.0, Box::new(Msg::Stop), Tag(1));
            }
        }
    }

    /// Enters `worker` into both scheduling queues.
    fn enqueue_request(&mut self, worker: ActorId) {
        let bandwidth = self.bandwidth_of.get(&worker).copied().unwrap_or(0.0);
        self.seq += 1;
        self.by_bandwidth.push(PendingRequest { bandwidth, seq: self.seq, worker });
        self.fifo.push_back(worker);
    }

    /// Writes a worker off: its unacknowledged tasks go back in the
    /// queue and it receives no further work until it speaks again.
    fn mark_dead(&mut self, worker: ActorId) {
        if self.dead.insert(worker) {
            if let Some(hb) = self.hb.as_mut() {
                hb.forget(worker);
            }
            let lost = self.outstanding.insert(worker, 0).unwrap_or(0);
            self.tasks_left += lost;
        }
    }
}

impl Actor for Master {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(ft) = self.config.fault_tolerance {
            let hb = self.hb.as_mut().expect("fault-tolerant master has a heartbeat");
            for &worker in self.bandwidth_of.keys() {
                hb.observe(worker, 0.0);
            }
            ctx.set_timer(ft.worker_timeout * 0.5, SWEEP);
        }
    }

    fn on_message(&mut self, from: ActorId, payload: Payload, ctx: &mut Ctx<'_>) {
        let mut revived = false;
        if let Some(hb) = self.hb.as_mut() {
            // Any message proves the worker alive (and revives one the
            // sweep wrote off on lost heartbeats).
            hb.observe(from, ctx.now());
            revived = self.dead.remove(&from);
        }
        match *payload.downcast::<Msg>().expect("protocol message") {
            Msg::Request => {
                if self.all_done() {
                    ctx.send(from, 0.0, Box::new(Msg::Stop), Tag(1));
                    return;
                }
                self.enqueue_request(from);
                self.serve(ctx);
            }
            Msg::Done => {
                // Count the acknowledgment only if the shipment was not
                // already written off and requeued — at-least-once
                // delivery must not double-count a task.
                let n = self.outstanding.entry(from).or_insert(0);
                if *n > 0 {
                    *n -= 1;
                    self.completed += 1;
                    self.finish_if_done(ctx);
                }
            }
            Msg::Heartbeat => {
                if self.all_done() {
                    // The Stop broadcast can itself be lost to message
                    // faults; answer stray heartbeats with another Stop
                    // so every surviving worker eventually winds down.
                    ctx.send(from, 0.0, Box::new(Msg::Stop), Tag(1));
                } else if revived {
                    // Being written off consumed the worker's queued
                    // request (the failed shipment popped it), so a
                    // live worker whose task was silently lost would
                    // otherwise idle forever once revived: re-enter it
                    // into the service queue. An unsolicited task is
                    // harmless — the worker buffers and computes it
                    // like any other.
                    self.enqueue_request(from);
                    self.serve(ctx);
                }
            }
            _ => unreachable!("master only receives requests/acks/heartbeats"),
        }
    }

    fn on_send_done(&mut self, tag: Tag, ctx: &mut Ctx<'_>) {
        if tag == Tag(0) {
            self.sending = false;
            self.in_flight_to = None;
            self.serve(ctx);
            self.finish_if_done(ctx);
        }
    }

    fn on_send_failed(&mut self, tag: Tag, _reason: SendFailure, ctx: &mut Ctx<'_>) {
        if tag != Tag(0) {
            return; // a lost Stop is harmless
        }
        self.sending = false;
        let failed_to = self.in_flight_to.take();
        if self.config.fault_tolerance.is_some() {
            if let Some(worker) = failed_to {
                // Take the task back and write the worker off; a later
                // message from it revives it.
                if let Some(n) = self.outstanding.get_mut(&worker) {
                    *n = n.saturating_sub(1);
                }
                self.tasks_left += 1;
                self.mark_dead(worker);
            }
            self.serve(ctx);
        } else {
            // Without fault tolerance the task is simply lost; keep
            // serving the rest rather than stalling forever.
            self.serve(ctx);
            self.finish_if_done(ctx);
        }
    }

    fn on_timer(&mut self, tag: Tag, ctx: &mut Ctx<'_>) {
        if tag != SWEEP {
            return;
        }
        let Some(ft) = self.config.fault_tolerance else { return };
        if self.all_done() {
            return; // run over: let the calendar drain
        }
        let expired = self.hb.as_ref().expect("fault-tolerant master").expired(ctx.now());
        for worker in expired {
            self.mark_dead(worker);
        }
        // Requeued tasks may now be servable from queued requests.
        self.serve(ctx);
        ctx.set_timer(ft.worker_timeout * 0.5, SWEEP);
    }
}

struct Worker {
    master: ActorId,
    account: AccountId,
    flops: f64,
    prefetch: usize,
    buffered: usize,
    computing: bool,
    done: usize,
    /// Mirrors the app's fault-tolerance setting (heartbeats + acks).
    ft: Option<FtConfig>,
    /// Set by `Stop`; ends the heartbeat loop so the run terminates.
    stopped: bool,
    /// Shared counter of completed tasks, read by the harness.
    completed_counter: Rc<Cell<usize>>,
}

impl Worker {
    fn maybe_compute(&mut self, ctx: &mut Ctx<'_>) {
        if !self.computing && self.buffered > 0 {
            self.computing = true;
            self.buffered -= 1;
            ctx.execute_as(self.flops, Tag(0), Some(self.account));
        }
    }

    /// Sends one `Done` acknowledgment. In fault-tolerant mode the send
    /// is watched: a silently-lost ack would strand the task in the
    /// master's outstanding set forever, so `on_send_failed` schedules
    /// a retransmission. The transport drops any delivery attempted
    /// after its watch fired, so a retried ack is never double-counted.
    fn send_done(&mut self, ctx: &mut Ctx<'_>) {
        match self.ft {
            Some(ft) => ctx.send_with_timeout(
                self.master,
                0.0,
                Box::new(Msg::Done),
                Tag(5),
                ft.send_timeout,
            ),
            None => ctx.send(self.master, 0.0, Box::new(Msg::Done), Tag(5)),
        }
    }

    /// Sends one task request, watched in fault-tolerant mode for the
    /// same reason as [`Worker::send_done`]: every silently-lost
    /// request permanently shrinks the worker's prefetch pipeline.
    fn send_request(&mut self, ctx: &mut Ctx<'_>) {
        match self.ft {
            Some(ft) => ctx.send_with_timeout(
                self.master,
                0.0,
                Box::new(Msg::Request),
                Tag(2),
                ft.send_timeout,
            ),
            None => ctx.send(self.master, 0.0, Box::new(Msg::Request), Tag(2)),
        }
    }
}

impl Actor for Worker {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        // Fill the prefetch pipeline with one request per buffer slot.
        for _ in 0..self.prefetch {
            self.send_request(ctx);
        }
        if let Some(ft) = self.ft {
            ctx.set_timer(ft.heartbeat_interval, BEAT);
        }
    }

    fn on_message(&mut self, _from: ActorId, payload: Payload, ctx: &mut Ctx<'_>) {
        match *payload.downcast::<Msg>().expect("protocol message") {
            Msg::Task => {
                self.buffered += 1;
                self.maybe_compute(ctx);
            }
            Msg::Stop => self.stopped = true,
            _ => unreachable!("workers only receive tasks/stops"),
        }
    }

    fn on_compute_done(&mut self, _tag: Tag, ctx: &mut Ctx<'_>) {
        self.computing = false;
        self.done += 1;
        self.completed_counter.set(self.completed_counter.get() + 1);
        if self.ft.is_some() {
            // Acknowledge before re-requesting so the master counts the
            // task before deciding whether to answer with Stop.
            self.send_done(ctx);
        }
        // Refill the slot just freed.
        self.send_request(ctx);
        self.maybe_compute(ctx);
    }

    fn on_send_failed(&mut self, tag: Tag, _reason: SendFailure, ctx: &mut Ctx<'_>) {
        if self.ft.is_none() {
            return;
        }
        let ft = self.ft.expect("checked above");
        // Retransmit lost acks and requests after a beat rather than
        // immediately: an immediate resend over a still-down link would
        // spin at route-latency granularity until it recovers.
        match tag {
            Tag(5) => ctx.set_timer(ft.heartbeat_interval, RETRY_DONE),
            Tag(2) if !self.stopped => ctx.set_timer(ft.heartbeat_interval, RETRY_REQ),
            _ => {} // lost heartbeats are replaced by the next beat
        }
    }

    fn on_timer(&mut self, tag: Tag, ctx: &mut Ctx<'_>) {
        match tag {
            BEAT if !self.stopped => {
                let ft = self.ft.expect("heartbeat timer only set in fault-tolerant mode");
                ctx.send(self.master, 0.0, Box::new(Msg::Heartbeat), Tag(4));
                ctx.set_timer(ft.heartbeat_interval, BEAT);
            }
            // The master cannot have declared completion while an ack
            // is missing, so a pending `Done` is always worth retrying.
            RETRY_DONE => self.send_done(ctx),
            RETRY_REQ if !self.stopped => self.send_request(ctx),
            _ => {}
        }
    }
}

/// Outcome of a master-worker run.
#[derive(Debug)]
pub struct MwRun {
    /// Time at which the last activity finished, seconds.
    pub makespan: f64,
    /// Recorded trace (when tracing was requested).
    pub trace: Option<Trace>,
    /// Per-application shipment counts, *including* requeued duplicates
    /// in fault-tolerant mode (equals the configured totals on a
    /// fault-free run).
    pub tasks_shipped: Vec<usize>,
    /// Per-application tasks actually computed to completion. On a
    /// fault-free run this equals the configured totals; under faults
    /// without fault tolerance it exposes the lost work, and with fault
    /// tolerance it can slightly *exceed* the totals — at-least-once
    /// delivery recomputes a task whose worker was falsely written off.
    pub tasks_completed: Vec<usize>,
}

/// Runs the competing applications on `platform` (no faults).
///
/// Each application gets one master (on its configured host) and one
/// worker on every platform host. Account labels follow the app names,
/// so traced utilization can be split per application (Fig. 8/9).
pub fn run_master_worker(
    platform: Platform,
    apps: &[AppSpec],
    tracing: Option<TracingConfig>,
) -> MwRun {
    run_master_worker_with_faults(platform, apps, tracing, None)
        .expect("no fault plan, nothing to validate")
}

/// Runs the competing applications on `platform`, optionally under an
/// injected [`FaultPlan`].
///
/// Fails (without running) if the plan references unknown resources or
/// is otherwise malformed. Apps whose [`MwConfig::fault_tolerance`] is
/// set detect dead workers and requeue their tasks; apps without it
/// lose the corresponding work but still terminate.
pub fn run_master_worker_with_faults(
    platform: Platform,
    apps: &[AppSpec],
    tracing: Option<TracingConfig>,
    faults: Option<&FaultPlan>,
) -> Result<MwRun, FaultError> {
    let mut sim = Simulation::new(platform);
    let accounts: Vec<AccountId> = apps.iter().map(|a| sim.account(&a.name)).collect();
    if let Some(t) = tracing {
        sim.enable_tracing(t);
    }
    if let Some(plan) = faults {
        sim.inject_faults(plan)?;
    }
    // Effective bandwidth of each host as seen from each master: the
    // bottleneck capacity of the route (the paper's "effective
    // bandwidth" evaluated per worker).
    let mut routes = RouteTable::new();
    let host_ids: Vec<HostId> = sim.platform().hosts().iter().map(|h| h.id()).collect();
    let n_hosts = host_ids.len();
    let shipped: Vec<Rc<Cell<usize>>> = apps.iter().map(|_| Rc::new(Cell::new(0))).collect();
    let completed: Vec<Rc<Cell<usize>>> = apps.iter().map(|_| Rc::new(Cell::new(0))).collect();

    // Masters are spawned first (ids 0..apps), then workers app-major:
    // worker of app a on host h has id apps.len() + a*n_hosts + h.
    for (a, app) in apps.iter().enumerate() {
        let mut bandwidth_of = std::collections::HashMap::new();
        for (h, &host) in host_ids.iter().enumerate() {
            let worker_id = ActorId::from_index(apps.len() + a * n_hosts + h);
            let bw = routes
                .route(sim.platform(), app.master, host)
                .expect("connected platform")
                .bottleneck;
            let bw = if bw.is_finite() { bw } else { f64::MAX };
            bandwidth_of.insert(worker_id, bw);
        }
        sim.spawn(
            app.master,
            Box::new(Master {
                account: accounts[a],
                config: app.config.clone(),
                bandwidth_of,
                by_bandwidth: BinaryHeap::new(),
                fifo: VecDeque::new(),
                tasks_left: app.config.tasks,
                seq: 0,
                sending: false,
                outstanding: HashMap::new(),
                dead: HashSet::new(),
                hb: app
                    .config
                    .fault_tolerance
                    .map(|ft| Heartbeat::new(ft.worker_timeout)),
                in_flight_to: None,
                completed: 0,
                stops_sent: false,
                shipped: shipped[a].clone(),
            }),
        );
    }
    for (a, app) in apps.iter().enumerate() {
        let master_id = ActorId::from_index(a);
        for &host in &host_ids {
            sim.spawn(
                host,
                Box::new(Worker {
                    master: master_id,
                    account: accounts[a],
                    flops: app.config.task_flops,
                    prefetch: app.config.prefetch,
                    buffered: 0,
                    computing: false,
                    done: 0,
                    ft: app.config.fault_tolerance,
                    stopped: false,
                    completed_counter: completed[a].clone(),
                }),
            );
        }
    }
    let makespan = sim.run();
    Ok(MwRun {
        makespan,
        trace: sim.into_trace(),
        tasks_shipped: shipped.iter().map(|c| c.get()).collect(),
        tasks_completed: completed.iter().map(|c| c.get()).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use viva_platform::generators::{self, Grid5000Config};
    use viva_trace::metric::names;

    fn small_grid() -> Platform {
        generators::grid5000(&Grid5000Config {
            sites: 4,
            clusters_per_site: (1, 2),
            total_hosts: 24,
            ..Default::default()
        })
        .unwrap()
    }

    fn one_app(platform: &Platform, cfg: MwConfig) -> Vec<AppSpec> {
        vec![AppSpec {
            name: "app1".into(),
            master: platform.hosts()[0].id(),
            config: cfg,
        }]
    }

    #[test]
    fn all_tasks_complete_and_work_is_conserved() {
        let p = small_grid();
        let cfg = MwConfig { tasks: 60, ..MwConfig::cpu_bound() };
        let apps = one_app(&p, cfg.clone());
        let run = run_master_worker(p, &apps, Some(TracingConfig::default()));
        assert!(run.makespan > 0.0);
        let trace = run.trace.unwrap();
        let used = trace.metric_id(names::POWER_USED).unwrap();
        let total: f64 = trace
            .containers()
            .of_kind(viva_trace::ContainerKind::Host)
            .into_iter()
            .map(|h| trace.integrate(h, used, 0.0, trace.end()))
            .sum();
        let expect = cfg.tasks as f64 * cfg.task_flops;
        assert!(
            (total - expect).abs() < 1e-6 * expect,
            "computed {total}, expected {expect}"
        );
    }

    #[test]
    fn per_account_metrics_split_the_two_apps() {
        let p = small_grid();
        let apps = vec![
            AppSpec {
                name: "app1".into(),
                master: p.hosts()[0].id(),
                config: MwConfig { tasks: 40, ..MwConfig::cpu_bound() },
            },
            AppSpec {
                name: "app2".into(),
                master: p.hosts()[6].id(),
                config: MwConfig { tasks: 40, ..MwConfig::network_bound() },
            },
        ];
        let run = run_master_worker(p, &apps, Some(TracingConfig::default()));
        let trace = run.trace.unwrap();
        let m1 = trace.metric_id("power_used:app1").expect("app1 metric");
        let m2 = trace.metric_id("power_used:app2").expect("app2 metric");
        let sum = |m| {
            trace
                .containers()
                .of_kind(viva_trace::ContainerKind::Host)
                .into_iter()
                .map(|h| trace.integrate(h, m, 0.0, trace.end()))
                .sum::<f64>()
        };
        let w1 = sum(m1);
        let w2 = sum(m2);
        assert!((w1 - 40.0 * 2000.0).abs() < 1.0, "app1 work {w1}");
        assert!((w2 - 40.0 * 800.0).abs() < 1.0, "app2 work {w2}");
    }

    #[test]
    fn bandwidth_centric_prefers_fast_workers() {
        // Few tasks: only the best-connected workers should ever see
        // work under the bandwidth-centric policy.
        let p = small_grid();
        let master = p.hosts()[0].id();
        let mut routes = RouteTable::new();
        let bw: Vec<f64> = p
            .hosts()
            .iter()
            .map(|h| routes.route(&p, master, h.id()).unwrap().bottleneck)
            .map(|b| if b.is_finite() { b } else { f64::MAX })
            .collect();
        let apps = vec![AppSpec {
            name: "app1".into(),
            master,
            config: MwConfig {
                tasks: 12,
                task_flops: 50_000.0, // long compute: no worker finishes early
                ..MwConfig::cpu_bound()
            },
        }];
        let run = run_master_worker(p.clone(), &apps, Some(TracingConfig::default()));
        let trace = run.trace.unwrap();
        let used = trace.metric_id("power_used:app1").unwrap();
        // Workers that computed something.
        let served: Vec<usize> = p
            .hosts()
            .iter()
            .enumerate()
            .filter(|(_, h)| {
                let c = trace.containers().by_name(h.name()).unwrap().id();
                trace.integrate(c, used, 0.0, trace.end()) > 0.0
            })
            .map(|(i, _)| i)
            .collect();
        assert!(!served.is_empty());
        let min_served_bw = served.iter().map(|&i| bw[i]).fold(f64::MAX, f64::min);
        let max_unserved_bw = (0..p.hosts().len())
            .filter(|i| !served.contains(i))
            .map(|i| bw[i])
            .fold(0.0f64, f64::max);
        assert!(
            min_served_bw >= max_unserved_bw,
            "served slower workers ({min_served_bw}) before faster ones ({max_unserved_bw})"
        );
    }

    #[test]
    fn fifo_spreads_more_uniformly_than_bandwidth_centric() {
        let p = small_grid();
        let run_with = |scheduler| {
            let apps = vec![AppSpec {
                name: "app1".into(),
                master: p.hosts()[0].id(),
                config: MwConfig { tasks: 48, task_flops: 20_000.0, scheduler, ..Default::default() },
            }];
            let run = run_master_worker(p.clone(), &apps, Some(TracingConfig::default()));
            let trace = run.trace.unwrap();
            let used = trace.metric_id("power_used:app1").unwrap();
            p.hosts()
                .iter()
                .filter(|h| {
                    let c = trace.containers().by_name(h.name()).unwrap().id();
                    trace.integrate(c, used, 0.0, trace.end()) > 0.0
                })
                .count()
        };
        let bc = run_with(Scheduler::BandwidthCentric);
        let fifo = run_with(Scheduler::Fifo);
        assert!(
            fifo >= bc,
            "FIFO should touch at least as many workers: fifo {fifo}, bc {bc}"
        );
    }

    #[test]
    fn deterministic_runs() {
        let run_once = || {
            let p = small_grid();
            let apps = one_app(&p, MwConfig { tasks: 30, ..Default::default() });
            let run = run_master_worker(p, &apps, None);
            run.makespan
        };
        assert_eq!(run_once(), run_once());
    }

    /// FIFO + long tasks: every worker holds work when crashes land, so
    /// the failure paths are genuinely exercised.
    fn ft_cfg(tasks: usize) -> MwConfig {
        MwConfig {
            tasks,
            task_flops: 20_000.0,
            scheduler: Scheduler::Fifo,
            fault_tolerance: Some(FtConfig {
                worker_timeout: 60.0,
                heartbeat_interval: 10.0,
                send_timeout: 120.0,
            }),
            ..MwConfig::cpu_bound()
        }
    }

    /// Crashes `n` worker hosts (never host 0, where the master lives)
    /// early in the run, while first tasks are still computing.
    fn crash_workers(p: &Platform, n: usize) -> FaultPlan {
        let mut plan = FaultPlan::new();
        for i in 0..n {
            let host = p.hosts()[1 + i].id();
            plan = plan.host_crash(3.0 + 1.0 * i as f64, host);
        }
        plan
    }

    #[test]
    fn fault_tolerant_run_completes_all_tasks_despite_crashes() {
        let p = small_grid();
        let apps = one_app(&p, ft_cfg(60));
        let plan = crash_workers(&p, 3);
        let run = run_master_worker_with_faults(p, &apps, None, Some(&plan)).unwrap();
        assert_eq!(run.tasks_completed, vec![60], "requeue must recover lost tasks");
        // The crashed workers' tasks were shipped a second time.
        assert!(run.tasks_shipped[0] > 60, "shipped {:?}", run.tasks_shipped);
        assert!(run.makespan.is_finite() && run.makespan > 0.0);
    }

    #[test]
    fn without_fault_tolerance_crashes_lose_work_but_run_terminates() {
        let p = small_grid();
        let cfg = MwConfig { fault_tolerance: None, ..ft_cfg(60) };
        let apps = one_app(&p, cfg);
        let plan = crash_workers(&p, 3);
        let run = run_master_worker_with_faults(p, &apps, None, Some(&plan)).unwrap();
        assert!(
            run.tasks_completed[0] < 60,
            "crashed workers should take buffered tasks with them, completed {:?}",
            run.tasks_completed
        );
        assert!(run.makespan.is_finite());
    }

    #[test]
    fn makespan_grows_with_failure_count() {
        let p = small_grid();
        let mut spans = Vec::new();
        for n in [0usize, 2, 4] {
            let apps = one_app(&p, ft_cfg(80));
            let plan = crash_workers(&p, n);
            let faults = if n == 0 { None } else { Some(&plan) };
            let run = run_master_worker_with_faults(p.clone(), &apps, None, faults).unwrap();
            assert_eq!(run.tasks_completed, vec![80], "{n} crashes");
            spans.push(run.makespan);
        }
        assert!(
            spans[0] <= spans[1] && spans[1] <= spans[2],
            "makespan should not shrink as workers die: {spans:?}"
        );
    }

    #[test]
    fn faulty_master_worker_runs_are_deterministic() {
        let run_once = || {
            let p = small_grid();
            let apps = one_app(&p, ft_cfg(40));
            let plan = crash_workers(&p, 2).message_loss(0.0, 200.0, 0.05).with_seed(7);
            let run =
                run_master_worker_with_faults(p, &apps, Some(TracingConfig::default()), Some(&plan))
                    .unwrap();
            (run.makespan, run.tasks_shipped, format!("{:?}", run.trace.map(|t| t.end())))
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn invalid_fault_plan_is_rejected_up_front() {
        let p = small_grid();
        let apps = one_app(&p, ft_cfg(10));
        let plan = FaultPlan::new().host_crash(-1.0, p.hosts()[1].id());
        let err = run_master_worker_with_faults(p, &apps, None, Some(&plan));
        assert!(err.is_err());
    }

    /// Regression: a silently-lost `Done` used to strand its task in
    /// the master's outstanding set forever (the worker stays alive, so
    /// it is never written off and nothing requeues). Permanent heavy
    /// message loss exercises the ack/request retransmission and the
    /// Stop-on-stray-heartbeat paths; the run must still complete.
    #[test]
    fn heavy_message_loss_cannot_strand_acknowledgments() {
        let p = small_grid();
        let apps = one_app(&p, ft_cfg(30));
        let plan = FaultPlan::new()
            .with_seed(11)
            .message_loss(0.0, 1.0e9, 0.25);
        let run =
            run_master_worker_with_faults(p, &apps, Some(TracingConfig::default()), Some(&plan))
                .unwrap();
        // At-least-once: every task completes; a worker falsely written
        // off (six heartbeats lost in a row) may compute a requeued
        // duplicate, so the worker-side count can exceed the total.
        assert!(run.tasks_completed[0] >= 30, "stranded ack: {run:?}");
        assert!(run.makespan.is_finite());
    }
}
