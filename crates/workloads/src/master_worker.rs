//! Two non-cooperative master-worker applications on a grid (§5.2).
//!
//! Each application has one **master** that distributes independent
//! tasks and one **worker per host** (both applications run a worker on
//! *every* host, so they compete for CPU — the paper's third expected
//! phenomenon). The master implements the **bandwidth-centric**
//! strategy of Beaumont et al.: "every time a master communicates a
//! task to a worker, it evaluates the worker's effective bandwidth and
//! uses this value to prioritize workers' requests: when several
//! workers request some work, the one with the largest bandwidth is
//! served in priority". Workers keep a **prefetch buffer of three
//! tasks** "to minimize [their] idleness".
//!
//! A FIFO scheduler is provided as the ablation the paper sketches:
//! "a simple FIFO mechanism would not exhibit such locality and would
//! exhibit an (inefficient) uniform resource usage".

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use viva_platform::{HostId, Platform, RouteTable};
use viva_simflow::{AccountId, Actor, ActorId, Ctx, Payload, Simulation, Tag, TracingConfig};
use viva_trace::Trace;

/// Master scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheduler {
    /// Serve the pending request with the largest effective bandwidth
    /// (the paper's strategy).
    BandwidthCentric,
    /// Serve requests in arrival order (the ablation baseline).
    Fifo,
}

/// Configuration of one master-worker application.
#[derive(Debug, Clone, PartialEq)]
pub struct MwConfig {
    /// Total number of tasks the master distributes.
    pub tasks: usize,
    /// Input data shipped per task, Mbit.
    pub task_size_mbit: f64,
    /// Computation per task, MFlop.
    pub task_flops: f64,
    /// Worker prefetch buffer size (the paper uses 3).
    pub prefetch: usize,
    /// Scheduling policy.
    pub scheduler: Scheduler,
}

impl Default for MwConfig {
    fn default() -> Self {
        MwConfig {
            tasks: 4000,
            task_size_mbit: 10.0,
            task_flops: 2000.0,
            prefetch: 3,
            scheduler: Scheduler::BandwidthCentric,
        }
    }
}

impl MwConfig {
    /// The paper's first application: CPU bound.
    pub fn cpu_bound() -> MwConfig {
        MwConfig::default()
    }

    /// The paper's second application: "a slightly higher communication
    /// to computation ratio".
    pub fn network_bound() -> MwConfig {
        MwConfig {
            task_size_mbit: 40.0,
            task_flops: 800.0,
            ..MwConfig::default()
        }
    }
}

/// One application to run: a name (becomes the trace account), the
/// host of its master, and its workload.
#[derive(Debug, Clone, PartialEq)]
pub struct AppSpec {
    /// Application name (account label in the trace, e.g. `"app1"`).
    pub name: String,
    /// Host running the master.
    pub master: HostId,
    /// Workload parameters.
    pub config: MwConfig,
}

/// Messages exchanged between master and workers.
enum Msg {
    /// Worker asks for one task.
    Request,
    /// Master ships one task's input data.
    Task,
    /// Master has no tasks left.
    Stop,
}

/// A pending worker request with its priority.
#[derive(Debug, PartialEq)]
struct PendingRequest {
    bandwidth: f64,
    seq: u64,
    worker: ActorId,
}

impl Eq for PendingRequest {}

impl Ord for PendingRequest {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap by bandwidth; FIFO (low seq first) among equals.
        self.bandwidth
            .total_cmp(&other.bandwidth)
            .then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for PendingRequest {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

struct Master {
    account: AccountId,
    config: MwConfig,
    /// Effective bandwidth per worker actor (indexed by actor id).
    bandwidth_of: std::collections::HashMap<ActorId, f64>,
    by_bandwidth: BinaryHeap<PendingRequest>,
    fifo: VecDeque<ActorId>,
    tasks_left: usize,
    seq: u64,
    sending: bool,
}

impl Master {
    fn pop(&mut self) -> Option<ActorId> {
        match self.config.scheduler {
            Scheduler::BandwidthCentric => self.by_bandwidth.pop().map(|r| r.worker),
            Scheduler::Fifo => self.fifo.pop_front(),
        }
    }

    fn serve(&mut self, ctx: &mut Ctx<'_>) {
        if self.sending || self.tasks_left == 0 {
            return;
        }
        if let Some(worker) = self.pop() {
            self.sending = true;
            self.tasks_left -= 1;
            ctx.send_as(
                worker,
                self.config.task_size_mbit,
                Box::new(Msg::Task),
                Tag(0),
                Some(self.account),
            );
        }
    }

    fn drain_with_stop(&mut self, ctx: &mut Ctx<'_>) {
        if self.tasks_left > 0 {
            return;
        }
        while let Some(worker) = self.pop() {
            ctx.send(worker, 0.0, Box::new(Msg::Stop), Tag(1));
        }
    }
}

impl Actor for Master {
    fn on_message(&mut self, from: ActorId, payload: Payload, ctx: &mut Ctx<'_>) {
        match *payload.downcast::<Msg>().expect("protocol message") {
            Msg::Request => {
                if self.tasks_left == 0 {
                    ctx.send(from, 0.0, Box::new(Msg::Stop), Tag(1));
                    return;
                }
                let bandwidth = self.bandwidth_of.get(&from).copied().unwrap_or(0.0);
                self.seq += 1;
                self.by_bandwidth.push(PendingRequest {
                    bandwidth,
                    seq: self.seq,
                    worker: from,
                });
                self.fifo.push_back(from);
                self.serve(ctx);
            }
            _ => unreachable!("master only receives requests"),
        }
    }

    fn on_send_done(&mut self, tag: Tag, ctx: &mut Ctx<'_>) {
        if tag == Tag(0) {
            self.sending = false;
            self.serve(ctx);
            self.drain_with_stop(ctx);
        }
    }
}

struct Worker {
    master: ActorId,
    account: AccountId,
    flops: f64,
    prefetch: usize,
    buffered: usize,
    computing: bool,
    done: usize,
}

impl Worker {
    fn maybe_compute(&mut self, ctx: &mut Ctx<'_>) {
        if !self.computing && self.buffered > 0 {
            self.computing = true;
            self.buffered -= 1;
            ctx.execute_as(self.flops, Tag(0), Some(self.account));
        }
    }
}

impl Actor for Worker {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        // Fill the prefetch pipeline with one request per buffer slot.
        for _ in 0..self.prefetch {
            ctx.send(self.master, 0.0, Box::new(Msg::Request), Tag(2));
        }
    }

    fn on_message(&mut self, _from: ActorId, payload: Payload, ctx: &mut Ctx<'_>) {
        match *payload.downcast::<Msg>().expect("protocol message") {
            Msg::Task => {
                self.buffered += 1;
                self.maybe_compute(ctx);
            }
            Msg::Stop => {}
            Msg::Request => unreachable!("workers only receive tasks/stops"),
        }
    }

    fn on_compute_done(&mut self, _tag: Tag, ctx: &mut Ctx<'_>) {
        self.computing = false;
        self.done += 1;
        // Refill the slot just freed.
        ctx.send(self.master, 0.0, Box::new(Msg::Request), Tag(2));
        self.maybe_compute(ctx);
    }
}

/// Outcome of a master-worker run.
#[derive(Debug)]
pub struct MwRun {
    /// Time at which the last activity finished, seconds.
    pub makespan: f64,
    /// Recorded trace (when tracing was requested).
    pub trace: Option<Trace>,
    /// Per-application task counts actually shipped (equals the
    /// configured totals on a complete run).
    pub tasks_shipped: Vec<usize>,
}

/// Runs the competing applications on `platform`.
///
/// Each application gets one master (on its configured host) and one
/// worker on every platform host. Account labels follow the app names,
/// so traced utilization can be split per application (Fig. 8/9).
pub fn run_master_worker(
    platform: Platform,
    apps: &[AppSpec],
    tracing: Option<TracingConfig>,
) -> MwRun {
    let mut sim = Simulation::new(platform);
    let accounts: Vec<AccountId> = apps.iter().map(|a| sim.account(&a.name)).collect();
    if let Some(t) = tracing {
        sim.enable_tracing(t);
    }
    // Effective bandwidth of each host as seen from each master: the
    // bottleneck capacity of the route (the paper's "effective
    // bandwidth" evaluated per worker).
    let mut routes = RouteTable::new();
    let host_ids: Vec<HostId> = sim.platform().hosts().iter().map(|h| h.id()).collect();
    let n_hosts = host_ids.len();
    let mut tasks_shipped = Vec::with_capacity(apps.len());

    // Masters are spawned first (ids 0..apps), then workers app-major:
    // worker of app a on host h has id apps.len() + a*n_hosts + h.
    for (a, app) in apps.iter().enumerate() {
        let mut bandwidth_of = std::collections::HashMap::new();
        for (h, &host) in host_ids.iter().enumerate() {
            let worker_id = ActorId::from_index(apps.len() + a * n_hosts + h);
            let bw = routes
                .route(sim.platform(), app.master, host)
                .expect("connected platform")
                .bottleneck;
            let bw = if bw.is_finite() { bw } else { f64::MAX };
            bandwidth_of.insert(worker_id, bw);
        }
        sim.spawn(
            app.master,
            Box::new(Master {
                account: accounts[a],
                config: app.config.clone(),
                bandwidth_of,
                by_bandwidth: BinaryHeap::new(),
                fifo: VecDeque::new(),
                tasks_left: app.config.tasks,
                seq: 0,
                sending: false,
            }),
        );
        tasks_shipped.push(app.config.tasks);
    }
    for (a, app) in apps.iter().enumerate() {
        let master_id = ActorId::from_index(a);
        for &host in &host_ids {
            sim.spawn(
                host,
                Box::new(Worker {
                    master: master_id,
                    account: accounts[a],
                    flops: app.config.task_flops,
                    prefetch: app.config.prefetch,
                    buffered: 0,
                    computing: false,
                    done: 0,
                }),
            );
        }
    }
    let makespan = sim.run();
    MwRun { makespan, trace: sim.into_trace(), tasks_shipped }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viva_platform::generators::{self, Grid5000Config};
    use viva_trace::metric::names;

    fn small_grid() -> Platform {
        generators::grid5000(&Grid5000Config {
            sites: 4,
            clusters_per_site: (1, 2),
            total_hosts: 24,
            ..Default::default()
        })
        .unwrap()
    }

    fn one_app(platform: &Platform, cfg: MwConfig) -> Vec<AppSpec> {
        vec![AppSpec {
            name: "app1".into(),
            master: platform.hosts()[0].id(),
            config: cfg,
        }]
    }

    #[test]
    fn all_tasks_complete_and_work_is_conserved() {
        let p = small_grid();
        let cfg = MwConfig { tasks: 60, ..MwConfig::cpu_bound() };
        let apps = one_app(&p, cfg.clone());
        let run = run_master_worker(p, &apps, Some(TracingConfig::default()));
        assert!(run.makespan > 0.0);
        let trace = run.trace.unwrap();
        let used = trace.metric_id(names::POWER_USED).unwrap();
        let total: f64 = trace
            .containers()
            .of_kind(viva_trace::ContainerKind::Host)
            .into_iter()
            .map(|h| trace.integrate(h, used, 0.0, trace.end()))
            .sum();
        let expect = cfg.tasks as f64 * cfg.task_flops;
        assert!(
            (total - expect).abs() < 1e-6 * expect,
            "computed {total}, expected {expect}"
        );
    }

    #[test]
    fn per_account_metrics_split_the_two_apps() {
        let p = small_grid();
        let apps = vec![
            AppSpec {
                name: "app1".into(),
                master: p.hosts()[0].id(),
                config: MwConfig { tasks: 40, ..MwConfig::cpu_bound() },
            },
            AppSpec {
                name: "app2".into(),
                master: p.hosts()[6].id(),
                config: MwConfig { tasks: 40, ..MwConfig::network_bound() },
            },
        ];
        let run = run_master_worker(p, &apps, Some(TracingConfig::default()));
        let trace = run.trace.unwrap();
        let m1 = trace.metric_id("power_used:app1").expect("app1 metric");
        let m2 = trace.metric_id("power_used:app2").expect("app2 metric");
        let sum = |m| {
            trace
                .containers()
                .of_kind(viva_trace::ContainerKind::Host)
                .into_iter()
                .map(|h| trace.integrate(h, m, 0.0, trace.end()))
                .sum::<f64>()
        };
        let w1 = sum(m1);
        let w2 = sum(m2);
        assert!((w1 - 40.0 * 2000.0).abs() < 1.0, "app1 work {w1}");
        assert!((w2 - 40.0 * 800.0).abs() < 1.0, "app2 work {w2}");
    }

    #[test]
    fn bandwidth_centric_prefers_fast_workers() {
        // Few tasks: only the best-connected workers should ever see
        // work under the bandwidth-centric policy.
        let p = small_grid();
        let master = p.hosts()[0].id();
        let mut routes = RouteTable::new();
        let bw: Vec<f64> = p
            .hosts()
            .iter()
            .map(|h| routes.route(&p, master, h.id()).unwrap().bottleneck)
            .map(|b| if b.is_finite() { b } else { f64::MAX })
            .collect();
        let apps = vec![AppSpec {
            name: "app1".into(),
            master,
            config: MwConfig {
                tasks: 12,
                task_flops: 50_000.0, // long compute: no worker finishes early
                ..MwConfig::cpu_bound()
            },
        }];
        let run = run_master_worker(p.clone(), &apps, Some(TracingConfig::default()));
        let trace = run.trace.unwrap();
        let used = trace.metric_id("power_used:app1").unwrap();
        // Workers that computed something.
        let served: Vec<usize> = p
            .hosts()
            .iter()
            .enumerate()
            .filter(|(_, h)| {
                let c = trace.containers().by_name(h.name()).unwrap().id();
                trace.integrate(c, used, 0.0, trace.end()) > 0.0
            })
            .map(|(i, _)| i)
            .collect();
        assert!(!served.is_empty());
        let min_served_bw = served.iter().map(|&i| bw[i]).fold(f64::MAX, f64::min);
        let max_unserved_bw = (0..p.hosts().len())
            .filter(|i| !served.contains(i))
            .map(|i| bw[i])
            .fold(0.0f64, f64::max);
        assert!(
            min_served_bw >= max_unserved_bw,
            "served slower workers ({min_served_bw}) before faster ones ({max_unserved_bw})"
        );
    }

    #[test]
    fn fifo_spreads_more_uniformly_than_bandwidth_centric() {
        let p = small_grid();
        let run_with = |scheduler| {
            let apps = vec![AppSpec {
                name: "app1".into(),
                master: p.hosts()[0].id(),
                config: MwConfig { tasks: 48, task_flops: 20_000.0, scheduler, ..Default::default() },
            }];
            let run = run_master_worker(p.clone(), &apps, Some(TracingConfig::default()));
            let trace = run.trace.unwrap();
            let used = trace.metric_id("power_used:app1").unwrap();
            p.hosts()
                .iter()
                .filter(|h| {
                    let c = trace.containers().by_name(h.name()).unwrap().id();
                    trace.integrate(c, used, 0.0, trace.end()) > 0.0
                })
                .count()
        };
        let bc = run_with(Scheduler::BandwidthCentric);
        let fifo = run_with(Scheduler::Fifo);
        assert!(
            fifo >= bc,
            "FIFO should touch at least as many workers: fifo {fifo}, bc {bc}"
        );
    }

    #[test]
    fn deterministic_runs() {
        let run_once = || {
            let p = small_grid();
            let apps = one_app(&p, MwConfig { tasks: 30, ..Default::default() });
            let run = run_master_worker(p, &apps, None);
            run.makespan
        };
        assert_eq!(run_once(), run_once());
    }
}
