//! Layout quality measures (paper §2.3: "several quality measures are
//! taken into account when drawing a graph: area used, symmetry,
//! angular resolution ..., and crossing number").
//!
//! These are used by tests and the ablation benches to check that the
//! Barnes-Hut approximation and the dynamic morphs do not degrade the
//! drawing.

use crate::engine::LayoutEngine;
use crate::vec2::Vec2;

/// Orientation of the ordered triple (a, b, c).
fn orient(a: Vec2, b: Vec2, c: Vec2) -> f64 {
    (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
}

/// Whether segments `a1–a2` and `b1–b2` properly cross (shared
/// endpoints do not count — adjacent edges always touch).
pub fn segments_cross(a1: Vec2, a2: Vec2, b1: Vec2, b2: Vec2) -> bool {
    // Shared endpoint: not a crossing.
    for p in [a1, a2] {
        for q in [b1, b2] {
            if p == q {
                return false;
            }
        }
    }
    let d1 = orient(b1, b2, a1);
    let d2 = orient(b1, b2, a2);
    let d3 = orient(a1, a2, b1);
    let d4 = orient(a1, a2, b2);
    (d1 * d2 < 0.0) && (d3 * d4 < 0.0)
}

/// Number of properly crossing edge pairs in the layout — the
/// *crossing number* of the drawing (`O(E²)`; fine for view-sized
/// graphs).
pub fn crossing_count(engine: &LayoutEngine) -> usize {
    let edges: Vec<(Vec2, Vec2)> = engine
        .edges()
        .filter_map(|(a, b)| Some((engine.position(a)?, engine.position(b)?)))
        .collect();
    let mut count = 0;
    for i in 0..edges.len() {
        for j in (i + 1)..edges.len() {
            if segments_cross(edges[i].0, edges[i].1, edges[j].0, edges[j].1) {
                count += 1;
            }
        }
    }
    count
}

/// Mean Euclidean edge length (0 for an edge-less layout).
pub fn mean_edge_length(engine: &LayoutEngine) -> f64 {
    let mut total = 0.0;
    let mut n = 0usize;
    for (a, b) in engine.edges() {
        if let (Some(pa), Some(pb)) = (engine.position(a), engine.position(b)) {
            total += pa.distance(pb);
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

/// Area of the layout's bounding box (0 when degenerate).
pub fn bounding_area(engine: &LayoutEngine) -> f64 {
    engine
        .bounds()
        .map(|(lo, hi)| {
            let d = hi - lo;
            d.x * d.y
        })
        .unwrap_or(0.0)
}

/// Normalized *stress* of the drawing against graph-theoretic
/// distances: `Σ (|pᵢ-pⱼ| - L·dᵢⱼ)² / dᵢⱼ²` over connected pairs,
/// averaged, where `dᵢⱼ` is the BFS hop distance and `L` the natural
/// spring length. Lower is better; a perfect drawing of a path graph
/// scores near 0.
pub fn stress(engine: &LayoutEngine) -> f64 {
    let keys: Vec<_> = engine.positions().map(|(k, _)| k).collect();
    let index: std::collections::HashMap<_, _> =
        keys.iter().enumerate().map(|(i, &k)| (k, i)).collect();
    let n = keys.len();
    if n < 2 {
        return 0.0;
    }
    // Adjacency.
    let mut adj = vec![Vec::new(); n];
    for (a, b) in engine.edges() {
        let (ia, ib) = (index[&a], index[&b]);
        adj[ia].push(ib);
        adj[ib].push(ia);
    }
    let l = engine.config().spring_length;
    let mut total = 0.0;
    let mut pairs = 0usize;
    for start in 0..n {
        // BFS from `start`.
        let mut dist = vec![usize::MAX; n];
        dist[start] = 0;
        let mut queue = std::collections::VecDeque::from([start]);
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u] {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        for other in (start + 1)..n {
            if dist[other] == usize::MAX {
                continue;
            }
            let ideal = l * dist[other] as f64;
            let actual = engine
                .position(keys[start])
                .unwrap()
                .distance(engine.position(keys[other]).unwrap());
            let d = dist[other] as f64;
            total += (actual - ideal) * (actual - ideal) / (d * d * l * l);
            pairs += 1;
        }
    }
    if pairs == 0 {
        0.0
    } else {
        total / pairs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::NodeKey;
    use crate::forces::LayoutConfig;

    #[test]
    fn crossing_detection() {
        // An X.
        assert!(segments_cross(
            Vec2::new(0.0, 0.0),
            Vec2::new(2.0, 2.0),
            Vec2::new(0.0, 2.0),
            Vec2::new(2.0, 0.0)
        ));
        // Parallel.
        assert!(!segments_cross(
            Vec2::new(0.0, 0.0),
            Vec2::new(2.0, 0.0),
            Vec2::new(0.0, 1.0),
            Vec2::new(2.0, 1.0)
        ));
        // Shared endpoint.
        assert!(!segments_cross(
            Vec2::new(0.0, 0.0),
            Vec2::new(2.0, 2.0),
            Vec2::new(0.0, 0.0),
            Vec2::new(2.0, 0.0)
        ));
    }

    fn fixed_engine(positions: &[(u64, f64, f64)], edges: &[(u64, u64)]) -> LayoutEngine {
        let mut e = LayoutEngine::new(LayoutConfig::default(), 1);
        for &(k, x, y) in positions {
            e.add_node_at(NodeKey(k), 1.0, Vec2::new(x, y));
        }
        for &(a, b) in edges {
            e.add_edge(NodeKey(a), NodeKey(b));
        }
        e
    }

    #[test]
    fn crossing_count_on_known_drawings() {
        // A square cycle drawn properly: 0 crossings.
        let square = fixed_engine(
            &[(0, 0.0, 0.0), (1, 1.0, 0.0), (2, 1.0, 1.0), (3, 0.0, 1.0)],
            &[(0, 1), (1, 2), (2, 3), (3, 0)],
        );
        assert_eq!(crossing_count(&square), 0);
        // The same cycle drawn with a twist: the two diagonals cross.
        let twisted = fixed_engine(
            &[(0, 0.0, 0.0), (1, 1.0, 0.0), (2, 0.0, 1.0), (3, 1.0, 1.0)],
            &[(0, 1), (1, 2), (2, 3), (3, 0)],
        );
        assert_eq!(crossing_count(&twisted), 1);
    }

    #[test]
    fn mean_edge_length_and_area() {
        let e = fixed_engine(
            &[(0, 0.0, 0.0), (1, 3.0, 4.0), (2, 6.0, 8.0)],
            &[(0, 1), (1, 2)],
        );
        assert_eq!(mean_edge_length(&e), 5.0);
        assert_eq!(bounding_area(&e), 48.0);
        let empty = fixed_engine(&[], &[]);
        assert_eq!(mean_edge_length(&empty), 0.0);
        assert_eq!(bounding_area(&empty), 0.0);
    }

    #[test]
    fn stress_of_ideal_path_is_low() {
        let l = LayoutConfig::default().spring_length;
        let ideal = fixed_engine(
            &[(0, 0.0, 0.0), (1, l, 0.0), (2, 2.0 * l, 0.0)],
            &[(0, 1), (1, 2)],
        );
        assert!(stress(&ideal) < 1e-12);
        // Folding the path doubles nodes over: stress rises.
        let folded = fixed_engine(
            &[(0, 0.0, 0.0), (1, l, 0.0), (2, 0.0, 0.1)],
            &[(0, 1), (1, 2)],
        );
        assert!(stress(&folded) > 0.1);
    }

    #[test]
    fn relaxed_layout_beats_random_layout_on_stress() {
        let mut random = LayoutEngine::new(LayoutConfig::default(), 3);
        for i in 0..16 {
            random.add_node(NodeKey(i), 1.0);
        }
        for i in 0..15 {
            random.add_edge(NodeKey(i), NodeKey(i + 1));
        }
        let before = stress(&random);
        let mut relaxed = random.clone();
        relaxed.run(2000, 1e-6);
        let after = stress(&relaxed);
        assert!(after < before, "relaxation should reduce stress: {before} -> {after}");
    }
}
