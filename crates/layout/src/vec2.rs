//! Minimal 2-D vector algebra for the layout engine.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A 2-D vector / point.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// Horizontal component.
    pub x: f64,
    /// Vertical component.
    pub y: f64,
}

/// The origin.
pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

impl Vec2 {
    /// Creates the vector `(x, y)`.
    pub fn new(x: f64, y: f64) -> Vec2 {
        Vec2 { x, y }
    }

    /// Euclidean norm.
    pub fn length(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Squared norm (cheaper than [`Vec2::length`]).
    pub fn length_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Unit vector in this direction, or zero for the zero vector.
    pub fn normalized(self) -> Vec2 {
        let l = self.length();
        if l > 0.0 {
            self / l
        } else {
            ZERO
        }
    }

    /// Dot product.
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Distance to another point.
    pub fn distance(self, other: Vec2) -> f64 {
        (self - other).length()
    }

    /// Componentwise minimum.
    pub fn min(self, other: Vec2) -> Vec2 {
        Vec2::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Componentwise maximum.
    pub fn max(self, other: Vec2) -> Vec2 {
        Vec2::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// Whether both components are finite.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    pub fn lerp(self, other: Vec2, t: f64) -> Vec2 {
        self + (other - self) * t
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    fn add(self, o: Vec2) -> Vec2 {
        Vec2::new(self.x + o.x, self.y + o.y)
    }
}

impl AddAssign for Vec2 {
    fn add_assign(&mut self, o: Vec2) {
        self.x += o.x;
        self.y += o.y;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, o: Vec2) -> Vec2 {
        Vec2::new(self.x - o.x, self.y - o.y)
    }
}

impl SubAssign for Vec2 {
    fn sub_assign(&mut self, o: Vec2) {
        self.x -= o.x;
        self.y -= o.y;
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    fn mul(self, s: f64) -> Vec2 {
        Vec2::new(self.x * s, self.y * s)
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    fn div(self, s: f64) -> Vec2 {
        Vec2::new(self.x / s, self.y / s)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a + b, Vec2::new(4.0, 1.0));
        assert_eq!(a - b, Vec2::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(b / 2.0, Vec2::new(1.5, -0.5));
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn norms_and_distance() {
        let v = Vec2::new(3.0, 4.0);
        assert_eq!(v.length(), 5.0);
        assert_eq!(v.length_sq(), 25.0);
        assert_eq!(v.normalized().length(), 1.0);
        assert_eq!(ZERO.normalized(), ZERO);
        assert_eq!(Vec2::new(1.0, 1.0).distance(Vec2::new(4.0, 5.0)), 5.0);
        assert_eq!(v.dot(Vec2::new(1.0, 0.0)), 3.0);
    }

    #[test]
    fn lerp_and_bounds() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(10.0, 20.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec2::new(5.0, 10.0));
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert!(a.is_finite());
        assert!(!Vec2::new(f64::NAN, 0.0).is_finite());
    }
}
