//! Force model and its interactive parameters.
//!
//! The three knobs mirror the paper's §4.2 sliders exactly:
//! **charge** (Coulomb repulsion), **spring** (Hooke attraction) and
//! **damping** (velocity decay).

use crate::vec2::Vec2;

/// Parameters of the force-directed simulation.
///
/// All fields are public: the analyst tunes them live through sliders
/// (paper Fig. 5) and the engine picks the new values up on the next
/// step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayoutConfig {
    /// Coulomb constant multiplying `qᵢ·qⱼ / d²`. "Higher their value,
    /// more disperse the nodes are in the view."
    pub repulsion: f64,
    /// Hooke constant of edge springs.
    pub spring: f64,
    /// Natural spring length (the rest distance of connected nodes).
    pub spring_length: f64,
    /// Velocity retained per step, in `(0, 1]`. Lower values "make the
    /// algorithm converge faster, or ... stop it".
    pub damping: f64,
    /// Barnes-Hut opening angle θ; 0 = exact.
    pub theta: f64,
    /// Integration time step.
    pub dt: f64,
    /// Distance clamp for the repulsion singularity.
    pub min_distance: f64,
    /// Hard cap on per-step node displacement (numerical guard).
    pub max_displacement: f64,
    /// Node count below which the auto thread policy keeps the
    /// repulsion pass serial. BENCH_interactivity.json measured the
    /// parallel pass *slower* than serial at 500 hosts (142.9 ms vs
    /// 124.6 ms over 60 steps): scoped-thread spawn and cache traffic
    /// dwarf the per-node Barnes-Hut work until layouts grow well past
    /// that. An explicit `set_parallelism` policy overrides this.
    pub parallel_threshold: usize,
}

impl Default for LayoutConfig {
    fn default() -> Self {
        LayoutConfig {
            repulsion: 100.0,
            spring: 2.0,
            spring_length: 10.0,
            damping: 0.6,
            theta: 0.7,
            dt: 0.05,
            min_distance: 0.05,
            max_displacement: 25.0,
            parallel_threshold: 1024,
        }
    }
}

impl LayoutConfig {
    /// Validates the parameter set, returning `self` for chaining.
    ///
    /// # Panics
    ///
    /// Panics when any parameter is non-finite, `damping` is outside
    /// `(0, 1]`, or a scale parameter is non-positive.
    pub fn validated(self) -> LayoutConfig {
        assert!(self.repulsion.is_finite() && self.repulsion >= 0.0);
        assert!(self.spring.is_finite() && self.spring >= 0.0);
        assert!(self.spring_length.is_finite() && self.spring_length > 0.0);
        assert!(self.damping.is_finite() && self.damping > 0.0 && self.damping <= 1.0);
        assert!(self.theta.is_finite() && self.theta >= 0.0);
        assert!(self.dt.is_finite() && self.dt > 0.0);
        assert!(self.min_distance.is_finite() && self.min_distance > 0.0);
        assert!(self.max_displacement.is_finite() && self.max_displacement > 0.0);
        // parallel_threshold: every usize is legal (0 = always fork).
        self
    }

    /// Repairs the parameter set instead of panicking: non-finite
    /// fields fall back to their defaults and finite values are clamped
    /// into their legal range. A configuration that already passes
    /// [`validated`](LayoutConfig::validated) comes back bit-identical,
    /// so sanitizing on every step never perturbs a healthy layout.
    ///
    /// This is the slider trust boundary: the engine consumes whatever
    /// the UI hands it without ever aborting the session.
    pub fn sanitized(self) -> LayoutConfig {
        let d = LayoutConfig::default();
        fn nonneg(v: f64, fallback: f64) -> f64 {
            if v.is_finite() {
                v.max(0.0)
            } else {
                fallback
            }
        }
        fn positive(v: f64, fallback: f64) -> f64 {
            if v.is_finite() && v > 0.0 {
                v
            } else {
                fallback
            }
        }
        LayoutConfig {
            repulsion: nonneg(self.repulsion, d.repulsion),
            spring: nonneg(self.spring, d.spring),
            spring_length: positive(self.spring_length, d.spring_length),
            damping: positive(self.damping, d.damping).min(1.0),
            theta: nonneg(self.theta, d.theta),
            dt: positive(self.dt, d.dt),
            min_distance: positive(self.min_distance, d.min_distance),
            max_displacement: positive(self.max_displacement, d.max_displacement),
            parallel_threshold: self.parallel_threshold,
        }
    }
}

/// Hooke spring force on the node at `at`, attached to `other`:
/// `-k · (d - L) · û`. Attractive beyond the natural length `L`,
/// repulsive when compressed.
pub fn spring_force(at: Vec2, other: Vec2, k: f64, natural_length: f64) -> Vec2 {
    let delta = at - other;
    let d = delta.length();
    if d == 0.0 {
        return Vec2::default(); // coincident: repulsion will separate them
    }
    let stretch = d - natural_length;
    (delta / d) * (-k * stretch)
}

/// A deterministic pseudo-random unit vector derived from `salt`.
///
/// Exactly coincident nodes have no geometric direction to repel
/// along; pushing them all the same way (say `+x`) would keep them
/// coincident *with each other* forever. Hashing each probe's index
/// into its own escape direction separates the pile-up in one step
/// while keeping layouts reproducible.
pub fn jitter_direction(salt: u64) -> Vec2 {
    // SplitMix64 finalizer: cheap, stateless, well mixed.
    let mut z = salt.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    let angle = std::f64::consts::TAU * (z >> 11) as f64 / (1u64 << 53) as f64;
    Vec2::new(angle.cos(), angle.sin())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        let _ = LayoutConfig::default().validated();
    }

    #[test]
    #[should_panic]
    fn zero_damping_rejected() {
        let _ = LayoutConfig { damping: 0.0, ..Default::default() }.validated();
    }

    #[test]
    fn sanitized_is_identity_on_valid_configs() {
        let cfg = LayoutConfig { repulsion: 37.5, damping: 1.0, ..Default::default() };
        assert_eq!(cfg.sanitized(), cfg);
        assert_eq!(LayoutConfig::default().sanitized(), LayoutConfig::default());
    }

    #[test]
    fn sanitized_repairs_hostile_sliders() {
        let cfg = LayoutConfig {
            repulsion: f64::NAN,
            spring: -3.0,
            spring_length: 0.0,
            damping: f64::INFINITY,
            theta: -1.0,
            dt: f64::NEG_INFINITY,
            min_distance: -0.5,
            max_displacement: f64::NAN,
            parallel_threshold: 0,
        }
        .sanitized();
        // Sanitized output always passes full validation.
        let _ = cfg.validated();
        let d = LayoutConfig::default();
        assert_eq!(cfg.repulsion, d.repulsion);
        assert_eq!(cfg.spring, 0.0, "negative clamps to zero");
        assert_eq!(cfg.spring_length, d.spring_length);
        assert_eq!(cfg.damping, d.damping, "non-finite damping falls back");
        assert_eq!(cfg.theta, 0.0);
        assert_eq!(cfg.dt, d.dt);
        assert_eq!(cfg.min_distance, d.min_distance);
        assert_eq!(cfg.max_displacement, d.max_displacement);
        // Finite but over-unity damping clamps to the legal ceiling.
        let over = LayoutConfig { damping: 2.0, ..Default::default() }.sanitized();
        assert_eq!(over.damping, 1.0);
        // The thread threshold has no illegal values and passes through.
        assert_eq!(cfg.parallel_threshold, 0);
    }

    /// The measured regression this knob exists for: at 500 hosts the
    /// parallel repulsion pass was slower than serial, so the default
    /// auto policy must stay serial there.
    #[test]
    fn default_threshold_keeps_500_hosts_serial() {
        assert!(LayoutConfig::default().parallel_threshold > 500);
    }

    #[test]
    fn stretched_spring_attracts() {
        let f = spring_force(Vec2::new(20.0, 0.0), Vec2::new(0.0, 0.0), 1.0, 10.0);
        // Stretched by 10 beyond natural length: pull toward the other
        // node (negative x).
        assert!((f.x + 10.0).abs() < 1e-12);
        assert_eq!(f.y, 0.0);
    }

    #[test]
    fn compressed_spring_repels() {
        let f = spring_force(Vec2::new(5.0, 0.0), Vec2::new(0.0, 0.0), 1.0, 10.0);
        assert!(f.x > 0.0);
    }

    #[test]
    fn rest_length_is_equilibrium() {
        let f = spring_force(Vec2::new(10.0, 0.0), Vec2::new(0.0, 0.0), 3.0, 10.0);
        assert!(f.length() < 1e-12);
    }

    #[test]
    fn coincident_nodes_no_spring_force() {
        let p = Vec2::new(1.0, 1.0);
        assert_eq!(spring_force(p, p, 1.0, 10.0), Vec2::default());
    }
}
