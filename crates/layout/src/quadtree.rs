//! Barnes-Hut quadtree: `O(n log n)` approximate n-body repulsion.
//!
//! The paper (§3.3) adopts "the scalable Barnes-Hut algorithm —
//! O(n log n)" over the basic `O(n²)` force computation. The tree
//! recursively subdivides the bounding square of the charged nodes;
//! a query against a far-away cell (cell size / distance below the
//! opening angle `θ`) is answered with the cell's aggregate charge at
//! its charge-weighted centroid instead of recursing.

use crate::vec2::Vec2;

const MAX_DEPTH: usize = 32;

#[derive(Debug, Clone)]
struct Cell {
    /// Center of the square region.
    center: Vec2,
    /// Half the side length.
    half: f64,
    /// Total charge in the cell.
    charge: f64,
    /// Charge-weighted centroid of the cell.
    centroid: Vec2,
    /// Index of the first child cell (children are contiguous:
    /// `child + quadrant`), or `usize::MAX` for leaves.
    child: usize,
    /// Index of the stored point for occupied leaves (`usize::MAX`
    /// otherwise).
    point: usize,
}

impl Cell {
    fn new(center: Vec2, half: f64) -> Cell {
        Cell {
            center,
            half,
            charge: 0.0,
            centroid: Vec2::default(),
            child: usize::MAX,
            point: usize::MAX,
        }
    }

    fn is_leaf(&self) -> bool {
        self.child == usize::MAX
    }

    fn quadrant(&self, p: Vec2) -> usize {
        (usize::from(p.x >= self.center.x)) | (usize::from(p.y >= self.center.y) << 1)
    }

    fn child_center(&self, quadrant: usize) -> Vec2 {
        let q = self.half / 2.0;
        Vec2::new(
            self.center.x + if quadrant & 1 == 1 { q } else { -q },
            self.center.y + if quadrant & 2 == 2 { q } else { -q },
        )
    }
}

/// A built Barnes-Hut quadtree over a set of charged points.
#[derive(Debug, Clone)]
pub struct QuadTree {
    cells: Vec<Cell>,
    points: Vec<(Vec2, f64)>,
}

impl QuadTree {
    /// Builds the tree over `(position, charge)` points.
    ///
    /// Coincident points are merged into the deepest cell (bounded
    /// subdivision), which keeps construction `O(n log n)` even on
    /// degenerate inputs.
    pub fn build(points: &[(Vec2, f64)]) -> QuadTree {
        let mut tree = QuadTree { cells: Vec::new(), points: points.to_vec() };
        if points.is_empty() {
            return tree;
        }
        let mut lo = points[0].0;
        let mut hi = points[0].0;
        for &(p, _) in points {
            lo = lo.min(p);
            hi = hi.max(p);
        }
        let center = (lo + hi) * 0.5;
        let half = ((hi - lo).x.max((hi - lo).y) / 2.0).max(1e-9) * 1.0001;
        tree.cells.push(Cell::new(center, half));
        for i in 0..points.len() {
            tree.insert(0, i, 0);
        }
        tree.finalize(0);
        tree
    }

    fn insert(&mut self, cell: usize, point: usize, depth: usize) {
        let p = self.points[point].0;
        if self.cells[cell].is_leaf() {
            if self.cells[cell].point == usize::MAX {
                self.cells[cell].point = point;
                return;
            }
            if depth >= MAX_DEPTH {
                // Degenerate (coincident) points: merge charges into
                // the resident point.
                let resident = self.cells[cell].point;
                self.points[resident].1 += self.points[point].1;
                return;
            }
            // Split: push 4 children, reinsert the resident point.
            let child = self.cells.len();
            for q in 0..4 {
                let c = Cell::new(self.cells[cell].child_center(q), self.cells[cell].half / 2.0);
                self.cells.push(c);
            }
            let resident = self.cells[cell].point;
            self.cells[cell].child = child;
            self.cells[cell].point = usize::MAX;
            let rq = self.cells[cell].quadrant(self.points[resident].0);
            self.insert(child + rq, resident, depth + 1);
        }
        let q = self.cells[cell].quadrant(p);
        let child = self.cells[cell].child;
        self.insert(child + q, point, depth + 1);
    }

    /// Computes aggregate charge and centroid bottom-up.
    fn finalize(&mut self, cell: usize) {
        if self.cells[cell].is_leaf() {
            if self.cells[cell].point != usize::MAX {
                let (p, q) = self.points[self.cells[cell].point];
                self.cells[cell].charge = q;
                self.cells[cell].centroid = p;
            }
            return;
        }
        let child = self.cells[cell].child;
        let mut charge = 0.0;
        let mut weighted = Vec2::default();
        for q in 0..4 {
            self.finalize(child + q);
            let c = &self.cells[child + q];
            charge += c.charge;
            weighted += c.centroid * c.charge;
        }
        self.cells[cell].charge = charge;
        self.cells[cell].centroid = if charge != 0.0 {
            weighted / charge
        } else {
            self.cells[cell].center
        };
    }

    /// Number of tree cells (diagnostics).
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Total charge stored in the tree.
    pub fn total_charge(&self) -> f64 {
        self.cells.first().map_or(0.0, |c| c.charge)
    }

    /// The approximate Coulomb repulsion exerted by all points on a
    /// probe of charge `charge` at `at`, excluding the point stored at
    /// index `exclude` (pass `usize::MAX` to include everything).
    ///
    /// `theta` is the opening angle: 0 degrades to exact `O(n)` per
    /// query; larger values are faster and coarser (0.5–1.0 typical).
    /// `min_dist` clamps the singularity at zero distance.
    pub fn repulsion(
        &self,
        at: Vec2,
        charge: f64,
        exclude: usize,
        theta: f64,
        min_dist: f64,
    ) -> Vec2 {
        if self.cells.is_empty() {
            return Vec2::default();
        }
        let mut force = Vec2::default();
        // Explicit stack to avoid recursion overhead.
        let mut stack = vec![0usize];
        while let Some(ci) = stack.pop() {
            let cell = &self.cells[ci];
            if cell.charge == 0.0 {
                continue;
            }
            if cell.is_leaf() {
                if cell.point != usize::MAX && cell.point != exclude {
                    force +=
                        coulomb(at, cell.centroid, charge * cell.charge, min_dist, exclude as u64);
                }
                continue;
            }
            let d = at.distance(cell.centroid);
            if cell.half * 2.0 < theta * d {
                // Far enough: treat the cell as a single macro-charge.
                // (A cell containing the excluded point is never "far"
                // in practice because the probe sits inside it; the
                // approximation error this introduces is part of the
                // Barnes-Hut contract.)
                force += coulomb(at, cell.centroid, charge * cell.charge, min_dist, exclude as u64);
            } else {
                for q in 0..4 {
                    stack.push(cell.child + q);
                }
            }
        }
        force
    }

    /// [`repulsion`](QuadTree::repulsion) plus a work tally: the number
    /// of Coulomb evaluations performed (leaf points + macro-cells the
    /// opening-angle test accepted). The observability layer compares
    /// this against the naive `n·(n-1)` pair count to show the paper's
    /// Barnes-Hut trade-off (§3.3) as a live metric instead of a claim.
    ///
    /// Kept separate from the uncounted query so the metrics-off hot
    /// path carries no tally arithmetic at all.
    pub fn repulsion_counted(
        &self,
        at: Vec2,
        charge: f64,
        exclude: usize,
        theta: f64,
        min_dist: f64,
    ) -> (Vec2, u64) {
        if self.cells.is_empty() {
            return (Vec2::default(), 0);
        }
        let mut force = Vec2::default();
        let mut visits = 0u64;
        let mut stack = vec![0usize];
        while let Some(ci) = stack.pop() {
            let cell = &self.cells[ci];
            if cell.charge == 0.0 {
                continue;
            }
            if cell.is_leaf() {
                if cell.point != usize::MAX && cell.point != exclude {
                    force +=
                        coulomb(at, cell.centroid, charge * cell.charge, min_dist, exclude as u64);
                    visits += 1;
                }
                continue;
            }
            let d = at.distance(cell.centroid);
            if cell.half * 2.0 < theta * d {
                force += coulomb(at, cell.centroid, charge * cell.charge, min_dist, exclude as u64);
                visits += 1;
            } else {
                for q in 0..4 {
                    stack.push(cell.child + q);
                }
            }
        }
        (force, visits)
    }
}

/// Coulomb repulsion exerted on a probe at `at` by a charge at `from`,
/// with product of charges `qq`: magnitude `qq / d²` pointing away from
/// `from`. `min_dist > 0` clamps the distance so the magnitude stays
/// finite; for an *exactly* coincident pair the direction is a
/// deterministic pseudo-random unit vector derived from `salt` (the
/// probe's index), so piles of identical positions fan out instead of
/// marching in lockstep — and no `0/0` NaN can form.
pub fn coulomb(at: Vec2, from: Vec2, qq: f64, min_dist: f64, salt: u64) -> Vec2 {
    let delta = at - from;
    let d = delta.length().max(min_dist);
    let dir = if delta.length() > 0.0 {
        delta / delta.length()
    } else {
        crate::forces::jitter_direction(salt)
    };
    dir * (qq / (d * d))
}

/// Exact `O(n²)`-style repulsion on one probe (reference
/// implementation used by tests and the naive engine step).
pub fn naive_repulsion(
    points: &[(Vec2, f64)],
    at: Vec2,
    charge: f64,
    exclude: usize,
    min_dist: f64,
) -> Vec2 {
    let mut force = Vec2::default();
    for (j, &(p, q)) in points.iter().enumerate() {
        if j != exclude {
            force += coulomb(at, p, charge * q, min_dist, exclude as u64);
        }
    }
    force
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<(Vec2, f64)> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                (
                    Vec2::new(rng.gen_range(-100.0..100.0), rng.gen_range(-100.0..100.0)),
                    rng.gen_range(0.5..4.0),
                )
            })
            .collect()
    }

    #[test]
    fn empty_tree_is_inert() {
        let t = QuadTree::build(&[]);
        assert_eq!(t.total_charge(), 0.0);
        assert_eq!(
            t.repulsion(Vec2::new(1.0, 1.0), 1.0, usize::MAX, 0.7, 0.01),
            Vec2::default()
        );
    }

    #[test]
    fn single_point_repels_probe() {
        let t = QuadTree::build(&[(Vec2::new(0.0, 0.0), 2.0)]);
        let f = t.repulsion(Vec2::new(3.0, 0.0), 1.0, usize::MAX, 0.7, 0.01);
        // Magnitude 2/9 along +x.
        assert!((f.x - 2.0 / 9.0).abs() < 1e-12);
        assert_eq!(f.y, 0.0);
    }

    #[test]
    fn total_charge_is_preserved() {
        let pts = random_points(200, 1);
        let t = QuadTree::build(&pts);
        let expect: f64 = pts.iter().map(|&(_, q)| q).sum();
        assert!((t.total_charge() - expect).abs() < 1e-9);
    }

    #[test]
    fn theta_zero_matches_naive_exactly() {
        let pts = random_points(64, 2);
        let t = QuadTree::build(&pts);
        for (i, &(p, q)) in pts.iter().enumerate() {
            let exact = naive_repulsion(&pts, p, q, i, 0.01);
            let approx = t.repulsion(p, q, i, 0.0, 0.01);
            assert!(
                (exact - approx).length() < 1e-9 * exact.length().max(1.0),
                "mismatch at {i}: {exact:?} vs {approx:?}"
            );
        }
    }

    #[test]
    fn barnes_hut_approximates_naive() {
        let pts = random_points(300, 3);
        let t = QuadTree::build(&pts);
        // Normalize by the typical force magnitude: nodes in the bulk
        // have a near-zero *net* force (everything cancels), so a
        // per-node relative error is meaningless there.
        let exact: Vec<Vec2> = pts
            .iter()
            .enumerate()
            .map(|(i, &(p, q))| naive_repulsion(&pts, p, q, i, 0.01))
            .collect();
        let typical =
            exact.iter().map(|f| f.length()).sum::<f64>() / pts.len() as f64;
        let mut worst = 0.0f64;
        let mut total = 0.0f64;
        for (i, &(p, q)) in pts.iter().enumerate() {
            let approx = t.repulsion(p, q, i, 0.5, 0.01);
            let err = (exact[i] - approx).length();
            worst = worst.max(err);
            total += err;
        }
        let mean = total / pts.len() as f64;
        // The *mean* error must be small; the worst single node can be
        // much worse (θ=0.5 on a clustered sample where the net force
        // nearly cancels), so only bound it loosely.
        assert!(
            mean < 0.05 * typical,
            "mean abs error {mean} vs typical magnitude {typical}"
        );
        assert!(
            worst < typical,
            "worst abs error {worst} vs typical magnitude {typical}"
        );
    }

    #[test]
    fn coincident_points_do_not_hang() {
        let p = Vec2::new(1.0, 1.0);
        let pts = vec![(p, 1.0); 10];
        let t = QuadTree::build(&pts);
        assert!((t.total_charge() - 10.0).abs() < 1e-9);
        // A probe elsewhere feels all ten charges.
        let f = t.repulsion(Vec2::new(4.0, 1.0), 1.0, usize::MAX, 0.7, 0.01);
        assert!((f.x - 10.0 / 9.0).abs() < 1e-6);
    }

    #[test]
    fn coulomb_coincident_probe_is_deterministic_and_finite() {
        let p = Vec2::new(1.0, 1.0);
        let f = coulomb(p, p, 4.0, 0.1, 3);
        assert_eq!(f, coulomb(p, p, 4.0, 0.1, 3), "same salt, same direction");
        assert!(f.x.is_finite() && f.y.is_finite());
        // Magnitude is the clamped 4/0.1² regardless of direction.
        assert!((f.length() - 400.0).abs() < 1e-9, "{f}");
        // Different salts escape in different directions.
        assert!((f - coulomb(p, p, 4.0, 0.1, 4)).length() > 1.0);
    }

    #[test]
    fn counted_repulsion_matches_uncounted_and_beats_naive() {
        let pts = random_points(400, 5);
        let t = QuadTree::build(&pts);
        let mut total_visits = 0u64;
        for (i, &(p, q)) in pts.iter().enumerate() {
            let plain = t.repulsion(p, q, i, 0.7, 0.01);
            let (counted, visits) = t.repulsion_counted(p, q, i, 0.7, 0.01);
            assert_eq!(plain, counted, "tally must not change the force at {i}");
            assert!(visits > 0 && visits < pts.len() as u64);
            total_visits += visits;
        }
        let naive_pairs = (pts.len() * (pts.len() - 1)) as u64;
        assert!(
            total_visits < naive_pairs / 2,
            "θ=0.7 should prune well below naive: {total_visits} vs {naive_pairs}"
        );
        // θ=0 degrades to exactly the naive pair count.
        let (_, exact_visits) = t.repulsion_counted(pts[0].0, pts[0].1, 0, 0.0, 0.01);
        assert_eq!(exact_visits, pts.len() as u64 - 1);
    }

    #[test]
    fn cell_count_is_linearithmic_ish() {
        let pts = random_points(1000, 4);
        let t = QuadTree::build(&pts);
        // Loose sanity bound: a quadtree over n well-spread points has
        // O(n) cells.
        assert!(t.cell_count() < 20 * pts.len(), "{} cells", t.cell_count());
    }
}
