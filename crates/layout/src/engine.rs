//! The dynamic layout engine: node/edge bookkeeping, force
//! integration, pinning, and smooth aggregation morphs.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use viva_obs::{Counter, Gauge, Histogram, Recorder};

use crate::forces::{spring_force, LayoutConfig};
use crate::quadtree::{naive_repulsion, QuadTree};
use crate::vec2::Vec2;

/// Why the watchdog froze a layout (see
/// [`LayoutEngine::freeze_reason`]).
///
/// A frozen layout keeps serving positions — the last healthy frame —
/// but [`step`](LayoutEngine::step) becomes a no-op until
/// [`thaw`](LayoutEngine::thaw)ed. Freezing is the degradation path for
/// pathological inputs: the view stays up instead of filling with NaNs
/// or marching off to infinity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FreezeReason {
    /// A force evaluated to NaN/∞ (e.g. a non-finite node charge fed
    /// in by a degenerate aggregate). Positions were left untouched.
    NonFiniteForce,
    /// The iteration watchdog: every node displacement has ridden the
    /// `max_displacement` cap for many consecutive steps — the
    /// simulation is diverging, not converging.
    RunawayDisplacement,
    /// The opt-in wall-clock watchdog: a single step overran the
    /// budget set via [`LayoutEngine::set_step_budget`].
    StepBudgetExceeded,
}

impl FreezeReason {
    /// Stable machine-readable token, used by obs events and the wire
    /// protocol's `stats` response (the [`Display`](std::fmt::Display)
    /// form is for humans).
    pub fn token(&self) -> &'static str {
        match self {
            FreezeReason::NonFiniteForce => "non_finite_force",
            FreezeReason::RunawayDisplacement => "runaway_displacement",
            FreezeReason::StepBudgetExceeded => "step_budget_exceeded",
        }
    }
}

impl std::fmt::Display for FreezeReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FreezeReason::NonFiniteForce => "non-finite force",
            FreezeReason::RunawayDisplacement => "runaway displacement",
            FreezeReason::StepBudgetExceeded => "step wall-clock budget exceeded",
        })
    }
}

/// Caller-chosen stable identifier of a layout node (the visualization
/// layer uses trace container ids).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeKey(pub u64);

#[derive(Debug, Clone)]
struct Node {
    key: NodeKey,
    pos: Vec2,
    vel: Vec2,
    charge: f64,
    pinned: bool,
}

/// A dynamic force-directed layout.
///
/// Node positions evolve one [`step`](LayoutEngine::step) at a time;
/// topology changes (add/remove/merge/split) take effect immediately
/// and the ongoing iteration smoothly absorbs them — the property the
/// paper relies on for non-confusing aggregation (§3.3).
#[derive(Debug, Clone)]
pub struct LayoutEngine {
    config: LayoutConfig,
    nodes: Vec<Node>,
    index: HashMap<NodeKey, usize>,
    // BTreeSet: deterministic iteration order makes force summation
    // order (and hence floating-point results) reproducible.
    edges: BTreeSet<(NodeKey, NodeKey)>,
    rng: SmallRng,
    steps: u64,
    /// Worker threads for the repulsion pass: `None` = auto (hardware
    /// parallelism above a size threshold), `Some(1)` = serial,
    /// `Some(n)` = exactly `n` threads.
    threads: Option<usize>,
    /// Watchdog state: `Some` while frozen.
    frozen: Option<FreezeReason>,
    /// Opt-in wall-clock budget per step (`None` = unlimited, the
    /// default — wall-clock decisions are machine-dependent and would
    /// break byte-determinism across hosts if always on).
    step_budget: Option<Duration>,
    /// Consecutive steps whose max displacement rode the cap.
    at_cap_streak: u32,
    /// Cached metric handles; `None` until a live recorder is wired via
    /// [`set_recorder`](LayoutEngine::set_recorder), keeping the
    /// metrics-off hot path free of even the no-op handle calls.
    obs: Option<Box<LayoutObs>>,
}

/// Pre-resolved metric handles for the per-step hot path (a registry
/// lookup per step would dwarf the cost of the metrics themselves).
#[derive(Debug, Clone)]
struct LayoutObs {
    recorder: Recorder,
    /// `layout.steps` — simulation steps actually executed.
    steps: Counter,
    /// `layout.kinetic_energy` — mean kinetic energy after the last
    /// step: the convergence signal behind the paper's Fig. 5 sliders.
    kinetic: Gauge,
    /// `layout.max_displacement` — largest node move in the last step.
    max_disp: Gauge,
    /// `layout.bh.cell_visits` — Coulomb evaluations the quadtree
    /// actually performed.
    cell_visits: Counter,
    /// `layout.bh.naive_pairs` — what the exact `O(n²)` pass would have
    /// evaluated; the ratio to `cell_visits` is the live Barnes-Hut
    /// speedup.
    naive_pairs: Counter,
    /// `layout.freezes` — watchdog trips.
    freezes: Counter,
    /// `layout.step.seconds` — wall-clock per step (exposition only;
    /// never crosses the wire protocol).
    step_seconds: Histogram,
}

impl LayoutObs {
    fn new(recorder: Recorder) -> LayoutObs {
        LayoutObs {
            steps: recorder.counter("layout.steps"),
            kinetic: recorder.gauge("layout.kinetic_energy"),
            max_disp: recorder.gauge("layout.max_displacement"),
            cell_visits: recorder.counter("layout.bh.cell_visits"),
            naive_pairs: recorder.counter("layout.bh.naive_pairs"),
            freezes: recorder.counter("layout.freezes"),
            step_seconds: recorder.histogram("layout.step.seconds"),
            recorder,
        }
    }
}

/// Consecutive at-cap steps before the iteration watchdog declares
/// divergence. Healthy layouts ride the displacement cap briefly (a
/// dragged node snapping back, a freshly split aggregate fanning out);
/// a diverging one never leaves it.
const RUNAWAY_STREAK: u32 = 128;

impl LayoutEngine {
    /// Creates an empty layout. `seed` drives initial node placement
    /// (two engines with equal seeds and operation sequences produce
    /// identical layouts).
    ///
    /// Invalid `config` values are repaired via
    /// [`LayoutConfig::sanitized`] rather than panicking: the layout is
    /// part of the panic-free render path.
    pub fn new(config: LayoutConfig, seed: u64) -> LayoutEngine {
        LayoutEngine {
            config: config.sanitized(),
            nodes: Vec::new(),
            index: HashMap::new(),
            edges: BTreeSet::new(),
            rng: SmallRng::seed_from_u64(seed),
            steps: 0,
            threads: None,
            frozen: None,
            step_budget: None,
            at_cap_streak: 0,
            obs: None,
        }
    }

    /// Wires an observability recorder into the engine. Disabled
    /// recorders are discarded entirely — the hot path stays exactly
    /// the uninstrumented one. Enabled recorders get per-step gauges
    /// (kinetic energy, max displacement), Barnes-Hut work counters,
    /// a step wall-clock histogram, and freeze/thaw events.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.obs = recorder.is_enabled().then(|| Box::new(LayoutObs::new(recorder)));
    }

    /// Current parameters.
    pub fn config(&self) -> &LayoutConfig {
        &self.config
    }

    /// Sets the worker-thread policy of the repulsion pass: `None` for
    /// auto (hardware parallelism once the layout outgrows a small
    /// threshold), `Some(1)` to force the serial path, `Some(n)` to
    /// force `n` threads.
    ///
    /// Parallelism never changes results: every node's force is
    /// computed independently against the same read-only quadtree and
    /// written to its own slot, so the layout is byte-identical
    /// whatever the thread count (a property the tests pin down).
    pub fn set_parallelism(&mut self, threads: Option<usize>) {
        self.threads = threads.map(|t| t.max(1));
    }

    /// The current worker-thread policy (see
    /// [`set_parallelism`](LayoutEngine::set_parallelism)).
    pub fn parallelism(&self) -> Option<usize> {
        self.threads
    }

    /// Worker threads the next repulsion pass will actually use, given
    /// the current policy, node count, and the config's
    /// [`parallel_threshold`](LayoutConfig::parallel_threshold). `1`
    /// means the serial path — benches assert this stays serial at node
    /// counts where forking measured slower.
    pub fn planned_repulsion_threads(&self) -> usize {
        Self::thread_plan(
            self.threads,
            self.nodes.len(),
            self.config.sanitized().parallel_threshold,
        )
    }

    /// The thread-count decision shared by `repulsion_pass` and its
    /// public mirror above: explicit policy wins, auto stays serial
    /// below the configured threshold, and the count never exceeds the
    /// node count.
    fn thread_plan(policy: Option<usize>, n: usize, threshold: usize) -> usize {
        match policy {
            Some(t) => t,
            None if n < threshold => 1,
            None => std::thread::available_parallelism().map_or(1, |p| p.get()),
        }
        .min(n.max(1))
    }

    /// Mutable parameters — the §4.2 sliders. Values are sanitized
    /// (repaired, never panicked on) on the next
    /// [`step`](LayoutEngine::step).
    pub fn config_mut(&mut self) -> &mut LayoutConfig {
        &mut self.config
    }

    /// Whether the watchdog froze the simulation. Frozen layouts keep
    /// serving their last healthy positions; stepping is a no-op.
    pub fn is_frozen(&self) -> bool {
        self.frozen.is_some()
    }

    /// Why the layout froze, `None` while running.
    pub fn freeze_reason(&self) -> Option<FreezeReason> {
        self.frozen
    }

    /// Lifts a watchdog freeze and resumes stepping. Velocities are
    /// zeroed so the resumed simulation restarts from rest instead of
    /// replaying the momentum that tripped the watchdog.
    pub fn thaw(&mut self) {
        if let (Some(obs), Some(reason)) = (&self.obs, self.frozen) {
            obs.recorder.event("layout.thaw", reason.token());
        }
        self.frozen = None;
        self.at_cap_streak = 0;
        for n in &mut self.nodes {
            n.vel = Vec2::default();
        }
    }

    /// Sets the opt-in wall-clock budget for a single step. When a
    /// step overruns it, the engine freezes with
    /// [`FreezeReason::StepBudgetExceeded`] (the completed step's
    /// positions are kept — the freeze stops *further* work).
    ///
    /// Default `None`: no wall-clock watchdog. Leaving it off keeps
    /// layouts byte-deterministic across machines and thread counts;
    /// interactive front-ends with a frame deadline opt in.
    pub fn set_step_budget(&mut self, budget: Option<Duration>) {
        self.step_budget = budget;
    }

    /// The current per-step wall-clock budget.
    pub fn step_budget(&self) -> Option<Duration> {
        self.step_budget
    }

    fn freeze(&mut self, reason: FreezeReason) {
        if self.frozen.is_none() {
            self.frozen = Some(reason);
            if let Some(obs) = &self.obs {
                obs.freezes.inc();
                obs.recorder.event("layout.freeze", reason.token());
            }
        }
        for n in &mut self.nodes {
            n.vel = Vec2::default();
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the layout has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Steps executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Adds a node with `charge` at a seeded random position near the
    /// current layout. No-op (returning `false`) when the key exists.
    pub fn add_node(&mut self, key: NodeKey, charge: f64) -> bool {
        let spread = self.config.spring_length * (self.nodes.len() as f64).sqrt().max(1.0);
        let pos = Vec2::new(
            self.rng.gen_range(-spread..=spread),
            self.rng.gen_range(-spread..=spread),
        );
        self.add_node_at(key, charge, pos)
    }

    /// Adds a node at an explicit position. Returns `false` when the
    /// key already exists.
    pub fn add_node_at(&mut self, key: NodeKey, charge: f64, pos: Vec2) -> bool {
        if self.index.contains_key(&key) {
            return false;
        }
        self.index.insert(key, self.nodes.len());
        self.nodes.push(Node { key, pos, vel: Vec2::default(), charge, pinned: false });
        true
    }

    /// Removes a node and its incident edges. Returns `false` for an
    /// unknown key.
    pub fn remove_node(&mut self, key: NodeKey) -> bool {
        let Some(i) = self.index.remove(&key) else {
            return false;
        };
        self.nodes.swap_remove(i);
        if i < self.nodes.len() {
            self.index.insert(self.nodes[i].key, i);
        }
        self.edges.retain(|&(a, b)| a != key && b != key);
        true
    }

    fn edge_key(a: NodeKey, b: NodeKey) -> (NodeKey, NodeKey) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Adds an undirected edge (spring). Self-edges and duplicates are
    /// ignored. Returns `true` when a new edge was inserted.
    ///
    /// # Panics
    ///
    /// Panics when either endpoint is unknown.
    pub fn add_edge(&mut self, a: NodeKey, b: NodeKey) -> bool {
        assert!(self.index.contains_key(&a), "unknown node {a:?}");
        assert!(self.index.contains_key(&b), "unknown node {b:?}");
        if a == b {
            return false;
        }
        self.edges.insert(Self::edge_key(a, b))
    }

    /// Removes an edge; returns whether it existed.
    pub fn remove_edge(&mut self, a: NodeKey, b: NodeKey) -> bool {
        self.edges.remove(&Self::edge_key(a, b))
    }

    /// Whether an edge exists.
    pub fn has_edge(&self, a: NodeKey, b: NodeKey) -> bool {
        self.edges.contains(&Self::edge_key(a, b))
    }

    /// Iterates over edges in unspecified order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeKey, NodeKey)> + '_ {
        self.edges.iter().copied()
    }

    /// Position of a node.
    pub fn position(&self, key: NodeKey) -> Option<Vec2> {
        self.index.get(&key).map(|&i| self.nodes[i].pos)
    }

    /// Charge of a node.
    pub fn charge(&self, key: NodeKey) -> Option<f64> {
        self.index.get(&key).map(|&i| self.nodes[i].charge)
    }

    /// Updates a node's charge (e.g. when its aggregate grows).
    /// Returns `false` for an unknown key.
    pub fn set_charge(&mut self, key: NodeKey, charge: f64) -> bool {
        match self.index.get(&key) {
            Some(&i) => {
                self.nodes[i].charge = charge;
                true
            }
            None => false,
        }
    }

    /// Pins a node: forces no longer move it (the analyst is holding
    /// it, or wants it anchored — "machines being on the north of the
    /// country would be put on the top of the screen", §4.2).
    pub fn pin(&mut self, key: NodeKey) -> bool {
        match self.index.get(&key) {
            Some(&i) => {
                self.nodes[i].pinned = true;
                self.nodes[i].vel = Vec2::default();
                true
            }
            None => false,
        }
    }

    /// Unpins a node.
    pub fn unpin(&mut self, key: NodeKey) -> bool {
        match self.index.get(&key) {
            Some(&i) => {
                self.nodes[i].pinned = false;
                true
            }
            None => false,
        }
    }

    /// Whether a node is pinned.
    pub fn is_pinned(&self, key: NodeKey) -> bool {
        self.index.get(&key).is_some_and(|&i| self.nodes[i].pinned)
    }

    /// Moves a node to `pos` (mouse drag). The neighbours will follow
    /// through their springs on subsequent steps. Returns `false` for
    /// an unknown key or a non-finite target position (a NaN drag
    /// would poison every force involving this node).
    pub fn move_node(&mut self, key: NodeKey, pos: Vec2) -> bool {
        if !(pos.x.is_finite() && pos.y.is_finite()) {
            return false;
        }
        match self.index.get(&key) {
            Some(&i) => {
                self.nodes[i].pos = pos;
                self.nodes[i].vel = Vec2::default();
                true
            }
            None => false,
        }
    }

    /// Iterates over `(key, position)` pairs in insertion-ish order.
    pub fn positions(&self) -> impl Iterator<Item = (NodeKey, Vec2)> + '_ {
        self.nodes.iter().map(|n| (n.key, n.pos))
    }

    /// Axis-aligned bounding box of all nodes, `None` when empty.
    pub fn bounds(&self) -> Option<(Vec2, Vec2)> {
        let first = self.nodes.first()?.pos;
        let mut lo = first;
        let mut hi = first;
        for n in &self.nodes {
            lo = lo.min(n.pos);
            hi = hi.max(n.pos);
        }
        Some((lo, hi))
    }

    /// Mean kinetic energy per node — the convergence measure.
    pub fn kinetic_energy(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        self.nodes.iter().map(|n| n.vel.length_sq()).sum::<f64>() / self.nodes.len() as f64
    }

    fn apply_forces(&mut self, forces: &[Vec2]) -> f64 {
        // Watchdog gate: one non-finite force poisons every position it
        // touches, so the whole frame is discarded and the layout
        // freezes on the last healthy state.
        if forces.iter().any(|f| !(f.x.is_finite() && f.y.is_finite())) {
            self.freeze(FreezeReason::NonFiniteForce);
            self.steps += 1;
            return 0.0;
        }
        let cfg = self.config;
        let mut max_disp: f64 = 0.0;
        let mut capped = 0usize;
        let mut movable = 0usize;
        for (n, &f) in self.nodes.iter_mut().zip(forces) {
            if n.pinned {
                n.vel = Vec2::default();
                continue;
            }
            movable += 1;
            n.vel = (n.vel + f * cfg.dt) * cfg.damping;
            let mut disp = n.vel * cfg.dt;
            let d = disp.length();
            if d > cfg.max_displacement {
                disp = disp * (cfg.max_displacement / d);
                capped += 1;
            }
            n.pos += disp;
            debug_assert!(
                n.pos.x.is_finite() && n.pos.y.is_finite(),
                "step produced a non-finite position for {:?}: {} (force {f})",
                n.key,
                n.pos,
            );
            max_disp = max_disp.max(disp.length());
        }
        self.steps += 1;
        // Iteration watchdog: a simulation whose every movable node
        // rides the displacement cap, step after step, is accelerating
        // without bound — freeze before coordinates overflow. The
        // signal is deterministic (pure f64 arithmetic, no clocks), so
        // frozen-or-not is reproducible across machines.
        if movable > 0 && capped == movable {
            self.at_cap_streak += 1;
            if self.at_cap_streak >= RUNAWAY_STREAK {
                self.freeze(FreezeReason::RunawayDisplacement);
            }
        } else {
            self.at_cap_streak = 0;
        }
        max_disp
    }

    fn spring_forces(&self, forces: &mut [Vec2]) {
        let cfg = &self.config;
        for &(a, b) in &self.edges {
            let (ia, ib) = (self.index[&a], self.index[&b]);
            let f = spring_force(
                self.nodes[ia].pos,
                self.nodes[ib].pos,
                cfg.spring,
                cfg.spring_length,
            );
            forces[ia] += f;
            forces[ib] -= f;
        }
    }

    /// Fills `forces` with Barnes-Hut repulsion, fanning the node range
    /// out over scoped threads when the policy calls for it. Each
    /// worker owns a disjoint chunk of the output slice and reads the
    /// shared quadtree, so the result does not depend on the thread
    /// count — no reduction across threads ever happens.
    /// Returns the number of Coulomb evaluations performed, tallied
    /// only while a recorder is wired (0 otherwise — the metrics-off
    /// path runs the original uncounted query). The cross-thread tally
    /// is a relaxed integer add, which is order-independent: forces are
    /// still written to private slots, so parallelism stays
    /// byte-deterministic with metrics on.
    fn repulsion_pass(&self, tree: &QuadTree, cfg: &LayoutConfig, forces: &mut [Vec2]) -> u64 {
        let counting = self.obs.is_some();
        let n = self.nodes.len();
        let threads = Self::thread_plan(self.threads, n, cfg.parallel_threshold);
        if threads <= 1 {
            if counting {
                let mut visits = 0u64;
                for (i, node) in self.nodes.iter().enumerate() {
                    let (f, v) = tree
                        .repulsion_counted(node.pos, node.charge, i, cfg.theta, cfg.min_distance);
                    forces[i] = f * cfg.repulsion;
                    visits += v;
                }
                return visits;
            }
            for (i, node) in self.nodes.iter().enumerate() {
                forces[i] = tree
                    .repulsion(node.pos, node.charge, i, cfg.theta, cfg.min_distance)
                    * cfg.repulsion;
            }
            return 0;
        }
        let chunk = n.div_ceil(threads);
        let visits = AtomicU64::new(0);
        std::thread::scope(|s| {
            for (ci, (fs, ns)) in forces
                .chunks_mut(chunk)
                .zip(self.nodes.chunks(chunk))
                .enumerate()
            {
                let base = ci * chunk;
                let visits = &visits;
                s.spawn(move || {
                    if counting {
                        let mut local = 0u64;
                        for (j, (f, node)) in fs.iter_mut().zip(ns).enumerate() {
                            let (force, v) = tree.repulsion_counted(
                                node.pos,
                                node.charge,
                                base + j,
                                cfg.theta,
                                cfg.min_distance,
                            );
                            *f = force * cfg.repulsion;
                            local += v;
                        }
                        visits.fetch_add(local, Ordering::Relaxed);
                    } else {
                        for (j, (f, node)) in fs.iter_mut().zip(ns).enumerate() {
                            *f = tree
                                .repulsion(
                                    node.pos,
                                    node.charge,
                                    base + j,
                                    cfg.theta,
                                    cfg.min_distance,
                                )
                                * cfg.repulsion;
                        }
                    }
                });
            }
        });
        visits.into_inner()
    }

    /// One Barnes-Hut iteration (`O(n log n)`, repulsion parallelised
    /// per [`set_parallelism`](LayoutEngine::set_parallelism)). Returns
    /// the largest node displacement, usable as a convergence measure.
    ///
    /// Never panics: slider values are repaired via
    /// [`LayoutConfig::sanitized`], and pathological dynamics freeze
    /// the layout (see [`FreezeReason`]) instead of diverging. A frozen
    /// layout returns `0.0` without touching any position.
    pub fn step(&mut self) -> f64 {
        if self.frozen.is_some() {
            return 0.0;
        }
        let _timer = self.obs.as_ref().map(|o| o.step_seconds.start_timer());
        let started = self.step_budget.map(|_| Instant::now());
        self.config = self.config.sanitized();
        let cfg = self.config;
        let points: Vec<(Vec2, f64)> = self.nodes.iter().map(|n| (n.pos, n.charge)).collect();
        let tree = QuadTree::build(&points);
        let mut forces = vec![Vec2::default(); self.nodes.len()];
        let visits = self.repulsion_pass(&tree, &cfg, &mut forces);
        self.spring_forces(&mut forces);
        let max_disp = self.apply_forces(&forces);
        self.check_step_budget(started);
        self.record_step(max_disp, visits);
        max_disp
    }

    /// One exact iteration (`O(n²)`); the scalability baseline. Same
    /// panic-free and watchdog semantics as
    /// [`step`](LayoutEngine::step).
    pub fn step_naive(&mut self) -> f64 {
        if self.frozen.is_some() {
            return 0.0;
        }
        let _timer = self.obs.as_ref().map(|o| o.step_seconds.start_timer());
        let started = self.step_budget.map(|_| Instant::now());
        self.config = self.config.sanitized();
        let cfg = self.config;
        let points: Vec<(Vec2, f64)> = self.nodes.iter().map(|n| (n.pos, n.charge)).collect();
        let mut forces = vec![Vec2::default(); self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            forces[i] =
                naive_repulsion(&points, n.pos, n.charge, i, cfg.min_distance) * cfg.repulsion;
        }
        self.spring_forces(&mut forces);
        let max_disp = self.apply_forces(&forces);
        self.check_step_budget(started);
        // The naive pass visits every pair by construction.
        let n = self.nodes.len() as u64;
        self.record_step(max_disp, n.saturating_mul(n.saturating_sub(1)));
        max_disp
    }

    /// Post-step metric tail (no-op unless a recorder is wired): work
    /// counters plus the two convergence gauges. All values are pure
    /// model quantities — deterministic across machines.
    fn record_step(&self, max_disp: f64, visits: u64) {
        if let Some(obs) = &self.obs {
            let n = self.nodes.len() as u64;
            obs.steps.inc();
            obs.cell_visits.add(visits);
            obs.naive_pairs.add(n.saturating_mul(n.saturating_sub(1)));
            obs.kinetic.set(self.kinetic_energy());
            obs.max_disp.set(max_disp);
        }
    }

    /// Wall-clock watchdog tail: freezes when the step that just
    /// finished overran the opt-in budget. The completed step's
    /// positions are kept — the freeze stops *further* work rather
    /// than discarding a valid (if slow) frame.
    fn check_step_budget(&mut self, started: Option<Instant>) {
        if let (Some(t0), Some(budget)) = (started, self.step_budget) {
            if t0.elapsed() >= budget {
                self.freeze(FreezeReason::StepBudgetExceeded);
            }
        }
    }

    /// Iterates until the largest displacement falls below `tol` or
    /// `max_steps` is reached. Returns the number of steps taken.
    pub fn run(&mut self, max_steps: usize, tol: f64) -> usize {
        for i in 0..max_steps {
            if self.step() < tol {
                return i + 1;
            }
        }
        max_steps
    }

    /// Collapses `members` into a single aggregated node `key`, placed
    /// at the members' charge-weighted barycenter, with charge equal to
    /// the **sum** of member charges (paper §4.2). Edges incident to a
    /// member are re-attached to the aggregate (edges between two
    /// members vanish). Unknown members are ignored.
    ///
    /// The barycenter placement is what makes collapsing visually
    /// smooth: the new node appears exactly where the group's visual
    /// mass was.
    ///
    /// # Panics
    ///
    /// Panics when `key` already exists and is not itself a member.
    pub fn merge_nodes(&mut self, key: NodeKey, members: &[NodeKey]) {
        assert!(
            !self.index.contains_key(&key) || members.contains(&key),
            "aggregate key {key:?} already present"
        );
        let mut total_charge = 0.0;
        let mut weighted = Vec2::default();
        let mut count = 0usize;
        let mut neighbours: Vec<NodeKey> = Vec::new();
        let member_set: HashSet<NodeKey> = members.iter().copied().collect();
        for &m in members {
            let Some(&i) = self.index.get(&m) else { continue };
            let n = &self.nodes[i];
            total_charge += n.charge;
            weighted += n.pos * n.charge.max(1e-12);
            count += 1;
            for &(a, b) in &self.edges {
                if a == m && !member_set.contains(&b) {
                    neighbours.push(b);
                }
                if b == m && !member_set.contains(&a) {
                    neighbours.push(a);
                }
            }
        }
        if count == 0 {
            return;
        }
        let denom: f64 = members
            .iter()
            .filter_map(|m| self.index.get(m))
            .map(|&i| self.nodes[i].charge.max(1e-12))
            .sum();
        let barycenter = weighted / denom;
        for &m in members {
            self.remove_node(m);
        }
        self.add_node_at(key, total_charge, barycenter);
        neighbours.sort();
        neighbours.dedup();
        for nb in neighbours {
            if self.index.contains_key(&nb) {
                self.add_edge(key, nb);
            }
        }
    }

    /// Expands an aggregated node into `children` (key + charge each),
    /// placed on a small deterministic ring around the parent position
    /// so the force simulation can separate them smoothly. Edges of the
    /// parent are dropped (the caller rewires edges from its model).
    /// Returns `false` when `key` is unknown.
    pub fn split_node(&mut self, key: NodeKey, children: &[(NodeKey, f64)]) -> bool {
        let Some(pos) = self.position(key) else {
            return false;
        };
        self.remove_node(key);
        let r = self.config.spring_length * 0.25;
        let n = children.len().max(1) as f64;
        for (i, &(child, charge)) in children.iter().enumerate() {
            let angle = std::f64::consts::TAU * i as f64 / n;
            let offset = Vec2::new(angle.cos(), angle.sin()) * r;
            self.add_node_at(child, charge, pos + offset);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> LayoutEngine {
        LayoutEngine::new(LayoutConfig::default(), 42)
    }

    #[test]
    fn add_remove_nodes_and_edges() {
        let mut e = engine();
        assert!(e.add_node(NodeKey(1), 1.0));
        assert!(!e.add_node(NodeKey(1), 2.0), "duplicate rejected");
        assert!(e.add_node(NodeKey(2), 1.0));
        assert!(e.add_edge(NodeKey(1), NodeKey(2)));
        assert!(!e.add_edge(NodeKey(2), NodeKey(1)), "undirected dedup");
        assert!(!e.add_edge(NodeKey(1), NodeKey(1)), "self edge ignored");
        assert_eq!(e.len(), 2);
        assert_eq!(e.edge_count(), 1);
        assert!(e.remove_node(NodeKey(1)));
        assert_eq!(e.edge_count(), 0, "incident edges removed");
        assert!(!e.remove_node(NodeKey(1)));
    }

    #[test]
    fn two_connected_nodes_settle_near_spring_length() {
        let mut e = engine();
        e.add_node_at(NodeKey(1), 1.0, Vec2::new(0.0, 0.0));
        e.add_node_at(NodeKey(2), 1.0, Vec2::new(1.0, 0.0));
        e.add_edge(NodeKey(1), NodeKey(2));
        e.run(2000, 1e-7);
        let d = e
            .position(NodeKey(1))
            .unwrap()
            .distance(e.position(NodeKey(2)).unwrap());
        // Equilibrium: spring pull == charge push, slightly beyond L.
        assert!(d > e.config().spring_length * 0.9, "d = {d}");
        assert!(d < e.config().spring_length * 3.0, "d = {d}");
    }

    #[test]
    fn disconnected_nodes_repel() {
        let mut e = engine();
        e.add_node_at(NodeKey(1), 1.0, Vec2::new(0.0, 0.0));
        e.add_node_at(NodeKey(2), 1.0, Vec2::new(0.5, 0.0));
        for _ in 0..200 {
            e.step();
        }
        let d = e
            .position(NodeKey(1))
            .unwrap()
            .distance(e.position(NodeKey(2)).unwrap());
        assert!(d > 5.0, "nodes should fly apart, d = {d}");
    }

    #[test]
    fn pinned_node_does_not_move() {
        let mut e = engine();
        e.add_node_at(NodeKey(1), 1.0, Vec2::new(0.0, 0.0));
        e.add_node_at(NodeKey(2), 1.0, Vec2::new(1.0, 0.0));
        e.pin(NodeKey(1));
        assert!(e.is_pinned(NodeKey(1)));
        for _ in 0..100 {
            e.step();
        }
        assert_eq!(e.position(NodeKey(1)).unwrap(), Vec2::new(0.0, 0.0));
        e.unpin(NodeKey(1));
        e.step();
        assert_ne!(e.position(NodeKey(1)).unwrap(), Vec2::new(0.0, 0.0));
    }

    #[test]
    fn move_node_drags_neighbours() {
        let mut e = engine();
        e.add_node_at(NodeKey(1), 1.0, Vec2::new(0.0, 0.0));
        e.add_node_at(NodeKey(2), 1.0, Vec2::new(10.0, 0.0));
        e.add_edge(NodeKey(1), NodeKey(2));
        e.run(500, 1e-6);
        // Drag node 1 far away; its neighbour must follow.
        e.move_node(NodeKey(1), Vec2::new(200.0, 200.0));
        e.pin(NodeKey(1));
        e.run(3000, 1e-6);
        let p2 = e.position(NodeKey(2)).unwrap();
        assert!(
            p2.distance(Vec2::new(200.0, 200.0)) < 40.0,
            "neighbour at {p2} did not follow"
        );
    }

    #[test]
    fn determinism_same_seed_same_layout() {
        let build = || {
            let mut e = engine();
            for i in 0..20 {
                e.add_node(NodeKey(i), 1.0 + i as f64 * 0.1);
            }
            for i in 0..19 {
                e.add_edge(NodeKey(i), NodeKey(i + 1));
            }
            e.run(200, 1e-9);
            e.positions().collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn naive_and_bh_agree_on_small_graphs() {
        let mut a = engine();
        let mut b = engine();
        a.config_mut().theta = 0.0; // exact BH
        for e in [&mut a, &mut b] {
            e.add_node_at(NodeKey(1), 1.0, Vec2::new(0.0, 0.0));
            e.add_node_at(NodeKey(2), 2.0, Vec2::new(7.0, 1.0));
            e.add_node_at(NodeKey(3), 1.5, Vec2::new(-3.0, 4.0));
            e.add_edge(NodeKey(1), NodeKey(2));
        }
        for _ in 0..50 {
            a.step();
            b.step_naive();
        }
        for k in [NodeKey(1), NodeKey(2), NodeKey(3)] {
            let pa = a.position(k).unwrap();
            let pb = b.position(k).unwrap();
            assert!((pa - pb).length() < 1e-6, "{k:?}: {pa} vs {pb}");
        }
    }

    #[test]
    fn merge_places_aggregate_at_barycenter_with_summed_charge() {
        let mut e = engine();
        e.add_node_at(NodeKey(1), 2.0, Vec2::new(0.0, 0.0));
        e.add_node_at(NodeKey(2), 2.0, Vec2::new(10.0, 0.0));
        e.add_node_at(NodeKey(3), 1.0, Vec2::new(100.0, 100.0));
        e.add_edge(NodeKey(1), NodeKey(3));
        e.add_edge(NodeKey(1), NodeKey(2)); // internal edge: vanishes
        e.merge_nodes(NodeKey(99), &[NodeKey(1), NodeKey(2)]);
        assert_eq!(e.len(), 2);
        assert_eq!(e.charge(NodeKey(99)), Some(4.0), "charge is the sum (§4.2)");
        assert_eq!(e.position(NodeKey(99)), Some(Vec2::new(5.0, 0.0)));
        assert!(e.has_edge(NodeKey(99), NodeKey(3)), "external edge re-attached");
        assert_eq!(e.edge_count(), 1);
    }

    #[test]
    fn split_spawns_children_around_parent() {
        let mut e = engine();
        e.add_node_at(NodeKey(99), 4.0, Vec2::new(5.0, 5.0));
        assert!(e.split_node(NodeKey(99), &[(NodeKey(1), 2.0), (NodeKey(2), 2.0)]));
        assert_eq!(e.len(), 2);
        assert!(e.position(NodeKey(99)).is_none());
        for k in [NodeKey(1), NodeKey(2)] {
            let p = e.position(k).unwrap();
            assert!(p.distance(Vec2::new(5.0, 5.0)) < e.config().spring_length);
        }
        assert!(!e.split_node(NodeKey(98), &[]), "unknown parent");
    }

    #[test]
    fn merge_then_split_roundtrip_is_smooth() {
        let mut e = engine();
        for i in 0..6 {
            e.add_node(NodeKey(i), 1.0);
        }
        for i in 0..5 {
            e.add_edge(NodeKey(i), NodeKey(i + 1));
        }
        e.run(300, 1e-6);
        let before = e.position(NodeKey(2)).unwrap();
        e.merge_nodes(NodeKey(100), &[NodeKey(2), NodeKey(3)]);
        let agg = e.position(NodeKey(100)).unwrap();
        // Aggregate appears between its members, near where they were.
        assert!(agg.distance(before) < e.config().spring_length * 4.0);
        e.split_node(NodeKey(100), &[(NodeKey(2), 1.0), (NodeKey(3), 1.0)]);
        let after = e.position(NodeKey(2)).unwrap();
        assert!(after.distance(agg) < e.config().spring_length);
    }

    #[test]
    fn coincident_nodes_separate_without_nans() {
        // A pile of nodes dropped at the same position (a collapsed
        // aggregate being expanded, or a degenerate trace) must fan out
        // instead of dividing by zero or marching in lockstep.
        let p = Vec2::new(3.0, -2.0);
        for naive in [false, true] {
            let mut e = engine();
            for i in 0..8 {
                e.add_node_at(NodeKey(i), 1.0, p);
            }
            for _ in 0..100 {
                if naive {
                    e.step_naive();
                } else {
                    e.step();
                }
            }
            let pos: Vec<Vec2> = e.positions().map(|(_, p)| p).collect();
            for p in &pos {
                assert!(p.x.is_finite() && p.y.is_finite(), "non-finite {p}");
            }
            for i in 0..pos.len() {
                for j in 0..i {
                    assert!(
                        pos[i].distance(pos[j]) > 1.0,
                        "nodes {i}/{j} still coincident at {} / {}",
                        pos[i],
                        pos[j]
                    );
                }
            }
        }
    }

    /// The satellite invariant: the parallel force pass produces
    /// byte-identical layouts to the serial pass, whatever the thread
    /// count or chunking.
    #[test]
    fn parallel_repulsion_is_byte_identical_to_serial() {
        let build = |threads: Option<usize>| {
            let mut e = engine();
            e.set_parallelism(threads);
            for i in 0..300 {
                e.add_node(NodeKey(i), 1.0 + (i % 7) as f64 * 0.3);
            }
            for i in 0..299 {
                if i % 3 != 0 {
                    e.add_edge(NodeKey(i), NodeKey(i + 1));
                }
            }
            for _ in 0..40 {
                e.step();
            }
            e.positions().collect::<Vec<_>>()
        };
        let serial = build(Some(1));
        // Auto mode, even splits, ragged splits, more threads than
        // cores: all must match the serial pass exactly (f64 equality,
        // i.e. bit-for-bit for finite values).
        for threads in [None, Some(2), Some(3), Some(7), Some(16)] {
            assert_eq!(serial, build(threads), "thread policy {threads:?} diverged");
        }
    }

    #[test]
    fn parallelism_policy_is_clamped_and_readable() {
        let mut e = engine();
        assert_eq!(e.parallelism(), None);
        e.set_parallelism(Some(0));
        assert_eq!(e.parallelism(), Some(1), "0 clamps to serial");
        e.set_parallelism(Some(4));
        assert_eq!(e.parallelism(), Some(4));
        // More threads than nodes must not panic.
        e.add_node(NodeKey(1), 1.0);
        e.add_node(NodeKey(2), 1.0);
        e.step();
        e.set_parallelism(None);
        assert_eq!(e.parallelism(), None);
    }

    #[test]
    fn kinetic_energy_decreases_towards_convergence() {
        let mut e = engine();
        for i in 0..12 {
            e.add_node(NodeKey(i), 1.0);
        }
        for i in 0..11 {
            e.add_edge(NodeKey(i), NodeKey(i + 1));
        }
        for _ in 0..30 {
            e.step();
        }
        let early = e.kinetic_energy();
        for _ in 0..1000 {
            e.step();
        }
        let late = e.kinetic_energy();
        assert!(late < early, "energy should decay: {early} → {late}");
    }

    #[test]
    fn non_finite_charge_freezes_instead_of_panicking() {
        for naive in [false, true] {
            let mut e = engine();
            e.add_node_at(NodeKey(1), f64::NAN, Vec2::new(0.0, 0.0));
            e.add_node_at(NodeKey(2), 1.0, Vec2::new(1.0, 0.0));
            let d = if naive { e.step_naive() } else { e.step() };
            assert_eq!(d, 0.0);
            assert!(e.is_frozen());
            assert_eq!(e.freeze_reason(), Some(FreezeReason::NonFiniteForce));
            // The poisoned frame was discarded: positions are the last
            // healthy ones, still finite.
            assert_eq!(e.position(NodeKey(2)), Some(Vec2::new(1.0, 0.0)));
        }
    }

    #[test]
    fn frozen_layout_stops_moving_until_thawed() {
        let mut e = engine();
        e.add_node_at(NodeKey(1), f64::INFINITY, Vec2::new(0.0, 0.0));
        e.add_node_at(NodeKey(2), 1.0, Vec2::new(1.0, 0.0));
        e.step();
        assert!(e.is_frozen());
        let before: Vec<_> = e.positions().collect();
        for _ in 0..10 {
            assert_eq!(e.step(), 0.0, "frozen step is a no-op");
        }
        assert_eq!(before, e.positions().collect::<Vec<_>>());
        // Repair the bad charge and thaw: the simulation resumes.
        e.set_charge(NodeKey(1), 1.0);
        e.thaw();
        assert!(!e.is_frozen());
        assert!(e.step() > 0.0, "thawed layout moves again");
        for (_, p) in e.positions() {
            assert!(p.x.is_finite() && p.y.is_finite());
        }
    }

    #[test]
    fn runaway_displacement_freezes_deterministically() {
        // damping = 1 keeps all injected energy; an absurd spring
        // constant on a massively stretched edge then pumps the pair
        // into a permanent max-displacement oscillation — the classic
        // diverging-layout failure mode.
        let cfg = LayoutConfig {
            damping: 1.0,
            spring: 1e12,
            repulsion: 0.0,
            ..Default::default()
        };
        let mut e = LayoutEngine::new(cfg, 1);
        e.add_node_at(NodeKey(1), 1.0, Vec2::new(0.0, 0.0));
        e.add_node_at(NodeKey(2), 1.0, Vec2::new(1e6, 0.0));
        e.add_edge(NodeKey(1), NodeKey(2));
        let mut frozen_at = None;
        for i in 0..2000 {
            e.step();
            if e.is_frozen() {
                frozen_at = Some(i);
                break;
            }
        }
        assert!(frozen_at.is_some(), "watchdog never fired");
        assert_eq!(e.freeze_reason(), Some(FreezeReason::RunawayDisplacement));
        for (_, p) in e.positions() {
            assert!(p.x.is_finite() && p.y.is_finite(), "froze too late: {p}");
        }
        // The signal is pure arithmetic: a second run freezes at the
        // same step.
        let mut e2 = LayoutEngine::new(cfg, 1);
        e2.add_node_at(NodeKey(1), 1.0, Vec2::new(0.0, 0.0));
        e2.add_node_at(NodeKey(2), 1.0, Vec2::new(1e6, 0.0));
        e2.add_edge(NodeKey(1), NodeKey(2));
        let mut frozen_at2 = None;
        for i in 0..2000 {
            e2.step();
            if e2.is_frozen() {
                frozen_at2 = Some(i);
                break;
            }
        }
        assert_eq!(frozen_at, frozen_at2);
    }

    #[test]
    fn zero_step_budget_freezes_after_one_step() {
        let mut e = engine();
        e.add_node(NodeKey(1), 1.0);
        e.add_node(NodeKey(2), 1.0);
        assert_eq!(e.step_budget(), None);
        e.set_step_budget(Some(std::time::Duration::ZERO));
        e.step();
        assert_eq!(e.freeze_reason(), Some(FreezeReason::StepBudgetExceeded));
        // The frame that overran was kept, not discarded.
        for (_, p) in e.positions() {
            assert!(p.x.is_finite() && p.y.is_finite());
        }
        e.thaw();
        e.set_step_budget(None);
        e.step();
        assert!(!e.is_frozen());
    }

    #[test]
    fn hostile_config_is_sanitized_not_fatal() {
        // NaN sliders at construction and mid-flight: never a panic.
        let cfg = LayoutConfig { damping: f64::NAN, dt: -1.0, ..Default::default() };
        let mut e = LayoutEngine::new(cfg, 7);
        assert_eq!(e.config().damping, LayoutConfig::default().damping);
        e.add_node(NodeKey(1), 1.0);
        e.add_node(NodeKey(2), 1.0);
        e.config_mut().spring_length = f64::NAN;
        e.step();
        assert!(!e.is_frozen());
        assert_eq!(e.config().spring_length, LayoutConfig::default().spring_length);
        for (_, p) in e.positions() {
            assert!(p.x.is_finite() && p.y.is_finite());
        }
    }

    #[test]
    fn move_node_rejects_non_finite_positions() {
        let mut e = engine();
        e.add_node_at(NodeKey(1), 1.0, Vec2::new(2.0, 3.0));
        assert!(!e.move_node(NodeKey(1), Vec2::new(f64::NAN, 0.0)));
        assert!(!e.move_node(NodeKey(1), Vec2::new(0.0, f64::INFINITY)));
        assert_eq!(e.position(NodeKey(1)), Some(Vec2::new(2.0, 3.0)));
        assert!(e.move_node(NodeKey(1), Vec2::new(5.0, 5.0)));
    }

    #[test]
    fn recorder_observes_steps_and_freezes_without_changing_the_layout() {
        let drive = |recorder: Option<Recorder>| {
            let mut e = engine();
            if let Some(r) = recorder {
                e.set_recorder(r);
            }
            for i in 0..30 {
                e.add_node(NodeKey(i), 1.0);
            }
            for i in 0..29 {
                e.add_edge(NodeKey(i), NodeKey(i + 1));
            }
            for _ in 0..25 {
                e.step();
            }
            e.positions().collect::<Vec<_>>()
        };
        let r = Recorder::enabled();
        let observed = drive(Some(r.clone()));
        let plain = drive(None);
        assert_eq!(observed, plain, "metrics must not perturb the simulation");

        assert_eq!(r.counter("layout.steps").get(), 25);
        assert!(r.counter("layout.bh.cell_visits").get() > 0);
        assert_eq!(r.counter("layout.bh.naive_pairs").get(), 25 * 30 * 29);
        assert!(r.gauge("layout.kinetic_energy").get() > 0.0);
        assert_eq!(r.histogram("layout.step.seconds").count(), 25);

        // Freeze + thaw leave an event trail and bump the counter.
        let r2 = Recorder::enabled();
        let mut e = engine();
        e.set_recorder(r2.clone());
        e.add_node_at(NodeKey(1), f64::NAN, Vec2::new(0.0, 0.0));
        e.add_node_at(NodeKey(2), 1.0, Vec2::new(1.0, 0.0));
        e.step();
        assert_eq!(r2.counter("layout.freezes").get(), 1);
        e.step(); // frozen no-op: no double count
        assert_eq!(r2.counter("layout.freezes").get(), 1);
        e.thaw();
        let events = r2.snapshot().events;
        let names: Vec<_> = events.iter().map(|ev| ev.name.as_str()).collect();
        assert_eq!(names, ["layout.freeze", "layout.thaw"]);
        assert_eq!(events[0].detail, "non_finite_force");

        // Disabled recorders are discarded outright.
        let mut e = engine();
        e.set_recorder(Recorder::disabled());
        e.add_node(NodeKey(1), 1.0);
        e.step();
    }

    #[test]
    fn bounds_cover_all_nodes() {
        let mut e = engine();
        assert!(e.bounds().is_none());
        e.add_node_at(NodeKey(1), 1.0, Vec2::new(-5.0, 2.0));
        e.add_node_at(NodeKey(2), 1.0, Vec2::new(7.0, -3.0));
        let (lo, hi) = e.bounds().unwrap();
        assert_eq!(lo, Vec2::new(-5.0, -3.0));
        assert_eq!(hi, Vec2::new(7.0, 2.0));
    }
}
