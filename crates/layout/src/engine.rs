//! The dynamic layout engine: node/edge bookkeeping, force
//! integration, pinning, and smooth aggregation morphs.

use std::collections::{BTreeSet, HashMap, HashSet};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::forces::{spring_force, LayoutConfig};
use crate::quadtree::{naive_repulsion, QuadTree};
use crate::vec2::Vec2;

/// Caller-chosen stable identifier of a layout node (the visualization
/// layer uses trace container ids).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeKey(pub u64);

#[derive(Debug, Clone)]
struct Node {
    key: NodeKey,
    pos: Vec2,
    vel: Vec2,
    charge: f64,
    pinned: bool,
}

/// A dynamic force-directed layout.
///
/// Node positions evolve one [`step`](LayoutEngine::step) at a time;
/// topology changes (add/remove/merge/split) take effect immediately
/// and the ongoing iteration smoothly absorbs them — the property the
/// paper relies on for non-confusing aggregation (§3.3).
#[derive(Debug, Clone)]
pub struct LayoutEngine {
    config: LayoutConfig,
    nodes: Vec<Node>,
    index: HashMap<NodeKey, usize>,
    // BTreeSet: deterministic iteration order makes force summation
    // order (and hence floating-point results) reproducible.
    edges: BTreeSet<(NodeKey, NodeKey)>,
    rng: SmallRng,
    steps: u64,
    /// Worker threads for the repulsion pass: `None` = auto (hardware
    /// parallelism above a size threshold), `Some(1)` = serial,
    /// `Some(n)` = exactly `n` threads.
    threads: Option<usize>,
}

/// Below this node count the auto parallelism mode stays serial:
/// spawning scoped threads costs more than the whole repulsion pass.
const PARALLEL_THRESHOLD: usize = 256;

impl LayoutEngine {
    /// Creates an empty layout. `seed` drives initial node placement
    /// (two engines with equal seeds and operation sequences produce
    /// identical layouts).
    ///
    /// # Panics
    ///
    /// Panics when `config` is invalid (see
    /// [`LayoutConfig::validated`]).
    pub fn new(config: LayoutConfig, seed: u64) -> LayoutEngine {
        LayoutEngine {
            config: config.validated(),
            nodes: Vec::new(),
            index: HashMap::new(),
            edges: BTreeSet::new(),
            rng: SmallRng::seed_from_u64(seed),
            steps: 0,
            threads: None,
        }
    }

    /// Current parameters.
    pub fn config(&self) -> &LayoutConfig {
        &self.config
    }

    /// Sets the worker-thread policy of the repulsion pass: `None` for
    /// auto (hardware parallelism once the layout outgrows a small
    /// threshold), `Some(1)` to force the serial path, `Some(n)` to
    /// force `n` threads.
    ///
    /// Parallelism never changes results: every node's force is
    /// computed independently against the same read-only quadtree and
    /// written to its own slot, so the layout is byte-identical
    /// whatever the thread count (a property the tests pin down).
    pub fn set_parallelism(&mut self, threads: Option<usize>) {
        self.threads = threads.map(|t| t.max(1));
    }

    /// The current worker-thread policy (see
    /// [`set_parallelism`](LayoutEngine::set_parallelism)).
    pub fn parallelism(&self) -> Option<usize> {
        self.threads
    }

    /// Mutable parameters — the §4.2 sliders. Values are validated on
    /// the next [`step`](LayoutEngine::step).
    pub fn config_mut(&mut self) -> &mut LayoutConfig {
        &mut self.config
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the layout has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Steps executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Adds a node with `charge` at a seeded random position near the
    /// current layout. No-op (returning `false`) when the key exists.
    pub fn add_node(&mut self, key: NodeKey, charge: f64) -> bool {
        let spread = self.config.spring_length * (self.nodes.len() as f64).sqrt().max(1.0);
        let pos = Vec2::new(
            self.rng.gen_range(-spread..=spread),
            self.rng.gen_range(-spread..=spread),
        );
        self.add_node_at(key, charge, pos)
    }

    /// Adds a node at an explicit position. Returns `false` when the
    /// key already exists.
    pub fn add_node_at(&mut self, key: NodeKey, charge: f64, pos: Vec2) -> bool {
        if self.index.contains_key(&key) {
            return false;
        }
        self.index.insert(key, self.nodes.len());
        self.nodes.push(Node { key, pos, vel: Vec2::default(), charge, pinned: false });
        true
    }

    /// Removes a node and its incident edges. Returns `false` for an
    /// unknown key.
    pub fn remove_node(&mut self, key: NodeKey) -> bool {
        let Some(i) = self.index.remove(&key) else {
            return false;
        };
        self.nodes.swap_remove(i);
        if i < self.nodes.len() {
            self.index.insert(self.nodes[i].key, i);
        }
        self.edges.retain(|&(a, b)| a != key && b != key);
        true
    }

    fn edge_key(a: NodeKey, b: NodeKey) -> (NodeKey, NodeKey) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Adds an undirected edge (spring). Self-edges and duplicates are
    /// ignored. Returns `true` when a new edge was inserted.
    ///
    /// # Panics
    ///
    /// Panics when either endpoint is unknown.
    pub fn add_edge(&mut self, a: NodeKey, b: NodeKey) -> bool {
        assert!(self.index.contains_key(&a), "unknown node {a:?}");
        assert!(self.index.contains_key(&b), "unknown node {b:?}");
        if a == b {
            return false;
        }
        self.edges.insert(Self::edge_key(a, b))
    }

    /// Removes an edge; returns whether it existed.
    pub fn remove_edge(&mut self, a: NodeKey, b: NodeKey) -> bool {
        self.edges.remove(&Self::edge_key(a, b))
    }

    /// Whether an edge exists.
    pub fn has_edge(&self, a: NodeKey, b: NodeKey) -> bool {
        self.edges.contains(&Self::edge_key(a, b))
    }

    /// Iterates over edges in unspecified order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeKey, NodeKey)> + '_ {
        self.edges.iter().copied()
    }

    /// Position of a node.
    pub fn position(&self, key: NodeKey) -> Option<Vec2> {
        self.index.get(&key).map(|&i| self.nodes[i].pos)
    }

    /// Charge of a node.
    pub fn charge(&self, key: NodeKey) -> Option<f64> {
        self.index.get(&key).map(|&i| self.nodes[i].charge)
    }

    /// Updates a node's charge (e.g. when its aggregate grows).
    /// Returns `false` for an unknown key.
    pub fn set_charge(&mut self, key: NodeKey, charge: f64) -> bool {
        match self.index.get(&key) {
            Some(&i) => {
                self.nodes[i].charge = charge;
                true
            }
            None => false,
        }
    }

    /// Pins a node: forces no longer move it (the analyst is holding
    /// it, or wants it anchored — "machines being on the north of the
    /// country would be put on the top of the screen", §4.2).
    pub fn pin(&mut self, key: NodeKey) -> bool {
        match self.index.get(&key) {
            Some(&i) => {
                self.nodes[i].pinned = true;
                self.nodes[i].vel = Vec2::default();
                true
            }
            None => false,
        }
    }

    /// Unpins a node.
    pub fn unpin(&mut self, key: NodeKey) -> bool {
        match self.index.get(&key) {
            Some(&i) => {
                self.nodes[i].pinned = false;
                true
            }
            None => false,
        }
    }

    /// Whether a node is pinned.
    pub fn is_pinned(&self, key: NodeKey) -> bool {
        self.index.get(&key).is_some_and(|&i| self.nodes[i].pinned)
    }

    /// Moves a node to `pos` (mouse drag). The neighbours will follow
    /// through their springs on subsequent steps. Returns `false` for
    /// an unknown key.
    pub fn move_node(&mut self, key: NodeKey, pos: Vec2) -> bool {
        match self.index.get(&key) {
            Some(&i) => {
                self.nodes[i].pos = pos;
                self.nodes[i].vel = Vec2::default();
                true
            }
            None => false,
        }
    }

    /// Iterates over `(key, position)` pairs in insertion-ish order.
    pub fn positions(&self) -> impl Iterator<Item = (NodeKey, Vec2)> + '_ {
        self.nodes.iter().map(|n| (n.key, n.pos))
    }

    /// Axis-aligned bounding box of all nodes, `None` when empty.
    pub fn bounds(&self) -> Option<(Vec2, Vec2)> {
        let first = self.nodes.first()?.pos;
        let mut lo = first;
        let mut hi = first;
        for n in &self.nodes {
            lo = lo.min(n.pos);
            hi = hi.max(n.pos);
        }
        Some((lo, hi))
    }

    /// Mean kinetic energy per node — the convergence measure.
    pub fn kinetic_energy(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        self.nodes.iter().map(|n| n.vel.length_sq()).sum::<f64>() / self.nodes.len() as f64
    }

    fn apply_forces(&mut self, forces: &[Vec2]) -> f64 {
        let cfg = self.config;
        let mut max_disp: f64 = 0.0;
        for (n, &f) in self.nodes.iter_mut().zip(forces) {
            if n.pinned {
                n.vel = Vec2::default();
                continue;
            }
            n.vel = (n.vel + f * cfg.dt) * cfg.damping;
            let mut disp = n.vel * cfg.dt;
            let d = disp.length();
            if d > cfg.max_displacement {
                disp = disp * (cfg.max_displacement / d);
            }
            n.pos += disp;
            debug_assert!(
                n.pos.x.is_finite() && n.pos.y.is_finite(),
                "step produced a non-finite position for {:?}: {} (force {f})",
                n.key,
                n.pos,
            );
            max_disp = max_disp.max(disp.length());
        }
        self.steps += 1;
        max_disp
    }

    fn spring_forces(&self, forces: &mut [Vec2]) {
        let cfg = &self.config;
        for &(a, b) in &self.edges {
            let (ia, ib) = (self.index[&a], self.index[&b]);
            let f = spring_force(
                self.nodes[ia].pos,
                self.nodes[ib].pos,
                cfg.spring,
                cfg.spring_length,
            );
            forces[ia] += f;
            forces[ib] -= f;
        }
    }

    /// Fills `forces` with Barnes-Hut repulsion, fanning the node range
    /// out over scoped threads when the policy calls for it. Each
    /// worker owns a disjoint chunk of the output slice and reads the
    /// shared quadtree, so the result does not depend on the thread
    /// count — no reduction across threads ever happens.
    fn repulsion_pass(&self, tree: &QuadTree, cfg: &LayoutConfig, forces: &mut [Vec2]) {
        let n = self.nodes.len();
        let threads = match self.threads {
            Some(t) => t,
            None if n < PARALLEL_THRESHOLD => 1,
            None => std::thread::available_parallelism().map_or(1, |p| p.get()),
        }
        .min(n.max(1));
        if threads <= 1 {
            for (i, node) in self.nodes.iter().enumerate() {
                forces[i] = tree
                    .repulsion(node.pos, node.charge, i, cfg.theta, cfg.min_distance)
                    * cfg.repulsion;
            }
            return;
        }
        let chunk = n.div_ceil(threads);
        std::thread::scope(|s| {
            for (ci, (fs, ns)) in forces
                .chunks_mut(chunk)
                .zip(self.nodes.chunks(chunk))
                .enumerate()
            {
                let base = ci * chunk;
                s.spawn(move || {
                    for (j, (f, node)) in fs.iter_mut().zip(ns).enumerate() {
                        *f = tree
                            .repulsion(node.pos, node.charge, base + j, cfg.theta, cfg.min_distance)
                            * cfg.repulsion;
                    }
                });
            }
        });
    }

    /// One Barnes-Hut iteration (`O(n log n)`, repulsion parallelised
    /// per [`set_parallelism`](LayoutEngine::set_parallelism)). Returns
    /// the largest node displacement, usable as a convergence measure.
    pub fn step(&mut self) -> f64 {
        let cfg = self.config.validated();
        let points: Vec<(Vec2, f64)> = self.nodes.iter().map(|n| (n.pos, n.charge)).collect();
        let tree = QuadTree::build(&points);
        let mut forces = vec![Vec2::default(); self.nodes.len()];
        self.repulsion_pass(&tree, &cfg, &mut forces);
        self.spring_forces(&mut forces);
        self.apply_forces(&forces)
    }

    /// One exact iteration (`O(n²)`); the scalability baseline.
    pub fn step_naive(&mut self) -> f64 {
        let cfg = self.config.validated();
        let points: Vec<(Vec2, f64)> = self.nodes.iter().map(|n| (n.pos, n.charge)).collect();
        let mut forces = vec![Vec2::default(); self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            forces[i] =
                naive_repulsion(&points, n.pos, n.charge, i, cfg.min_distance) * cfg.repulsion;
        }
        self.spring_forces(&mut forces);
        self.apply_forces(&forces)
    }

    /// Iterates until the largest displacement falls below `tol` or
    /// `max_steps` is reached. Returns the number of steps taken.
    pub fn run(&mut self, max_steps: usize, tol: f64) -> usize {
        for i in 0..max_steps {
            if self.step() < tol {
                return i + 1;
            }
        }
        max_steps
    }

    /// Collapses `members` into a single aggregated node `key`, placed
    /// at the members' charge-weighted barycenter, with charge equal to
    /// the **sum** of member charges (paper §4.2). Edges incident to a
    /// member are re-attached to the aggregate (edges between two
    /// members vanish). Unknown members are ignored.
    ///
    /// The barycenter placement is what makes collapsing visually
    /// smooth: the new node appears exactly where the group's visual
    /// mass was.
    ///
    /// # Panics
    ///
    /// Panics when `key` already exists and is not itself a member.
    pub fn merge_nodes(&mut self, key: NodeKey, members: &[NodeKey]) {
        assert!(
            !self.index.contains_key(&key) || members.contains(&key),
            "aggregate key {key:?} already present"
        );
        let mut total_charge = 0.0;
        let mut weighted = Vec2::default();
        let mut count = 0usize;
        let mut neighbours: Vec<NodeKey> = Vec::new();
        let member_set: HashSet<NodeKey> = members.iter().copied().collect();
        for &m in members {
            let Some(&i) = self.index.get(&m) else { continue };
            let n = &self.nodes[i];
            total_charge += n.charge;
            weighted += n.pos * n.charge.max(1e-12);
            count += 1;
            for &(a, b) in &self.edges {
                if a == m && !member_set.contains(&b) {
                    neighbours.push(b);
                }
                if b == m && !member_set.contains(&a) {
                    neighbours.push(a);
                }
            }
        }
        if count == 0 {
            return;
        }
        let denom: f64 = members
            .iter()
            .filter_map(|m| self.index.get(m))
            .map(|&i| self.nodes[i].charge.max(1e-12))
            .sum();
        let barycenter = weighted / denom;
        for &m in members {
            self.remove_node(m);
        }
        self.add_node_at(key, total_charge, barycenter);
        neighbours.sort();
        neighbours.dedup();
        for nb in neighbours {
            if self.index.contains_key(&nb) {
                self.add_edge(key, nb);
            }
        }
    }

    /// Expands an aggregated node into `children` (key + charge each),
    /// placed on a small deterministic ring around the parent position
    /// so the force simulation can separate them smoothly. Edges of the
    /// parent are dropped (the caller rewires edges from its model).
    /// Returns `false` when `key` is unknown.
    pub fn split_node(&mut self, key: NodeKey, children: &[(NodeKey, f64)]) -> bool {
        let Some(pos) = self.position(key) else {
            return false;
        };
        self.remove_node(key);
        let r = self.config.spring_length * 0.25;
        let n = children.len().max(1) as f64;
        for (i, &(child, charge)) in children.iter().enumerate() {
            let angle = std::f64::consts::TAU * i as f64 / n;
            let offset = Vec2::new(angle.cos(), angle.sin()) * r;
            self.add_node_at(child, charge, pos + offset);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> LayoutEngine {
        LayoutEngine::new(LayoutConfig::default(), 42)
    }

    #[test]
    fn add_remove_nodes_and_edges() {
        let mut e = engine();
        assert!(e.add_node(NodeKey(1), 1.0));
        assert!(!e.add_node(NodeKey(1), 2.0), "duplicate rejected");
        assert!(e.add_node(NodeKey(2), 1.0));
        assert!(e.add_edge(NodeKey(1), NodeKey(2)));
        assert!(!e.add_edge(NodeKey(2), NodeKey(1)), "undirected dedup");
        assert!(!e.add_edge(NodeKey(1), NodeKey(1)), "self edge ignored");
        assert_eq!(e.len(), 2);
        assert_eq!(e.edge_count(), 1);
        assert!(e.remove_node(NodeKey(1)));
        assert_eq!(e.edge_count(), 0, "incident edges removed");
        assert!(!e.remove_node(NodeKey(1)));
    }

    #[test]
    fn two_connected_nodes_settle_near_spring_length() {
        let mut e = engine();
        e.add_node_at(NodeKey(1), 1.0, Vec2::new(0.0, 0.0));
        e.add_node_at(NodeKey(2), 1.0, Vec2::new(1.0, 0.0));
        e.add_edge(NodeKey(1), NodeKey(2));
        e.run(2000, 1e-7);
        let d = e
            .position(NodeKey(1))
            .unwrap()
            .distance(e.position(NodeKey(2)).unwrap());
        // Equilibrium: spring pull == charge push, slightly beyond L.
        assert!(d > e.config().spring_length * 0.9, "d = {d}");
        assert!(d < e.config().spring_length * 3.0, "d = {d}");
    }

    #[test]
    fn disconnected_nodes_repel() {
        let mut e = engine();
        e.add_node_at(NodeKey(1), 1.0, Vec2::new(0.0, 0.0));
        e.add_node_at(NodeKey(2), 1.0, Vec2::new(0.5, 0.0));
        for _ in 0..200 {
            e.step();
        }
        let d = e
            .position(NodeKey(1))
            .unwrap()
            .distance(e.position(NodeKey(2)).unwrap());
        assert!(d > 5.0, "nodes should fly apart, d = {d}");
    }

    #[test]
    fn pinned_node_does_not_move() {
        let mut e = engine();
        e.add_node_at(NodeKey(1), 1.0, Vec2::new(0.0, 0.0));
        e.add_node_at(NodeKey(2), 1.0, Vec2::new(1.0, 0.0));
        e.pin(NodeKey(1));
        assert!(e.is_pinned(NodeKey(1)));
        for _ in 0..100 {
            e.step();
        }
        assert_eq!(e.position(NodeKey(1)).unwrap(), Vec2::new(0.0, 0.0));
        e.unpin(NodeKey(1));
        e.step();
        assert_ne!(e.position(NodeKey(1)).unwrap(), Vec2::new(0.0, 0.0));
    }

    #[test]
    fn move_node_drags_neighbours() {
        let mut e = engine();
        e.add_node_at(NodeKey(1), 1.0, Vec2::new(0.0, 0.0));
        e.add_node_at(NodeKey(2), 1.0, Vec2::new(10.0, 0.0));
        e.add_edge(NodeKey(1), NodeKey(2));
        e.run(500, 1e-6);
        // Drag node 1 far away; its neighbour must follow.
        e.move_node(NodeKey(1), Vec2::new(200.0, 200.0));
        e.pin(NodeKey(1));
        e.run(3000, 1e-6);
        let p2 = e.position(NodeKey(2)).unwrap();
        assert!(
            p2.distance(Vec2::new(200.0, 200.0)) < 40.0,
            "neighbour at {p2} did not follow"
        );
    }

    #[test]
    fn determinism_same_seed_same_layout() {
        let build = || {
            let mut e = engine();
            for i in 0..20 {
                e.add_node(NodeKey(i), 1.0 + i as f64 * 0.1);
            }
            for i in 0..19 {
                e.add_edge(NodeKey(i), NodeKey(i + 1));
            }
            e.run(200, 1e-9);
            e.positions().collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn naive_and_bh_agree_on_small_graphs() {
        let mut a = engine();
        let mut b = engine();
        a.config_mut().theta = 0.0; // exact BH
        for e in [&mut a, &mut b] {
            e.add_node_at(NodeKey(1), 1.0, Vec2::new(0.0, 0.0));
            e.add_node_at(NodeKey(2), 2.0, Vec2::new(7.0, 1.0));
            e.add_node_at(NodeKey(3), 1.5, Vec2::new(-3.0, 4.0));
            e.add_edge(NodeKey(1), NodeKey(2));
        }
        for _ in 0..50 {
            a.step();
            b.step_naive();
        }
        for k in [NodeKey(1), NodeKey(2), NodeKey(3)] {
            let pa = a.position(k).unwrap();
            let pb = b.position(k).unwrap();
            assert!((pa - pb).length() < 1e-6, "{k:?}: {pa} vs {pb}");
        }
    }

    #[test]
    fn merge_places_aggregate_at_barycenter_with_summed_charge() {
        let mut e = engine();
        e.add_node_at(NodeKey(1), 2.0, Vec2::new(0.0, 0.0));
        e.add_node_at(NodeKey(2), 2.0, Vec2::new(10.0, 0.0));
        e.add_node_at(NodeKey(3), 1.0, Vec2::new(100.0, 100.0));
        e.add_edge(NodeKey(1), NodeKey(3));
        e.add_edge(NodeKey(1), NodeKey(2)); // internal edge: vanishes
        e.merge_nodes(NodeKey(99), &[NodeKey(1), NodeKey(2)]);
        assert_eq!(e.len(), 2);
        assert_eq!(e.charge(NodeKey(99)), Some(4.0), "charge is the sum (§4.2)");
        assert_eq!(e.position(NodeKey(99)), Some(Vec2::new(5.0, 0.0)));
        assert!(e.has_edge(NodeKey(99), NodeKey(3)), "external edge re-attached");
        assert_eq!(e.edge_count(), 1);
    }

    #[test]
    fn split_spawns_children_around_parent() {
        let mut e = engine();
        e.add_node_at(NodeKey(99), 4.0, Vec2::new(5.0, 5.0));
        assert!(e.split_node(NodeKey(99), &[(NodeKey(1), 2.0), (NodeKey(2), 2.0)]));
        assert_eq!(e.len(), 2);
        assert!(e.position(NodeKey(99)).is_none());
        for k in [NodeKey(1), NodeKey(2)] {
            let p = e.position(k).unwrap();
            assert!(p.distance(Vec2::new(5.0, 5.0)) < e.config().spring_length);
        }
        assert!(!e.split_node(NodeKey(98), &[]), "unknown parent");
    }

    #[test]
    fn merge_then_split_roundtrip_is_smooth() {
        let mut e = engine();
        for i in 0..6 {
            e.add_node(NodeKey(i), 1.0);
        }
        for i in 0..5 {
            e.add_edge(NodeKey(i), NodeKey(i + 1));
        }
        e.run(300, 1e-6);
        let before = e.position(NodeKey(2)).unwrap();
        e.merge_nodes(NodeKey(100), &[NodeKey(2), NodeKey(3)]);
        let agg = e.position(NodeKey(100)).unwrap();
        // Aggregate appears between its members, near where they were.
        assert!(agg.distance(before) < e.config().spring_length * 4.0);
        e.split_node(NodeKey(100), &[(NodeKey(2), 1.0), (NodeKey(3), 1.0)]);
        let after = e.position(NodeKey(2)).unwrap();
        assert!(after.distance(agg) < e.config().spring_length);
    }

    #[test]
    fn coincident_nodes_separate_without_nans() {
        // A pile of nodes dropped at the same position (a collapsed
        // aggregate being expanded, or a degenerate trace) must fan out
        // instead of dividing by zero or marching in lockstep.
        let p = Vec2::new(3.0, -2.0);
        for naive in [false, true] {
            let mut e = engine();
            for i in 0..8 {
                e.add_node_at(NodeKey(i), 1.0, p);
            }
            for _ in 0..100 {
                if naive {
                    e.step_naive();
                } else {
                    e.step();
                }
            }
            let pos: Vec<Vec2> = e.positions().map(|(_, p)| p).collect();
            for p in &pos {
                assert!(p.x.is_finite() && p.y.is_finite(), "non-finite {p}");
            }
            for i in 0..pos.len() {
                for j in 0..i {
                    assert!(
                        pos[i].distance(pos[j]) > 1.0,
                        "nodes {i}/{j} still coincident at {} / {}",
                        pos[i],
                        pos[j]
                    );
                }
            }
        }
    }

    /// The satellite invariant: the parallel force pass produces
    /// byte-identical layouts to the serial pass, whatever the thread
    /// count or chunking.
    #[test]
    fn parallel_repulsion_is_byte_identical_to_serial() {
        let build = |threads: Option<usize>| {
            let mut e = engine();
            e.set_parallelism(threads);
            for i in 0..300 {
                e.add_node(NodeKey(i), 1.0 + (i % 7) as f64 * 0.3);
            }
            for i in 0..299 {
                if i % 3 != 0 {
                    e.add_edge(NodeKey(i), NodeKey(i + 1));
                }
            }
            for _ in 0..40 {
                e.step();
            }
            e.positions().collect::<Vec<_>>()
        };
        let serial = build(Some(1));
        // Auto mode, even splits, ragged splits, more threads than
        // cores: all must match the serial pass exactly (f64 equality,
        // i.e. bit-for-bit for finite values).
        for threads in [None, Some(2), Some(3), Some(7), Some(16)] {
            assert_eq!(serial, build(threads), "thread policy {threads:?} diverged");
        }
    }

    #[test]
    fn parallelism_policy_is_clamped_and_readable() {
        let mut e = engine();
        assert_eq!(e.parallelism(), None);
        e.set_parallelism(Some(0));
        assert_eq!(e.parallelism(), Some(1), "0 clamps to serial");
        e.set_parallelism(Some(4));
        assert_eq!(e.parallelism(), Some(4));
        // More threads than nodes must not panic.
        e.add_node(NodeKey(1), 1.0);
        e.add_node(NodeKey(2), 1.0);
        e.step();
        e.set_parallelism(None);
        assert_eq!(e.parallelism(), None);
    }

    #[test]
    fn kinetic_energy_decreases_towards_convergence() {
        let mut e = engine();
        for i in 0..12 {
            e.add_node(NodeKey(i), 1.0);
        }
        for i in 0..11 {
            e.add_edge(NodeKey(i), NodeKey(i + 1));
        }
        for _ in 0..30 {
            e.step();
        }
        let early = e.kinetic_energy();
        for _ in 0..1000 {
            e.step();
        }
        let late = e.kinetic_energy();
        assert!(late < early, "energy should decay: {early} → {late}");
    }

    #[test]
    fn bounds_cover_all_nodes() {
        let mut e = engine();
        assert!(e.bounds().is_none());
        e.add_node_at(NodeKey(1), 1.0, Vec2::new(-5.0, 2.0));
        e.add_node_at(NodeKey(2), 1.0, Vec2::new(7.0, -3.0));
        let (lo, hi) = e.bounds().unwrap();
        assert_eq!(lo, Vec2::new(-5.0, -3.0));
        assert_eq!(hi, Vec2::new(7.0, 2.0));
    }
}
