//! # viva-layout — dynamic force-directed graph layout
//!
//! Implements the paper's §3.3/§4.2 layout system: node positions are
//! driven by physical forces —
//!
//! * **charge** — Coulomb repulsion between every pair of nodes; an
//!   aggregated node's charge is the *sum* of the charges it groups
//!   (paper §4.2), so collapsed groups keep pushing their surroundings
//!   as hard as their members did;
//! * **spring** — Hooke attraction along every edge;
//! * **damping** — velocity decay, the analyst's "converge faster /
//!   freeze" knob.
//!
//! Repulsion is computed either naively in `O(n²)`
//! ([`LayoutEngine::step_naive`]) or with the **Barnes-Hut**
//! approximation in `O(n log n)` ([`LayoutEngine::step`]) — the paper's
//! scalability argument, benchmarked in `viva-bench`.
//!
//! The engine is *dynamic*: nodes and edges can be added, removed,
//! pinned and dragged while the simulation keeps iterating, which is
//! what makes interactive aggregation/disaggregation smooth
//! ([`LayoutEngine::merge_nodes`] / [`LayoutEngine::split_node`]).
//!
//! ## Example
//!
//! ```
//! use viva_layout::{LayoutConfig, LayoutEngine, NodeKey};
//!
//! let mut e = LayoutEngine::new(LayoutConfig::default(), 42);
//! let a = NodeKey(0);
//! let b = NodeKey(1);
//! e.add_node(a, 1.0);
//! e.add_node(b, 1.0);
//! e.add_edge(a, b);
//! e.run(500, 1e-4);
//! let d = (e.position(a).unwrap() - e.position(b).unwrap()).length();
//! // Connected nodes settle near the natural spring length.
//! assert!(d > 0.0);
//! ```

pub mod engine;
pub mod forces;
pub mod metrics;
pub mod quadtree;
pub mod vec2;

pub use engine::{FreezeReason, LayoutEngine, NodeKey};
pub use forces::LayoutConfig;
pub use quadtree::QuadTree;
pub use vec2::Vec2;
