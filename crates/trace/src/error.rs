//! Error type shared by all fallible trace operations.

use std::error::Error;
use std::fmt;

use crate::container::ContainerId;
use crate::loader::BudgetBreach;

/// Errors produced while building or querying traces.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// A timestamp was lower than an earlier timestamp recorded for the
    /// same signal, or not finite.
    NonMonotonicTime {
        /// The offending timestamp.
        time: f64,
        /// The latest timestamp already recorded.
        last: f64,
    },
    /// A timestamp or value was NaN or infinite.
    NotFinite {
        /// The offending quantity.
        value: f64,
    },
    /// The referenced container does not exist in the container tree.
    UnknownContainer(ContainerId),
    /// A `sub_variable` would have driven a variable below zero.
    NegativeVariable {
        /// The resulting (rejected) value.
        value: f64,
    },
    /// A pop was attempted on a container with an empty state stack.
    EmptyStateStack(ContainerId),
    /// Malformed input while importing a trace.
    Parse {
        /// 1-based line number of the offending record.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// The underlying stream failed while loading a trace.
    ///
    /// Carries the I/O error's message rather than the error itself so
    /// that `TraceError` stays `Clone + PartialEq`.
    Io {
        /// Rendered [`std::io::Error`].
        message: String,
    },
    /// A [`crate::ResourceBudget`] axis was exhausted during a
    /// `Strict`-mode load (`Lenient` loads report the breach on the
    /// [`crate::LoadReport`] instead).
    BudgetExceeded(BudgetBreach),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::NonMonotonicTime { time, last } => {
                write!(f, "timestamp {time} precedes already-recorded {last}")
            }
            TraceError::NotFinite { value } => {
                write!(f, "non-finite quantity {value}")
            }
            TraceError::UnknownContainer(id) => {
                write!(f, "unknown container {id:?}")
            }
            TraceError::NegativeVariable { value } => {
                write!(f, "variable would become negative ({value})")
            }
            TraceError::EmptyStateStack(id) => {
                write!(f, "pop on empty state stack of container {id:?}")
            }
            TraceError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            TraceError::Io { message } => {
                write!(f, "i/o error while loading trace: {message}")
            }
            TraceError::BudgetExceeded(breach) => {
                write!(f, "resource budget exceeded: {breach}")
            }
        }
    }
}

impl Error for TraceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let e = TraceError::NonMonotonicTime { time: 1.0, last: 2.0 };
        let s = e.to_string();
        assert!(!s.is_empty());
        assert!(s.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TraceError>();
    }
}
