//! # viva-trace — trace substrate for topology-based visualization
//!
//! This crate implements the trace model that the VIVA visualization
//! technique (Schnorr, Legrand, Vincent — ISPASS 2013) consumes. It is
//! heavily inspired by the [Paje] trace format the original tool reads:
//! a tree of *containers* (monitored entities: grids, sites, clusters,
//! hosts, links, processes), a registry of typed *metrics* (computing
//! power in MFlop/s, bandwidth in Mbit/s, ...), and per
//! (container, metric) *signals* — piecewise-constant functions of time
//! built from timestamped variable events.
//!
//! The central analytical operation of the paper, the multi-scale
//! aggregation of Equation 1, reduces to *integrating* those signals
//! over a time-slice; [`Signal::integrate`] implements that exactly
//! (and in `O(log n + k)` for `k` segments inside the slice).
//!
//! [Paje]: https://github.com/schnorr/pajeng
//!
//! ## Example
//!
//! ```
//! use viva_trace::{TraceBuilder, ContainerKind};
//!
//! let mut b = TraceBuilder::new();
//! let root = b.root();
//! let host = b.new_container(root, "hostA", ContainerKind::Host)?;
//! let power = b.metric("power", "MFlop/s");
//! b.set_variable(0.0, host, power, 100.0)?;
//! b.set_variable(5.0, host, power, 50.0)?;
//! let trace = b.finish(10.0);
//! let sig = trace.signal(host, power).unwrap();
//! assert_eq!(sig.integrate(0.0, 10.0), 100.0 * 5.0 + 50.0 * 5.0);
//! # Ok::<(), viva_trace::TraceError>(())
//! ```

pub mod builder;
pub mod columns;
pub mod container;
pub mod error;
pub mod event;
pub mod export;
pub mod journal;
pub mod live;
pub mod loader;
pub mod metric;
pub mod signal;
pub mod state;
pub mod timeline;
pub mod trace;

pub use builder::TraceBuilder;
pub use columns::{ColumnStore, SignalTable};
pub use container::{Container, ContainerId, ContainerKind, ContainerTree};
pub use error::TraceError;
pub use event::Event;
pub use journal::{
    AppendOutcome, JournalConfig, JournalError, JournalRecord, JournalWriter, RecoveredJournal,
};
pub use live::{LiveLine, SamplePrior};
pub use loader::{
    BudgetBreach, BudgetKind, LoadDiagnostic, LoadReport, RecoveryMode, ResourceBudget,
    TraceLoader,
};
pub use metric::{Metric, MetricId, MetricRegistry};
pub use signal::Signal;
pub use state::{StateLog, StateRecord};
pub use trace::{LinkRecord, Trace};
