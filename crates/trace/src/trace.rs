//! The queryable, immutable trace produced by [`crate::TraceBuilder`].

use std::collections::HashMap;

use crate::columns::SignalTable;
use crate::container::{ContainerId, ContainerKind, ContainerTree};
use crate::metric::{Metric, MetricId, MetricRegistry};
use crate::signal::Signal;
use crate::state::StateRecord;

/// A completed point-to-point communication, kept for topology
/// inference (paper §3.1.1: "use traces with the messages exchanged
/// among processes, using the communication pattern to interconnect
/// processes").
#[derive(Debug, Clone, PartialEq)]
pub struct LinkRecord {
    /// Send time.
    pub start: f64,
    /// Receive time.
    pub end: f64,
    /// Sending container.
    pub from: ContainerId,
    /// Receiving container.
    pub to: ContainerId,
    /// Payload size in Mbit.
    pub size: f64,
}

/// An immutable, indexed trace: container tree + metric registry +
/// per-(container, metric) signals + states + communications.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    pub(crate) containers: ContainerTree,
    pub(crate) metrics: MetricRegistry,
    pub(crate) signals: SignalTable,
    pub(crate) states: Vec<StateRecord>,
    pub(crate) links: Vec<LinkRecord>,
    pub(crate) start: f64,
    pub(crate) end: f64,
    /// Non-finite samples quarantined per `(container, metric)` at the
    /// ingestion boundary (see `crate::loader`). Empty for traces built
    /// directly through the builder, whose signals reject non-finite
    /// values outright.
    pub(crate) quarantined: HashMap<(ContainerId, MetricId), u64>,
    /// Input records dropped before reaching the builder (lenient
    /// loads); 0 for clean or directly-built traces.
    pub(crate) ingest_dropped: u64,
}

impl Trace {
    /// The container hierarchy.
    pub fn containers(&self) -> &ContainerTree {
        &self.containers
    }

    /// The metric registry.
    pub fn metrics(&self) -> &MetricRegistry {
        &self.metrics
    }

    /// Observation-period start.
    pub fn start(&self) -> f64 {
        self.start
    }

    /// Observation-period end.
    pub fn end(&self) -> f64 {
        self.end
    }

    /// Observation-period duration.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }

    /// The signal of `metric` on `container`, if any value was ever
    /// recorded for that pair.
    pub fn signal(&self, container: ContainerId, metric: MetricId) -> Option<&Signal> {
        self.signals.get(container, metric)
    }

    /// Convenience: signal looked up by metric *name*.
    pub fn signal_by_name(&self, container: ContainerId, metric: &str) -> Option<&Signal> {
        let m = self.metrics.by_name(metric)?;
        self.signal(container, m.id())
    }

    /// Iterates over all `(container, metric, signal)` triples in
    /// deterministic metric-major, then container-id, order (the
    /// [`SignalTable`] storage order).
    pub fn signals(&self) -> impl Iterator<Item = (ContainerId, MetricId, &Signal)> {
        self.signals.iter()
    }

    /// Number of stored signals.
    pub fn signal_count(&self) -> usize {
        self.signals.len()
    }

    /// Containers that carry a signal for `metric`, in ascending id
    /// order — one contiguous range walk of the pair table.
    pub fn containers_with_metric(&self, metric: MetricId) -> Vec<ContainerId> {
        self.signals.for_metric(metric).map(|(c, _)| c).collect()
    }

    /// All `(container, signal)` pairs recorded for `metric`, in
    /// container-id order — the deterministic enumeration aggregation
    /// indices are built from. With the metric-major [`SignalTable`]
    /// this is a contiguous slice walk: no whole-map filter, no sort.
    pub fn signals_for_metric(&self, metric: MetricId) -> Vec<(ContainerId, &Signal)> {
        self.signals.for_metric(metric).collect()
    }

    /// Completed state intervals, sorted by `(container, start)`.
    pub fn states(&self) -> &[StateRecord] {
        &self.states
    }

    /// Completed communications, in completion order.
    pub fn links(&self) -> &[LinkRecord] {
        &self.links
    }

    /// Total number of breakpoints across all signals — a measure of
    /// trace size for scalability experiments.
    pub fn breakpoint_count(&self) -> usize {
        self.signals.signals().map(Signal::len).sum()
    }

    /// Approximate bytes held by signal storage (breakpoint columns
    /// plus pair keys) — the resident-memory side of the scale bench's
    /// columnar accounting.
    pub fn signal_bytes(&self) -> usize {
        self.signals.approx_bytes()
    }

    /// Distinct unordered communication pairs, usable as graph edges
    /// when no platform topology is available (paper §3.1.1).
    pub fn communication_pairs(&self) -> Vec<(ContainerId, ContainerId)> {
        let mut pairs: Vec<(ContainerId, ContainerId)> = self
            .links
            .iter()
            .map(|l| {
                if l.from <= l.to {
                    (l.from, l.to)
                } else {
                    (l.to, l.from)
                }
            })
            .collect();
        pairs.sort();
        pairs.dedup();
        pairs
    }

    /// Time-integrated value of `metric` on `container` over `[a, b]`,
    /// 0 when the pair has no signal. This is `F_{Γ,Δ}` of the paper's
    /// Equation 1 for a singleton spatial neighbourhood.
    pub fn integrate(&self, container: ContainerId, metric: MetricId, a: f64, b: f64) -> f64 {
        self.signal(container, metric)
            .map_or(0.0, |s| s.integrate(a, b))
    }

    /// Leaf containers of a given kind — the monitored entities drawn
    /// as graph nodes at the finest spatial scale.
    pub fn entities(&self, kind: ContainerKind) -> Vec<ContainerId> {
        self.containers.of_kind(kind)
    }

    /// Looks a metric id up by name.
    pub fn metric_id(&self, name: &str) -> Option<MetricId> {
        self.metrics.by_name(name).map(Metric::id)
    }

    /// Non-finite samples quarantined at ingestion for this
    /// `(container, metric)` pair. 0 means the pair's signal is a
    /// faithful record of the input.
    pub fn quarantined(&self, container: ContainerId, metric: MetricId) -> u64 {
        self.quarantined
            .get(&(container, metric))
            .copied()
            .unwrap_or(0)
    }

    /// Total quarantined samples across all pairs.
    pub fn quarantined_total(&self) -> u64 {
        self.quarantined.values().sum()
    }

    /// All non-zero quarantine counters, in unspecified order.
    pub fn quarantined_entries(
        &self,
    ) -> impl Iterator<Item = (ContainerId, MetricId, u64)> + '_ {
        self.quarantined.iter().map(|(&(c, m), &n)| (c, m, n))
    }

    /// Quarantined samples of `metric` summed over the subtree rooted
    /// at `group` — the naive counterpart of the indexed lookup in
    /// `viva-agg`.
    ///
    /// # Panics
    ///
    /// Panics if `group` is not part of this trace's container tree.
    pub fn quarantined_under(&self, group: ContainerId, metric: MetricId) -> u64 {
        self.containers
            .subtree(group)
            .into_iter()
            .map(|c| self.quarantined(c, metric))
            .sum()
    }

    /// Input records dropped at the ingestion boundary (malformed lines
    /// a lenient load skipped); 0 for clean or directly-built traces.
    /// Views propagate this so renders can badge partial data.
    pub fn ingest_dropped(&self) -> u64 {
        self.ingest_dropped
    }

    /// Reinstates ingestion-degradation bookkeeping on a rebuilt trace.
    ///
    /// Quarantine counters and the dropped-record tally are *ingestion*
    /// facts — the canonical CSV interchange form carries only the
    /// surviving samples, so a trace round-tripped through
    /// [`crate::export::to_csv`] loses them. Session checkpoint/restore
    /// serializes the counters alongside the CSV and replays them here,
    /// keeping the degraded-data badges of a restored session's renders
    /// byte-identical to the live session's. Entries naming containers
    /// or metrics the trace does not contain are ignored rather than
    /// trusted (checkpoints are external input).
    pub fn restore_ingest_degradation(
        &mut self,
        quarantined: &[(ContainerId, MetricId, u64)],
        ingest_dropped: u64,
    ) {
        for &(c, m, n) in quarantined {
            if n == 0 || self.containers.get(c).is_none() || self.metrics.get(m).is_none() {
                continue;
            }
            self.quarantined.insert((c, m), n);
        }
        self.ingest_dropped = ingest_dropped;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;

    fn small_trace() -> Trace {
        let mut b = TraceBuilder::new();
        let root = b.root();
        let h1 = b.new_container(root, "h1", ContainerKind::Host).unwrap();
        let h2 = b.new_container(root, "h2", ContainerKind::Host).unwrap();
        let power = b.metric("power", "MFlop/s");
        b.set_variable(0.0, h1, power, 100.0).unwrap();
        b.set_variable(0.0, h2, power, 25.0).unwrap();
        b.link(1.0, 2.0, h1, h2, 8.0).unwrap();
        b.finish(10.0)
    }

    #[test]
    fn query_signals() {
        let t = small_trace();
        let power = t.metric_id("power").unwrap();
        let h1 = t.containers().by_name("h1").unwrap().id();
        assert_eq!(t.integrate(h1, power, 0.0, 10.0), 1000.0);
        assert_eq!(t.signal_count(), 2);
        assert_eq!(t.containers_with_metric(power).len(), 2);
        assert_eq!(t.breakpoint_count(), 2);
    }

    #[test]
    fn integrate_missing_pair_is_zero() {
        let t = small_trace();
        let power = t.metric_id("power").unwrap();
        assert_eq!(t.integrate(t.containers().root(), power, 0.0, 10.0), 0.0);
    }

    #[test]
    fn communication_pairs_dedup() {
        let mut b = TraceBuilder::new();
        let root = b.root();
        let a = b.new_container(root, "a", ContainerKind::Process).unwrap();
        let c = b.new_container(root, "c", ContainerKind::Process).unwrap();
        b.link(0.0, 1.0, a, c, 1.0).unwrap();
        b.link(1.0, 2.0, c, a, 1.0).unwrap();
        b.link(2.0, 3.0, a, c, 1.0).unwrap();
        let t = b.finish(5.0);
        assert_eq!(t.communication_pairs(), vec![(a, c)]);
        assert_eq!(t.links().len(), 3);
    }

    #[test]
    fn span_and_duration() {
        let t = small_trace();
        assert_eq!(t.start(), 0.0);
        assert_eq!(t.end(), 10.0);
        assert_eq!(t.duration(), 10.0);
    }
}
