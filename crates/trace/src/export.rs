//! Plain-text trace serialization (a Paje-flavoured CSV dialect).
//!
//! The format is line-oriented; each line is one record whose first
//! field is the record kind. Free-form names always sit in the *last*
//! field so they may contain commas. Round-tripping a trace through
//! [`to_csv`] / [`from_csv`] preserves containers, metrics, signals,
//! states and links exactly (floats are printed with full precision).
//!
//! ```text
//! span,<start>,<end>
//! container,<id>,<parent-id>,<kind>,<name>
//! metric,<id>,<unit>,<name>
//! var,<time>,<container-id>,<metric-id>,<value>
//! state,<container-id>,<start>,<end>,<depth>,<name>
//! link,<start>,<end>,<from-id>,<to-id>,<size>
//! ```

use std::fmt::Write as _;

use crate::builder::TraceBuilder;
use crate::container::{ContainerId, ContainerKind};
use crate::error::TraceError;
use crate::metric::MetricId;
use crate::state::StateRecord;
use crate::trace::Trace;

/// Serializes `trace` to the CSV dialect described at module level.
pub fn to_csv(trace: &Trace) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "span,{:?},{:?}", trace.start(), trace.end());
    for c in trace.containers().iter() {
        if let Some(parent) = c.parent() {
            let _ = writeln!(
                out,
                "container,{},{},{},{}",
                c.id().index(),
                parent.index(),
                c.kind().label(),
                c.name()
            );
        }
    }
    for m in trace.metrics().iter() {
        let _ = writeln!(out, "metric,{},{},{}", m.id().index(), m.unit(), m.name());
    }
    // Variable breakpoints, sorted by time then (container, metric) for
    // a deterministic, replayable event order.
    let mut vars: Vec<(f64, ContainerId, MetricId, f64)> = Vec::new();
    for (c, m, sig) in trace.signals() {
        for (start, _, value) in sig.segments() {
            vars.push((start, c, m, value));
        }
    }
    vars.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    for (t, c, m, v) in vars {
        let _ = writeln!(out, "var,{:?},{},{},{:?}", t, c.index(), m.index(), v);
    }
    for s in trace.states() {
        let _ = writeln!(
            out,
            "state,{},{:?},{:?},{},{}",
            s.container.index(),
            s.start,
            s.end,
            s.depth,
            s.state
        );
    }
    for l in trace.links() {
        let _ = writeln!(
            out,
            "link,{:?},{:?},{},{},{:?}",
            l.start,
            l.end,
            l.from.index(),
            l.to.index(),
            l.size
        );
    }
    out
}

fn parse_f64(s: &str, line: usize) -> Result<f64, TraceError> {
    s.parse::<f64>().map_err(|e| TraceError::Parse {
        line,
        message: format!("bad float {s:?}: {e}"),
    })
}

fn parse_usize(s: &str, line: usize) -> Result<usize, TraceError> {
    s.parse::<usize>().map_err(|e| TraceError::Parse {
        line,
        message: format!("bad index {s:?}: {e}"),
    })
}

fn fields<const N: usize>(rest: &str, line: usize) -> Result<[&str; N], TraceError> {
    let mut it = rest.splitn(N, ',');
    let mut out = [""; N];
    for slot in out.iter_mut() {
        *slot = it.next().ok_or_else(|| TraceError::Parse {
            line,
            message: format!("expected {N} fields in {rest:?}"),
        })?;
    }
    Ok(out)
}

/// Parses a trace previously produced by [`to_csv`].
///
/// # Errors
///
/// Returns [`TraceError::Parse`] on malformed records, and propagates
/// recording errors (e.g. non-monotonic variable times).
pub fn from_csv(text: &str) -> Result<Trace, TraceError> {
    let mut b = TraceBuilder::new();
    let mut span_end = 0.0f64;
    // States are recorded as completed intervals; feed pushes/pops in
    // chronological order through a sorted buffer instead.
    let mut state_records: Vec<StateRecord> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let raw = raw.trim_end();
        if raw.is_empty() || raw.starts_with('#') {
            continue;
        }
        let (kind, rest) = raw.split_once(',').ok_or_else(|| TraceError::Parse {
            line: lineno,
            message: "missing record kind".to_owned(),
        })?;
        match kind {
            "span" => {
                let [_, e] = fields::<2>(rest, lineno)?;
                span_end = parse_f64(e, lineno)?;
            }
            "container" => {
                let [id, parent, ckind, name] = fields::<4>(rest, lineno)?;
                let expect = ContainerId::from_index(parse_usize(id, lineno)?);
                let parent = ContainerId::from_index(parse_usize(parent, lineno)?);
                let ckind =
                    ContainerKind::from_label(ckind).ok_or_else(|| TraceError::Parse {
                        line: lineno,
                        message: format!("unknown container kind {ckind:?}"),
                    })?;
                let got = b.new_container(parent, name, ckind)?;
                if got != expect {
                    return Err(TraceError::Parse {
                        line: lineno,
                        message: format!("container id mismatch: file {expect}, assigned {got}"),
                    });
                }
            }
            "metric" => {
                let [id, unit, name] = fields::<3>(rest, lineno)?;
                let expect = MetricId::from_index(parse_usize(id, lineno)?);
                let got = b.metric(name, unit);
                if got != expect {
                    return Err(TraceError::Parse {
                        line: lineno,
                        message: format!("metric id mismatch: file {expect}, assigned {got}"),
                    });
                }
            }
            "var" => {
                let [t, c, m, v] = fields::<4>(rest, lineno)?;
                b.set_variable(
                    parse_f64(t, lineno)?,
                    ContainerId::from_index(parse_usize(c, lineno)?),
                    MetricId::from_index(parse_usize(m, lineno)?),
                    parse_f64(v, lineno)?,
                )?;
            }
            "state" => {
                let [c, s, e, d, name] = fields::<5>(rest, lineno)?;
                state_records.push(StateRecord {
                    container: ContainerId::from_index(parse_usize(c, lineno)?),
                    start: parse_f64(s, lineno)?,
                    end: parse_f64(e, lineno)?,
                    depth: parse_usize(d, lineno)?,
                    state: name.to_owned(),
                });
            }
            "link" => {
                let [s, e, from, to, size] = fields::<5>(rest, lineno)?;
                b.link(
                    parse_f64(s, lineno)?,
                    parse_f64(e, lineno)?,
                    ContainerId::from_index(parse_usize(from, lineno)?),
                    ContainerId::from_index(parse_usize(to, lineno)?),
                    parse_f64(size, lineno)?,
                )?;
            }
            other => {
                return Err(TraceError::Parse {
                    line: lineno,
                    message: format!("unknown record kind {other:?}"),
                });
            }
        }
    }
    let mut trace = b.finish(span_end);
    // Completed states bypass the builder's push/pop mechanism.
    state_records
        .sort_by(|a, b| a.container.cmp(&b.container).then(a.start.total_cmp(&b.start)));
    trace.states = state_records;
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::ContainerKind;

    fn sample() -> Trace {
        let mut b = TraceBuilder::new();
        let root = b.root();
        let cluster = b.new_container(root, "adonis", ContainerKind::Cluster).unwrap();
        let h1 = b.new_container(cluster, "adonis-1", ContainerKind::Host).unwrap();
        let h2 = b.new_container(cluster, "adonis, two", ContainerKind::Host).unwrap();
        let power = b.metric("power", "MFlop/s");
        let used = b.metric("power_used", "MFlop/s");
        b.set_variable(0.0, h1, power, 100.0).unwrap();
        b.set_variable(0.0, h2, power, 25.0).unwrap();
        b.set_variable(1.5, h1, used, 60.0).unwrap();
        b.set_variable(3.25, h1, used, 0.0).unwrap();
        b.push_state(1.0, h1, "compute").unwrap();
        b.pop_state(4.0, h1).unwrap();
        b.link(2.0, 3.0, h1, h2, 80.0).unwrap();
        b.finish(10.0)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let t1 = sample();
        let csv = to_csv(&t1);
        let t2 = from_csv(&csv).expect("roundtrip parse");
        assert_eq!(t1.containers().len(), t2.containers().len());
        assert_eq!(t1.metrics().len(), t2.metrics().len());
        assert_eq!(t1.signal_count(), t2.signal_count());
        assert_eq!(t1.start(), t2.start());
        assert_eq!(t1.end(), t2.end());
        assert_eq!(t1.states().len(), t2.states().len());
        assert_eq!(t1.links().len(), t2.links().len());
        for (c, m, sig) in t1.signals() {
            let sig2 = t2.signal(c, m).expect("signal survives roundtrip");
            assert_eq!(sig, sig2, "signal mismatch on ({c}, {m})");
        }
        // Names with commas survive.
        assert!(t2.containers().by_name("adonis, two").is_some());
    }

    #[test]
    fn reexport_is_identical() {
        let t1 = sample();
        let csv1 = to_csv(&t1);
        let csv2 = to_csv(&from_csv(&csv1).unwrap());
        assert_eq!(csv1, csv2);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let t = from_csv("# a comment\n\nspan,0,5\n").unwrap();
        assert_eq!(t.end(), 5.0);
    }

    #[test]
    fn malformed_lines_error_with_line_numbers() {
        let err = from_csv("span,0,5\nbogus,1,2\n").unwrap_err();
        match err {
            TraceError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
        let err = from_csv("var,notafloat,0,0,1\n").unwrap_err();
        assert!(matches!(err, TraceError::Parse { line: 1, .. }));
    }

    #[test]
    fn float_precision_survives() {
        let mut b = TraceBuilder::new();
        let h = b.new_container(b.root(), "h", ContainerKind::Host).unwrap();
        let m = b.metric("x", "u");
        let v = 1.0 / 3.0;
        b.set_variable(0.1 + 0.2, h, m, v).unwrap();
        let t = b.finish(1.0);
        let t2 = from_csv(&to_csv(&t)).unwrap();
        assert_eq!(t2.signal(h, m).unwrap().value_at(0.5), v);
        assert_eq!(t2.signal(h, m).unwrap().times()[0], 0.1 + 0.2);
    }
}
