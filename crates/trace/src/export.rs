//! Plain-text trace serialization (a Paje-flavoured CSV dialect).
//!
//! The format is line-oriented; each line is one record whose first
//! field is the record kind. Free-form names always sit in the *last*
//! field so they may contain commas. Round-tripping a trace through
//! [`to_csv`] / [`from_csv`] preserves containers, metrics, signals,
//! states and links exactly (floats are printed with full precision).
//!
//! ```text
//! span,<start>,<end>
//! container,<id>,<parent-id>,<kind>,<name>
//! metric,<id>,<unit>,<name>
//! var,<time>,<container-id>,<metric-id>,<value>
//! state,<container-id>,<start>,<end>,<depth>,<name>
//! link,<start>,<end>,<from-id>,<to-id>,<size>
//! ```

use std::fmt::Write as _;

use crate::container::ContainerId;
use crate::error::TraceError;
use crate::loader::{RecoveryMode, ResourceBudget, TraceLoader};
use crate::metric::MetricId;
use crate::trace::Trace;

/// Serializes `trace` to the CSV dialect described at module level.
pub fn to_csv(trace: &Trace) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "span,{:?},{:?}", trace.start(), trace.end());
    for c in trace.containers().iter() {
        if let Some(parent) = c.parent() {
            let _ = writeln!(
                out,
                "container,{},{},{},{}",
                c.id().index(),
                parent.index(),
                c.kind().label(),
                c.name()
            );
        }
    }
    for m in trace.metrics().iter() {
        let _ = writeln!(out, "metric,{},{},{}", m.id().index(), m.unit(), m.name());
    }
    // Variable breakpoints, sorted by time then (container, metric) for
    // a deterministic, replayable event order.
    let mut vars: Vec<(f64, ContainerId, MetricId, f64)> = Vec::new();
    for (c, m, sig) in trace.signals() {
        for (start, _, value) in sig.segments() {
            vars.push((start, c, m, value));
        }
    }
    vars.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    for (t, c, m, v) in vars {
        let _ = writeln!(out, "var,{:?},{},{},{:?}", t, c.index(), m.index(), v);
    }
    // Same (container, start) order the loader normalizes to, so that
    // `to_csv ∘ from_csv` is a byte-level fixed point.
    let mut states: Vec<_> = trace.states().to_vec();
    states.sort_by(|a, b| a.container.cmp(&b.container).then(a.start.total_cmp(&b.start)));
    for s in states {
        let _ = writeln!(
            out,
            "state,{},{:?},{:?},{},{}",
            s.container.index(),
            s.start,
            s.end,
            s.depth,
            s.state
        );
    }
    for l in trace.links() {
        let _ = writeln!(
            out,
            "link,{:?},{:?},{},{},{:?}",
            l.start,
            l.end,
            l.from.index(),
            l.to.index(),
            l.size
        );
    }
    out
}

/// Parses a trace previously produced by [`to_csv`].
///
/// This is a thin wrapper over [`TraceLoader`] in
/// [`RecoveryMode::Strict`] with an unlimited [`ResourceBudget`]: pure
/// format-parser semantics for in-memory text you trust. For foreign
/// files, pipes, or anything size-unbounded, use [`TraceLoader`]
/// directly and pick a recovery mode and budget.
///
/// # Errors
///
/// Returns [`TraceError::Parse`] (with a 1-based line number) on
/// malformed records — including duplicate container ids, unknown
/// container/metric references, non-finite timestamps, and timestamps
/// outside the declared `span` — and propagates recording errors (e.g.
/// non-monotonic variable times).
pub fn from_csv(text: &str) -> Result<Trace, TraceError> {
    let report = TraceLoader::new()
        .mode(RecoveryMode::Strict)
        .budget(ResourceBudget::unlimited())
        .load_str(text)?;
    Ok(report.trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::container::ContainerKind;

    fn sample() -> Trace {
        let mut b = TraceBuilder::new();
        let root = b.root();
        let cluster = b.new_container(root, "adonis", ContainerKind::Cluster).unwrap();
        let h1 = b.new_container(cluster, "adonis-1", ContainerKind::Host).unwrap();
        let h2 = b.new_container(cluster, "adonis, two", ContainerKind::Host).unwrap();
        let power = b.metric("power", "MFlop/s");
        let used = b.metric("power_used", "MFlop/s");
        b.set_variable(0.0, h1, power, 100.0).unwrap();
        b.set_variable(0.0, h2, power, 25.0).unwrap();
        b.set_variable(1.5, h1, used, 60.0).unwrap();
        b.set_variable(3.25, h1, used, 0.0).unwrap();
        b.push_state(1.0, h1, "compute").unwrap();
        b.pop_state(4.0, h1).unwrap();
        b.link(2.0, 3.0, h1, h2, 80.0).unwrap();
        b.finish(10.0)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let t1 = sample();
        let csv = to_csv(&t1);
        let t2 = from_csv(&csv).expect("roundtrip parse");
        assert_eq!(t1.containers().len(), t2.containers().len());
        assert_eq!(t1.metrics().len(), t2.metrics().len());
        assert_eq!(t1.signal_count(), t2.signal_count());
        assert_eq!(t1.start(), t2.start());
        assert_eq!(t1.end(), t2.end());
        assert_eq!(t1.states().len(), t2.states().len());
        assert_eq!(t1.links().len(), t2.links().len());
        for (c, m, sig) in t1.signals() {
            let sig2 = t2.signal(c, m).expect("signal survives roundtrip");
            assert_eq!(sig, sig2, "signal mismatch on ({c}, {m})");
        }
        // Names with commas survive.
        assert!(t2.containers().by_name("adonis, two").is_some());
    }

    #[test]
    fn reexport_is_identical() {
        let t1 = sample();
        let csv1 = to_csv(&t1);
        let csv2 = to_csv(&from_csv(&csv1).unwrap());
        assert_eq!(csv1, csv2);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let t = from_csv("# a comment\n\nspan,0,5\n").unwrap();
        assert_eq!(t.end(), 5.0);
    }

    #[test]
    fn malformed_lines_error_with_line_numbers() {
        let err = from_csv("span,0,5\nbogus,1,2\n").unwrap_err();
        match err {
            TraceError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
        let err = from_csv("var,notafloat,0,0,1\n").unwrap_err();
        assert!(matches!(err, TraceError::Parse { line: 1, .. }));
    }

    #[test]
    fn duplicate_container_ids_rejected_with_line_number() {
        let text = "container,1,0,host,h0\ncontainer,1,0,host,h1\n";
        match from_csv(text).unwrap_err() {
            TraceError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("duplicate container id 1"), "{message}");
            }
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn out_of_range_timestamps_rejected_with_line_number() {
        let text = "span,0.0,5.0\n\
                    container,1,0,host,h\n\
                    metric,0,u,x\n\
                    var,9.0,1,0,1.0\n";
        match from_csv(text).unwrap_err() {
            TraceError::Parse { line, message } => {
                assert_eq!(line, 4);
                assert!(message.contains("outside the declared span"), "{message}");
            }
            other => panic!("expected parse error, got {other}"),
        }
        // Non-finite timestamps are out of every range.
        let text = "container,1,0,host,h\nmetric,0,u,x\nvar,inf,1,0,1.0\n";
        assert!(matches!(
            from_csv(text).unwrap_err(),
            TraceError::Parse { line: 3, .. }
        ));
    }

    #[test]
    fn unknown_references_rejected_with_line_number() {
        let err = from_csv("metric,0,u,x\nvar,0.0,7,0,1.0\n").unwrap_err();
        assert!(matches!(err, TraceError::Parse { line: 2, .. }), "{err:?}");
        let err = from_csv("container,1,0,host,h\nvar,0.0,1,3,1.0\n").unwrap_err();
        assert!(matches!(err, TraceError::Parse { line: 2, .. }), "{err:?}");
    }

    #[test]
    fn float_precision_survives() {
        let mut b = TraceBuilder::new();
        let h = b.new_container(b.root(), "h", ContainerKind::Host).unwrap();
        let m = b.metric("x", "u");
        let v = 1.0 / 3.0;
        b.set_variable(0.1 + 0.2, h, m, v).unwrap();
        let t = b.finish(1.0);
        let t2 = from_csv(&to_csv(&t)).unwrap();
        assert_eq!(t2.signal(h, m).unwrap().value_at(0.5), v);
        assert_eq!(t2.signal(h, m).unwrap().times()[0], 0.1 + 0.2);
    }
}
