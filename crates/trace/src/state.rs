//! Per-container state intervals (Gantt-chart material).
//!
//! While the paper's topology view is built on *variables*, process
//! states are part of the trace model (and of Paje); keeping them lets
//! downstream tooling compute e.g. the fraction of time spent in
//! `"compute"` per host, which is itself a variable-like quantity that
//! can be mapped onto the topology.

use crate::container::ContainerId;
use crate::error::TraceError;

/// A completed state interval on some container.
#[derive(Debug, Clone, PartialEq)]
pub struct StateRecord {
    /// The container the state applies to.
    pub container: ContainerId,
    /// State name.
    pub state: String,
    /// Interval start.
    pub start: f64,
    /// Interval end.
    pub end: f64,
    /// Stack depth at which the state sat (0 = outermost).
    pub depth: usize,
}

impl StateRecord {
    /// Interval duration.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }

    /// Length of the overlap between this interval and `[a, b]`.
    pub fn overlap(&self, a: f64, b: f64) -> f64 {
        (self.end.min(b) - self.start.max(a)).max(0.0)
    }
}

/// Collects push/pop state events into completed [`StateRecord`]s.
#[derive(Debug, Clone, Default)]
pub struct StateLog {
    records: Vec<StateRecord>,
    open: Vec<(ContainerId, String, f64)>,
}

impl StateLog {
    /// Creates an empty log.
    pub fn new() -> StateLog {
        StateLog::default()
    }

    /// Enters a state on `container` at time `t`.
    pub fn push(&mut self, t: f64, container: ContainerId, state: impl Into<String>) {
        self.open.push((container, state.into(), t));
    }

    /// Leaves the innermost open state of `container` at time `t`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::EmptyStateStack`] when `container` has no
    /// open state.
    pub fn pop(&mut self, t: f64, container: ContainerId) -> Result<(), TraceError> {
        let idx = self
            .open
            .iter()
            .rposition(|(c, _, _)| *c == container)
            .ok_or(TraceError::EmptyStateStack(container))?;
        let depth = self.open[..idx]
            .iter()
            .filter(|(c, _, _)| *c == container)
            .count();
        let (c, state, start) = self.open.remove(idx);
        self.records.push(StateRecord { container: c, state, start, end: t, depth });
        Ok(())
    }

    /// Closes every still-open state at time `t` and returns the
    /// completed records sorted by `(container, start)`.
    pub fn finish(mut self, t: f64) -> Vec<StateRecord> {
        while let Some((c, state, start)) = self.open.pop() {
            let depth = self
                .open
                .iter()
                .filter(|(oc, _, _)| *oc == c)
                .count();
            self.records.push(StateRecord { container: c, state, start, end: t, depth });
        }
        self.records
            .sort_by(|a, b| a.container.cmp(&b.container).then(a.start.total_cmp(&b.start)));
        self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_produces_record() {
        let c = ContainerId::from_index(1);
        let mut log = StateLog::new();
        log.push(1.0, c, "compute");
        log.pop(4.0, c).unwrap();
        let recs = log.finish(10.0);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].state, "compute");
        assert_eq!(recs[0].duration(), 3.0);
        assert_eq!(recs[0].depth, 0);
    }

    #[test]
    fn nested_states_have_depths() {
        let c = ContainerId::from_index(1);
        let mut log = StateLog::new();
        log.push(0.0, c, "outer");
        log.push(1.0, c, "inner");
        log.pop(2.0, c).unwrap();
        log.pop(3.0, c).unwrap();
        let recs = log.finish(3.0);
        let inner = recs.iter().find(|r| r.state == "inner").unwrap();
        let outer = recs.iter().find(|r| r.state == "outer").unwrap();
        assert_eq!(inner.depth, 1);
        assert_eq!(outer.depth, 0);
    }

    #[test]
    fn pop_on_empty_stack_errors() {
        let c = ContainerId::from_index(1);
        let mut log = StateLog::new();
        assert_eq!(log.pop(1.0, c), Err(TraceError::EmptyStateStack(c)));
    }

    #[test]
    fn finish_closes_open_states() {
        let c = ContainerId::from_index(1);
        let mut log = StateLog::new();
        log.push(2.0, c, "run");
        let recs = log.finish(9.0);
        assert_eq!(recs[0].end, 9.0);
    }

    #[test]
    fn overlap_clamps() {
        let r = StateRecord {
            container: ContainerId::from_index(0),
            state: "s".into(),
            start: 2.0,
            end: 6.0,
            depth: 0,
        };
        assert_eq!(r.overlap(0.0, 10.0), 4.0);
        assert_eq!(r.overlap(3.0, 4.0), 1.0);
        assert_eq!(r.overlap(6.0, 9.0), 0.0);
        assert_eq!(r.overlap(0.0, 2.0), 0.0);
    }
}
