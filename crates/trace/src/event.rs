//! Raw timestamped trace events.
//!
//! Events are the wire-level representation: what a tracer emits and
//! what exporters serialize. [`crate::TraceBuilder`] folds a stream of
//! events into the queryable [`crate::Trace`] structure.

use crate::container::{ContainerId, ContainerKind};
use crate::metric::MetricId;

/// One timestamped trace record.
///
/// The variants mirror the Paje event kinds the original VIVA tool
/// consumes: container lifecycle, variable updates, process states and
/// point-to-point communications.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A monitored entity appears.
    NewContainer {
        /// Creation time.
        time: f64,
        /// Id assigned to the new container.
        id: ContainerId,
        /// Parent container.
        parent: ContainerId,
        /// Sibling-unique name.
        name: String,
        /// Entity kind.
        kind: ContainerKind,
    },
    /// A variable takes a new absolute value.
    SetVariable {
        /// Event time.
        time: f64,
        /// Target container.
        container: ContainerId,
        /// Target metric.
        metric: MetricId,
        /// New value.
        value: f64,
    },
    /// A variable is incremented.
    AddVariable {
        /// Event time.
        time: f64,
        /// Target container.
        container: ContainerId,
        /// Target metric.
        metric: MetricId,
        /// Increment (non-negative).
        value: f64,
    },
    /// A variable is decremented.
    SubVariable {
        /// Event time.
        time: f64,
        /// Target container.
        container: ContainerId,
        /// Target metric.
        metric: MetricId,
        /// Decrement (non-negative).
        value: f64,
    },
    /// A container enters a named state (stacked).
    PushState {
        /// Event time.
        time: f64,
        /// Target container.
        container: ContainerId,
        /// State name (e.g. `"compute"`, `"wait"`).
        state: String,
    },
    /// A container leaves its current state.
    PopState {
        /// Event time.
        time: f64,
        /// Target container.
        container: ContainerId,
    },
    /// A point-to-point communication completed.
    Link {
        /// Send time.
        start: f64,
        /// Receive time.
        end: f64,
        /// Sending container.
        from: ContainerId,
        /// Receiving container.
        to: ContainerId,
        /// Payload size in Mbit.
        size: f64,
    },
}

impl Event {
    /// The timestamp ordering key of this event (start time for links).
    pub fn time(&self) -> f64 {
        match self {
            Event::NewContainer { time, .. }
            | Event::SetVariable { time, .. }
            | Event::AddVariable { time, .. }
            | Event::SubVariable { time, .. }
            | Event::PushState { time, .. }
            | Event::PopState { time, .. } => *time,
            Event::Link { start, .. } => *start,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_extracts_ordering_key() {
        let c = ContainerId::from_index(1);
        let m = MetricId::from_index(0);
        assert_eq!(
            Event::SetVariable { time: 2.5, container: c, metric: m, value: 1.0 }.time(),
            2.5
        );
        assert_eq!(
            Event::Link { start: 1.0, end: 4.0, from: c, to: c, size: 8.0 }.time(),
            1.0
        );
        assert_eq!(Event::PopState { time: 9.0, container: c }.time(), 9.0);
    }
}
