//! Behavioral (timeline / Gantt) extraction — the classical view the
//! paper's §2.2 contrasts the topology view against.
//!
//! While the topology view is the contribution, analysts still ask
//! timeline questions ("when was host X busy?"). This module derives
//! Gantt rows from state records and resamples signals into fixed-width
//! bins for sparkline-style rendering.

use crate::container::ContainerId;
use crate::signal::Signal;
use crate::state::StateRecord;
use crate::trace::Trace;

/// One row of a timeline view: the state intervals of one container,
/// in time order.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineRow {
    /// The container of this row.
    pub container: ContainerId,
    /// `(state name, start, end)` intervals at stack depth 0.
    pub intervals: Vec<(String, f64, f64)>,
}

/// Builds Gantt rows (outermost states only) for every container that
/// has at least one state record, in container-id order.
pub fn gantt_rows(trace: &Trace) -> Vec<TimelineRow> {
    let mut rows: Vec<TimelineRow> = Vec::new();
    for rec in trace.states() {
        if rec.depth != 0 {
            continue;
        }
        match rows.last_mut() {
            Some(row) if row.container == rec.container => {
                row.intervals.push((rec.state.clone(), rec.start, rec.end));
            }
            _ => rows.push(TimelineRow {
                container: rec.container,
                intervals: vec![(rec.state.clone(), rec.start, rec.end)],
            }),
        }
    }
    rows
}

/// Fraction of `[a, b]` that `container` spent in state `state`
/// (outermost level), 0 for an empty window.
pub fn state_fraction(
    trace: &Trace,
    container: ContainerId,
    state: &str,
    a: f64,
    b: f64,
) -> f64 {
    if b <= a {
        return 0.0;
    }
    let busy: f64 = trace
        .states()
        .iter()
        .filter(|r| r.container == container && r.depth == 0 && r.state == state)
        .map(|r| r.overlap(a, b))
        .sum();
    busy / (b - a)
}

/// Resamples a signal into `bins` equal-width bins over `[a, b]`; each
/// bin holds the signal's *mean* over the bin (exact, via integration).
/// Useful for sparkline/heatmap rendering of utilization profiles.
///
/// # Panics
///
/// Panics when `bins == 0` or `b < a`.
pub fn resample(signal: &Signal, a: f64, b: f64, bins: usize) -> Vec<f64> {
    assert!(bins > 0, "need at least one bin");
    assert!(b >= a, "inverted window");
    let w = (b - a) / bins as f64;
    (0..bins)
        .map(|i| {
            let s = a + w * i as f64;
            signal.mean(s, s + w)
        })
        .collect()
}

/// Longest-busy ranking: containers ordered by their integral of
/// `metric` over `[a, b]`, descending. Ties broken by container id.
/// The "top talkers" question every performance analyst asks first.
pub fn top_consumers(
    trace: &Trace,
    metric: crate::metric::MetricId,
    a: f64,
    b: f64,
    limit: usize,
) -> Vec<(ContainerId, f64)> {
    let mut v: Vec<(ContainerId, f64)> = trace
        .containers_with_metric(metric)
        .into_iter()
        .map(|c| (c, trace.integrate(c, metric, a, b)))
        .collect();
    v.sort_by(|x, y| y.1.total_cmp(&x.1).then(x.0.cmp(&y.0)));
    v.truncate(limit);
    v
}

/// Returns the `StateRecord`s overlapping `[a, b]`, for windowed Gantt
/// rendering.
pub fn states_in_window(trace: &Trace, a: f64, b: f64) -> Vec<&StateRecord> {
    trace
        .states()
        .iter()
        .filter(|r| r.overlap(a, b) > 0.0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::container::ContainerKind;

    fn sample() -> (Trace, ContainerId, ContainerId) {
        let mut b = TraceBuilder::new();
        let p0 = b.new_container(b.root(), "p0", ContainerKind::Process).unwrap();
        let p1 = b.new_container(b.root(), "p1", ContainerKind::Process).unwrap();
        let m = b.metric("power_used", "MFlop/s");
        b.push_state(0.0, p0, "compute").unwrap();
        b.pop_state(4.0, p0).unwrap();
        b.push_state(4.0, p0, "wait").unwrap();
        b.pop_state(6.0, p0).unwrap();
        b.push_state(2.0, p1, "compute").unwrap();
        b.pop_state(8.0, p1).unwrap();
        b.set_variable(0.0, p0, m, 100.0).unwrap();
        b.set_variable(5.0, p0, m, 0.0).unwrap();
        b.set_variable(0.0, p1, m, 40.0).unwrap();
        (b.finish(10.0), p0, p1)
    }

    #[test]
    fn gantt_rows_group_by_container() {
        let (t, p0, p1) = sample();
        let rows = gantt_rows(&t);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].container, p0);
        assert_eq!(
            rows[0].intervals,
            vec![
                ("compute".to_owned(), 0.0, 4.0),
                ("wait".to_owned(), 4.0, 6.0)
            ]
        );
        assert_eq!(rows[1].container, p1);
    }

    #[test]
    fn state_fractions() {
        let (t, p0, _) = sample();
        assert_eq!(state_fraction(&t, p0, "compute", 0.0, 4.0), 1.0);
        assert_eq!(state_fraction(&t, p0, "compute", 0.0, 8.0), 0.5);
        assert_eq!(state_fraction(&t, p0, "wait", 0.0, 8.0), 0.25);
        assert_eq!(state_fraction(&t, p0, "idle", 0.0, 8.0), 0.0);
        assert_eq!(state_fraction(&t, p0, "compute", 5.0, 5.0), 0.0);
    }

    #[test]
    fn resample_bins_hold_means() {
        let (t, p0, _) = sample();
        let sig = t.signal_by_name(p0, "power_used").unwrap();
        let bins = resample(sig, 0.0, 10.0, 10);
        assert_eq!(bins.len(), 10);
        assert_eq!(bins[0], 100.0);
        assert_eq!(bins[4], 100.0);
        assert_eq!(bins[5], 0.0);
        // Sum of bin means × width equals the integral.
        let total: f64 = bins.iter().sum::<f64>() * 1.0;
        assert!((total - sig.integrate(0.0, 10.0)).abs() < 1e-9);
    }

    #[test]
    fn top_consumers_rank_by_integral() {
        let (t, p0, p1) = sample();
        let m = t.metric_id("power_used").unwrap();
        let top = top_consumers(&t, m, 0.0, 10.0, 10);
        assert_eq!(top[0].0, p0); // 500 MFlop
        assert_eq!(top[1].0, p1); // 400 MFlop
        assert_eq!(top[0].1, 500.0);
        let top1 = top_consumers(&t, m, 0.0, 10.0, 1);
        assert_eq!(top1.len(), 1);
    }

    #[test]
    fn states_in_window_filters() {
        let (t, _, _) = sample();
        assert_eq!(states_in_window(&t, 0.0, 10.0).len(), 3);
        assert_eq!(states_in_window(&t, 6.5, 7.0).len(), 1);
        assert_eq!(states_in_window(&t, 9.0, 10.0).len(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn resample_rejects_zero_bins() {
        let (t, p0, _) = sample();
        let sig = t.signal_by_name(p0, "power_used").unwrap();
        let _ = resample(sig, 0.0, 1.0, 0);
    }
}
