//! Streaming, budgeted, recoverable trace ingestion.
//!
//! Trace files cross a **trust boundary**: they are produced by
//! external tracers (SMPI/SimGrid, Pajé-style dumps), copied over
//! flaky networks, truncated by full disks, or hand-edited. The
//! whole-string, fail-on-first-error [`crate::export::from_csv`] parser
//! is the wrong shape for that boundary, so this module provides the
//! hardened path every untrusted byte goes through:
//!
//! * **streaming** — [`TraceLoader::load`] reads any [`io::BufRead`]
//!   line by line; a trace never has to fit in memory twice, and a
//!   single over-long line is drained, not buffered;
//! * **recoverable** — [`RecoveryMode::Strict`] aborts on the first
//!   malformed record (with a line number *and* byte offset),
//!   [`RecoveryMode::Lenient`] skips it, records a capped diagnostic
//!   log and keeps going;
//! * **bounded** — a [`ResourceBudget`] caps events, containers, line
//!   length and the estimated memory footprint; exhaustion degrades to
//!   a typed [`BudgetBreach`] instead of an OOM kill;
//! * **quarantining** — non-finite (`NaN`/`±∞`) metric samples are
//!   counted per `(container, metric)` on the resulting [`Trace`]
//!   instead of poisoning downstream integrals; views surface the
//!   counter so the analyst knows the picture is partial.
//!
//! ```
//! use viva_trace::{RecoveryMode, ResourceBudget, TraceLoader};
//!
//! let text = "span,0.0,10.0\n\
//!             container,1,0,host,h\n\
//!             metric,0,MFlop/s,power\n\
//!             var,0.0,1,0,100.0\n\
//!             var,2.0,1,0,NaN\n\
//!             this line is garbage\n";
//! let report = TraceLoader::new()
//!     .mode(RecoveryMode::Lenient)
//!     .budget(ResourceBudget::default())
//!     .load(text.as_bytes())?;
//! assert_eq!(report.events, 1, "one good sample survived");
//! assert_eq!(report.quarantined, 1, "the NaN sample was quarantined");
//! assert_eq!(report.dropped, 2, "NaN sample + garbage line");
//! assert_eq!(report.trace.end(), 10.0);
//! # Ok::<(), viva_trace::TraceError>(())
//! ```

use std::fmt;
use std::io::{self, BufRead};

use viva_obs::Recorder;

use crate::builder::TraceBuilder;
use crate::container::{ContainerId, ContainerKind};
use crate::error::TraceError;
use crate::metric::MetricId;
use crate::state::StateRecord;
use crate::trace::Trace;

/// What the loader does when a record cannot be ingested.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryMode {
    /// The first malformed record aborts the load with a line-numbered,
    /// byte-offset-precise error. The right mode for data you control
    /// (round-tripping your own exports, golden files).
    #[default]
    Strict,
    /// Malformed records are skipped and recorded in a capped
    /// diagnostic log; the load continues and returns the subset trace
    /// that survived. The right mode for foreign or damaged data.
    Lenient,
}

/// Which budget axis was exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetKind {
    /// Total applied event records (`var` + `state` + `link`).
    Events,
    /// Container records.
    Containers,
    /// Bytes in a single line.
    LineBytes,
    /// Estimated retained memory, bytes.
    MemoryBytes,
}

impl fmt::Display for BudgetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BudgetKind::Events => "event count",
            BudgetKind::Containers => "container count",
            BudgetKind::LineBytes => "line length",
            BudgetKind::MemoryBytes => "estimated memory",
        })
    }
}

/// A typed record of a budget axis being exhausted: where the load
/// stopped and which limit stopped it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetBreach {
    /// The exhausted axis.
    pub kind: BudgetKind,
    /// The configured limit on that axis.
    pub limit: usize,
    /// 1-based line at which the breach was detected.
    pub line: usize,
    /// Byte offset (from the start of the stream) of that line.
    pub byte_offset: u64,
}

impl fmt::Display for BudgetBreach {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} budget ({}) exhausted at line {} (byte {})",
            self.kind, self.limit, self.line, self.byte_offset
        )
    }
}

/// Hard ceilings the loader enforces while reading untrusted input.
///
/// The default budget is sized for interactive analysis on a
/// workstation; a service ingesting third-party uploads would configure
/// much lower ceilings. [`ResourceBudget::unlimited`] disables every
/// axis (used by [`crate::export::from_csv`], whose input is already a
/// in-memory string).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceBudget {
    /// Maximum applied event records (`var` + `state` + `link`).
    pub max_events: usize,
    /// Maximum container records.
    pub max_containers: usize,
    /// Maximum bytes in one line. Longer lines are drained from the
    /// stream without being buffered, so a pathological 10 MB line
    /// costs its I/O, never its memory.
    pub max_line_bytes: usize,
    /// Ceiling on the loader's coarse estimate of retained bytes
    /// (signals, states, links, names).
    pub max_memory_bytes: usize,
    /// How many [`LoadDiagnostic`]s a `Lenient` load retains; further
    /// skips are still *counted* but not described (an adversarial
    /// all-garbage file must not grow an unbounded error log).
    pub max_diagnostics: usize,
}

impl Default for ResourceBudget {
    fn default() -> Self {
        ResourceBudget {
            max_events: 50_000_000,
            max_containers: 1_000_000,
            max_line_bytes: 1 << 20,        // 1 MiB
            max_memory_bytes: 2 << 30,      // 2 GiB estimate
            max_diagnostics: 64,
        }
    }
}

impl ResourceBudget {
    /// A budget with every axis disabled.
    pub fn unlimited() -> ResourceBudget {
        ResourceBudget {
            max_events: usize::MAX,
            max_containers: usize::MAX,
            max_line_bytes: usize::MAX,
            max_memory_bytes: usize::MAX,
            max_diagnostics: 64,
        }
    }
}

/// One skipped record of a `Lenient` load: where and why.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadDiagnostic {
    /// 1-based line number of the skipped record.
    pub line: usize,
    /// Byte offset of the start of that line.
    pub byte_offset: u64,
    /// Human-readable reason.
    pub message: String,
}

impl fmt::Display for LoadDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {} (byte {}): {}", self.line, self.byte_offset, self.message)
    }
}

/// The outcome of a successful (possibly degraded) load.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// The trace built from every record that survived.
    pub trace: Trace,
    /// Lines read (including blank/comment lines).
    pub lines: usize,
    /// Bytes consumed from the stream.
    pub bytes: u64,
    /// Event records applied (`var` + `state` + `link`).
    pub events: usize,
    /// Records dropped (malformed, out-of-order, quarantined, …).
    /// Always 0 in `Strict` mode (a drop would have been an error).
    pub dropped: usize,
    /// Non-finite metric samples quarantined (a subset of `dropped`);
    /// the per-`(container, metric)` breakdown lives on
    /// [`Trace::quarantined`].
    pub quarantined: usize,
    /// First [`ResourceBudget::max_diagnostics`] drop reasons.
    pub diagnostics: Vec<LoadDiagnostic>,
    /// Set when a budget axis stopped the load early; the trace holds
    /// everything ingested up to the breach.
    pub breach: Option<BudgetBreach>,
}

impl LoadReport {
    /// Whether every record of the input was ingested.
    pub fn is_clean(&self) -> bool {
        self.dropped == 0 && self.breach.is_none()
    }

    /// One-line deterministic summary, used by the fuzz harness to
    /// assert error-report stability across runs.
    pub fn summary(&self) -> String {
        format!(
            "lines={} bytes={} events={} dropped={} quarantined={} breach={}",
            self.lines,
            self.bytes,
            self.events,
            self.dropped,
            self.quarantined,
            match &self.breach {
                Some(b) => b.to_string(),
                None => "none".to_owned(),
            }
        )
    }
}

/// Streaming trace reader; see the [module docs](self) for the threat
/// model. Construct with [`TraceLoader::new`], configure with
/// [`mode`](TraceLoader::mode) / [`budget`](TraceLoader::budget), run
/// with [`load`](TraceLoader::load).
#[derive(Debug, Clone, Default)]
pub struct TraceLoader {
    mode: RecoveryMode,
    budget: ResourceBudget,
    recorder: Recorder,
}

impl TraceLoader {
    /// A `Strict` loader with the default budget.
    pub fn new() -> TraceLoader {
        TraceLoader {
            mode: RecoveryMode::Strict,
            budget: ResourceBudget::default(),
            recorder: Recorder::disabled(),
        }
    }

    /// Sets the recovery mode.
    #[must_use]
    pub fn mode(mut self, mode: RecoveryMode) -> TraceLoader {
        self.mode = mode;
        self
    }

    /// Shorthand for `mode(RecoveryMode::Lenient)`.
    #[must_use]
    pub fn lenient(self) -> TraceLoader {
        self.mode(RecoveryMode::Lenient)
    }

    /// Sets the resource budget.
    #[must_use]
    pub fn budget(mut self, budget: ResourceBudget) -> TraceLoader {
        self.budget = budget;
        self
    }

    /// Wires an observability recorder: every load then reports line /
    /// byte / event / drop / quarantine tallies, budget-breach events,
    /// and phase timings (`trace.load.seconds`, `trace.finish.seconds`)
    /// into it. The default disabled recorder costs nothing.
    #[must_use]
    pub fn recorder(mut self, recorder: Recorder) -> TraceLoader {
        self.recorder = recorder;
        self
    }

    /// Loads a trace from `reader`.
    ///
    /// # Errors
    ///
    /// * In `Strict` mode: [`TraceError::Parse`] on the first malformed
    ///   record, [`TraceError::BudgetExceeded`] on the first exhausted
    ///   budget axis.
    /// * In both modes: [`TraceError::Io`] when the stream itself
    ///   fails. A `Lenient` load never fails on *content*.
    pub fn load<R: BufRead>(&self, reader: R) -> Result<LoadReport, TraceError> {
        let _load_span = self.recorder.span("trace.load.seconds");
        let result = {
            // Joins the tree of whatever command drove this load.
            let _parse = self.recorder.tracer().phase("trace.parse");
            Ingest::new(self.mode, self.budget, self.recorder.clone()).run(reader)
        };
        if self.recorder.is_enabled() {
            match &result {
                Ok(report) => {
                    self.recorder.counter("trace.loads").inc();
                    self.recorder.counter("trace.lines").add(report.lines as u64);
                    self.recorder.counter("trace.bytes").add(report.bytes);
                    self.recorder.counter("trace.events").add(report.events as u64);
                    self.recorder.counter("trace.dropped").add(report.dropped as u64);
                    self.recorder
                        .counter("trace.quarantined")
                        .add(report.quarantined as u64);
                    if let Some(b) = &report.breach {
                        self.recorder.counter("trace.budget_breaches").inc();
                        self.recorder.event("trace.budget_breach", &b.to_string());
                    }
                }
                Err(e) => {
                    self.recorder.counter("trace.load_errors").inc();
                    self.recorder.event("trace.load_error", &e.to_string());
                }
            }
        }
        result
    }

    /// Convenience: loads from an in-memory string.
    pub fn load_str(&self, text: &str) -> Result<LoadReport, TraceError> {
        self.load(text.as_bytes())
    }
}

/// Outcome of reading one bounded line.
enum LineRead {
    Eof,
    /// A complete line is in the buffer (newline stripped).
    Line,
    /// The line exceeded the byte cap; its tail was consumed and
    /// thrown away without being buffered.
    Oversized,
}

/// Reads one line into `buf`, never buffering more than `max + 1`
/// bytes. An over-long line is consumed (streamed, chunk by chunk) up
/// to its newline so the next read starts on a record boundary.
fn read_line_bounded<R: BufRead>(
    reader: &mut R,
    buf: &mut Vec<u8>,
    max: usize,
) -> io::Result<(LineRead, u64)> {
    buf.clear();
    // Cap the speculative read at max + 1: one extra byte tells an
    // over-long line apart from one that is exactly `max` long.
    let cap = (max as u64).saturating_add(1);
    let n = <&mut R as io::Read>::take(&mut *reader, cap).read_until(b'\n', buf)? as u64;
    if n == 0 {
        return Ok((LineRead::Eof, 0));
    }
    if buf.last() == Some(&b'\n') {
        buf.pop();
        if buf.last() == Some(&b'\r') {
            buf.pop();
        }
        return Ok((LineRead::Line, n));
    }
    if (buf.len() as u64) < cap {
        // EOF without a trailing newline: still a complete line.
        return Ok((LineRead::Line, n));
    }
    // Over-long: drain the remainder of the line without storing it.
    let mut drained = 0u64;
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            break;
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(i) => {
                reader.consume(i + 1);
                drained += (i + 1) as u64;
                break;
            }
            None => {
                let len = chunk.len();
                reader.consume(len);
                drained += len as u64;
            }
        }
    }
    Ok((LineRead::Oversized, n + drained))
}

/// Mutable state of one load.
struct Ingest {
    mode: RecoveryMode,
    budget: ResourceBudget,
    recorder: Recorder,
    builder: TraceBuilder,
    /// `span` record, if one was seen: `(start, end)`.
    span: Option<(f64, f64)>,
    /// Completed state intervals (bypass the push/pop stack).
    states: Vec<StateRecord>,
    /// Container ids already declared by the file.
    containers_seen: usize,
    events: usize,
    dropped: usize,
    quarantined: usize,
    diagnostics: Vec<LoadDiagnostic>,
    /// Coarse running estimate of retained bytes.
    mem_estimate: usize,
}

/// Why a single record could not be applied.
pub(crate) enum RecordFault {
    /// Malformed or inconsistent: skip in `Lenient`, abort in `Strict`.
    Bad(String),
    /// A non-finite metric sample on a *valid* (container, metric,
    /// time): quarantined, never a hard error shape of its own — in
    /// `Strict` it still aborts (strict data must be fully finite).
    NonFinite { container: ContainerId, metric: MetricId, message: String },
}

impl Ingest {
    fn new(mode: RecoveryMode, budget: ResourceBudget, recorder: Recorder) -> Ingest {
        Ingest {
            mode,
            budget,
            recorder,
            builder: TraceBuilder::new(),
            span: None,
            states: Vec::new(),
            containers_seen: 0,
            events: 0,
            dropped: 0,
            quarantined: 0,
            diagnostics: Vec::new(),
            mem_estimate: 0,
        }
    }

    fn run<R: BufRead>(mut self, mut reader: R) -> Result<LoadReport, TraceError> {
        let mut buf: Vec<u8> = Vec::new();
        let mut lineno = 0usize;
        let mut offset = 0u64;
        let mut breach: Option<BudgetBreach> = None;
        loop {
            let line_start = offset;
            let (read, consumed) =
                read_line_bounded(&mut reader, &mut buf, self.budget.max_line_bytes)
                    .map_err(|e| TraceError::Io { message: e.to_string() })?;
            offset += consumed;
            match read {
                LineRead::Eof => break,
                LineRead::Oversized => {
                    lineno += 1;
                    let b = BudgetBreach {
                        kind: BudgetKind::LineBytes,
                        limit: self.budget.max_line_bytes,
                        line: lineno,
                        byte_offset: line_start,
                    };
                    match self.mode {
                        RecoveryMode::Strict => return Err(TraceError::BudgetExceeded(b)),
                        // A single over-long line is a per-record
                        // fault, not a load-wide exhaustion: skip it.
                        RecoveryMode::Lenient => self.skip(lineno, line_start, b.to_string()),
                    }
                    continue;
                }
                LineRead::Line => lineno += 1,
            }
            let text = String::from_utf8_lossy(&buf);
            let line = text.trim_end();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            // Load-wide budgets are checked before the record is
            // applied, so the reported line is the first one *not*
            // ingested.
            if let Some(kind) = self.budget_check() {
                let limit = match kind {
                    BudgetKind::Events => self.budget.max_events,
                    BudgetKind::Containers => self.budget.max_containers,
                    BudgetKind::MemoryBytes => self.budget.max_memory_bytes,
                    BudgetKind::LineBytes => unreachable!("checked per line"),
                };
                let b = BudgetBreach { kind, limit, line: lineno, byte_offset: line_start };
                match self.mode {
                    RecoveryMode::Strict => return Err(TraceError::BudgetExceeded(b)),
                    RecoveryMode::Lenient => {
                        breach = Some(b);
                        break;
                    }
                }
            }
            if let Err(fault) = self.apply_record(line) {
                match (&fault, self.mode) {
                    (RecordFault::Bad(msg), RecoveryMode::Strict) => {
                        return Err(TraceError::Parse { line: lineno, message: msg.clone() });
                    }
                    (RecordFault::NonFinite { message, .. }, RecoveryMode::Strict) => {
                        return Err(TraceError::Parse { line: lineno, message: message.clone() });
                    }
                    (RecordFault::Bad(msg), RecoveryMode::Lenient) => {
                        self.skip(lineno, line_start, msg.clone());
                    }
                    (
                        RecordFault::NonFinite { container, metric, message },
                        RecoveryMode::Lenient,
                    ) => {
                        let (c, m, msg) = (*container, *metric, message.clone());
                        self.quarantined += 1;
                        self.builder.note_quarantined(c, m);
                        self.skip(lineno, line_start, msg);
                    }
                }
            }
        }
        // The finish phase (signal assembly, state sorting) is the
        // non-streaming tail of a load; timed separately so a slow load
        // can be blamed on parsing vs. assembly.
        let _finish_span = self.recorder.span("trace.finish.seconds");
        let span_end = self.span.map_or(0.0, |(_, e)| e);
        self.builder.note_dropped(self.dropped as u64);
        let mut trace = self.builder.finish(span_end);
        self.states
            .sort_by(|a, b| a.container.cmp(&b.container).then(a.start.total_cmp(&b.start)));
        // States bypass the builder (they arrive pre-shaped, depth and
        // all), so fold their times into the span by hand — otherwise a
        // trace whose earliest record is a state would round-trip with
        // a later start than it was serialized with. When states are
        // the *only* events, they define the start outright (the
        // builder's 0.0 default never saw them).
        let builder_saw_events = trace.signal_count() > 0 || !trace.links().is_empty();
        if let Some(smin) = self.states.iter().map(|s| s.start).reduce(f64::min) {
            trace.start = if builder_saw_events { trace.start.min(smin) } else { smin };
        }
        if let Some(smax) = self.states.iter().map(|s| s.end).reduce(f64::max) {
            trace.end = trace.end.max(smax);
        }
        trace.states = self.states;
        Ok(LoadReport {
            trace,
            lines: lineno,
            bytes: offset,
            events: self.events,
            dropped: self.dropped,
            quarantined: self.quarantined,
            diagnostics: self.diagnostics,
            breach,
        })
    }

    fn skip(&mut self, line: usize, byte_offset: u64, message: String) {
        self.dropped += 1;
        if self.diagnostics.len() < self.budget.max_diagnostics {
            self.diagnostics.push(LoadDiagnostic { line, byte_offset, message });
        }
    }

    /// Which load-wide budget axis (if any) the *next* record would
    /// overrun.
    fn budget_check(&self) -> Option<BudgetKind> {
        if self.events >= self.budget.max_events {
            return Some(BudgetKind::Events);
        }
        if self.containers_seen >= self.budget.max_containers {
            return Some(BudgetKind::Containers);
        }
        if self.mem_estimate >= self.budget.max_memory_bytes {
            return Some(BudgetKind::MemoryBytes);
        }
        None
    }

    /// Validates `t` against the declared span, if any. Records made
    /// outside the declared observation period are inconsistent (a
    /// truncated dump re-concatenated out of order, or forged data).
    fn check_in_span(&self, t: f64, what: &str) -> Result<(), RecordFault> {
        if let Some((s, e)) = self.span {
            if t < s || t > e {
                return Err(RecordFault::Bad(format!(
                    "{what} timestamp {t:?} outside the declared span [{s:?}, {e:?}]"
                )));
            }
        }
        Ok(())
    }

    fn container(&self, s: &str) -> Result<ContainerId, RecordFault> {
        let idx = parse_id(s)?;
        let id = ContainerId::from_index(idx);
        if self.builder.containers().get(id).is_none() {
            return Err(RecordFault::Bad(format!("unknown container id {idx}")));
        }
        Ok(id)
    }

    fn metric(&self, s: &str) -> Result<MetricId, RecordFault> {
        let idx = parse_id(s)?;
        if idx >= self.builder.metric_count() {
            return Err(RecordFault::Bad(format!("unknown metric id {idx}")));
        }
        Ok(MetricId::from_index(idx))
    }

    fn apply_record(&mut self, line: &str) -> Result<(), RecordFault> {
        let (kind, rest) = line
            .split_once(',')
            .ok_or_else(|| RecordFault::Bad("missing record kind".to_owned()))?;
        match kind {
            "span" => {
                let [s, e] = fields::<2>(rest)?;
                let (s, e) = (parse_finite(s, "span start")?, parse_finite(e, "span end")?);
                if e < s {
                    return Err(RecordFault::Bad(format!("span end {e:?} precedes start {s:?}")));
                }
                self.span = Some((s, e));
            }
            "container" => {
                let [id, parent, ckind, name] = fields::<4>(rest)?;
                let expect_idx = parse_id(id)?;
                let expect = ContainerId::from_index(expect_idx);
                if self.builder.containers().get(expect).is_some() {
                    return Err(RecordFault::Bad(format!(
                        "duplicate container id {expect_idx}"
                    )));
                }
                // The tree assigns ids densely in declaration order, so
                // the next id is known *before* creating the node.
                // Rejecting a mismatch up front (rather than rolling
                // back after the fact, which the builder cannot do)
                // guarantees lenient recovery never materializes a
                // phantom container under a wrong id.
                let next = self.builder.containers().len();
                if expect_idx != next {
                    return Err(RecordFault::Bad(format!(
                        "container id mismatch: file {expect}, next assignable {next}"
                    )));
                }
                let parent = self.container(parent)?;
                let ckind = ContainerKind::from_label(ckind)
                    .ok_or_else(|| RecordFault::Bad(format!("unknown container kind {ckind:?}")))?;
                let got = self
                    .builder
                    .new_container(parent, name, ckind)
                    .map_err(|e| RecordFault::Bad(e.to_string()))?;
                debug_assert_eq!(got, expect);
                self.containers_seen += 1;
                self.mem_estimate += 64 + name.len();
            }
            "metric" => {
                let [id, unit, name] = fields::<3>(rest)?;
                let expect_idx = parse_id(id)?;
                let expect = MetricId::from_index(expect_idx);
                // Predict the id `metric()` would assign — an existing
                // name keeps its id, a new one takes the next dense
                // slot — and reject a mismatch *before* registering, so
                // lenient recovery never materializes a phantom metric
                // under a wrong id.
                let predicted = self
                    .builder
                    .metrics()
                    .by_name(name)
                    .map_or(self.builder.metric_count(), |m| m.id().index());
                if expect_idx != predicted {
                    return Err(RecordFault::Bad(format!(
                        "metric id mismatch: file {expect}, next assignable {predicted}"
                    )));
                }
                let got = self.builder.metric(name, unit);
                debug_assert_eq!(got, expect);
                self.mem_estimate += 48 + name.len() + unit.len();
            }
            "var" => {
                let [t, c, m, v] = fields::<4>(rest)?;
                let t = parse_finite(t, "time")?;
                let c = self.container(c)?;
                let m = self.metric(m)?;
                self.check_in_span(t, "var")?;
                let v = parse_f64(v)?;
                if !v.is_finite() {
                    return Err(RecordFault::NonFinite {
                        container: c,
                        metric: m,
                        message: format!("non-finite sample {v:?} quarantined"),
                    });
                }
                self.builder
                    .set_variable(t, c, m, v)
                    .map_err(|e| RecordFault::Bad(e.to_string()))?;
                self.events += 1;
                self.mem_estimate += 24;
            }
            "state" => {
                let [c, s, e, d, name] = fields::<5>(rest)?;
                let container = self.container(c)?;
                let (start, end) =
                    (parse_finite(s, "state start")?, parse_finite(e, "state end")?);
                if end < start {
                    return Err(RecordFault::Bad(format!(
                        "state end {end:?} precedes start {start:?}"
                    )));
                }
                self.check_in_span(start, "state")?;
                self.check_in_span(end, "state")?;
                self.states.push(StateRecord {
                    container,
                    start,
                    end,
                    depth: parse_usize(d)?,
                    state: name.to_owned(),
                });
                self.events += 1;
                self.mem_estimate += 48 + name.len();
            }
            "link" => {
                let [s, e, from, to, size] = fields::<5>(rest)?;
                let (start, end) =
                    (parse_finite(s, "link start")?, parse_finite(e, "link end")?);
                let (from, to) = (self.container(from)?, self.container(to)?);
                self.check_in_span(start, "link")?;
                self.check_in_span(end, "link")?;
                self.builder
                    .link(start, end, from, to, parse_finite(size, "link size")?)
                    .map_err(|e| RecordFault::Bad(e.to_string()))?;
                self.events += 1;
                self.mem_estimate += 40;
            }
            other => {
                return Err(RecordFault::Bad(format!("unknown record kind {other:?}")));
            }
        }
        Ok(())
    }
}

pub(crate) fn parse_f64(s: &str) -> Result<f64, RecordFault> {
    s.parse::<f64>()
        .map_err(|e| RecordFault::Bad(format!("bad float {s:?}: {e}")))
}

/// Parses a float that must be finite (timestamps, sizes, spans —
/// everything except metric samples, which quarantine instead).
pub(crate) fn parse_finite(s: &str, what: &str) -> Result<f64, RecordFault> {
    let v = parse_f64(s)?;
    if !v.is_finite() {
        return Err(RecordFault::Bad(format!("non-finite {what} {v:?}")));
    }
    Ok(v)
}

fn parse_usize(s: &str) -> Result<usize, RecordFault> {
    s.parse::<usize>()
        .map_err(|e| RecordFault::Bad(format!("bad index {s:?}: {e}")))
}

/// Parses a container/metric id. Ids are dense `u32` indices; anything
/// larger would silently truncate in `from_index` and alias a valid id,
/// so reject it here.
pub(crate) fn parse_id(s: &str) -> Result<usize, RecordFault> {
    let idx = parse_usize(s)?;
    if idx > u32::MAX as usize {
        return Err(RecordFault::Bad(format!("id {idx} out of range")));
    }
    Ok(idx)
}

pub(crate) fn fields<const N: usize>(rest: &str) -> Result<[&str; N], RecordFault> {
    let mut it = rest.splitn(N, ',');
    let mut out = [""; N];
    for slot in out.iter_mut() {
        *slot = it
            .next()
            .ok_or_else(|| RecordFault::Bad(format!("expected {N} fields in {rest:?}")))?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::to_csv;

    const GOOD: &str = "span,0.0,10.0\n\
        container,1,0,cluster,c1\n\
        container,2,1,host,h0\n\
        container,3,1,host,h1\n\
        metric,0,MFlop/s,power\n\
        var,0.0,2,0,100.0\n\
        var,0.0,3,0,50.0\n\
        var,5.0,2,0,25.0\n\
        state,2,1.0,4.0,0,compute\n\
        link,2.0,3.0,2,3,80.0\n";

    #[test]
    fn clean_load_is_clean_in_both_modes() {
        for mode in [RecoveryMode::Strict, RecoveryMode::Lenient] {
            let r = TraceLoader::new().mode(mode).load_str(GOOD).unwrap();
            assert!(r.is_clean(), "{mode:?}: {:?}", r.diagnostics);
            assert_eq!(r.events, 5);
            assert_eq!(r.trace.containers().len(), 4);
            assert_eq!(r.trace.states().len(), 1);
            assert_eq!(r.trace.links().len(), 1);
            assert_eq!(r.trace.end(), 10.0);
            assert_eq!(r.trace.quarantined_total(), 0);
            assert_eq!(r.trace.ingest_dropped(), 0);
        }
    }

    #[test]
    fn strict_errors_carry_line_numbers() {
        let bad = format!("{GOOD}bogus,1,2\n");
        let err = TraceLoader::new().load_str(&bad).unwrap_err();
        assert_eq!(err, TraceError::Parse { line: 11, message: "unknown record kind \"bogus\"".into() });
    }

    #[test]
    fn lenient_skips_and_records_diagnostics() {
        let bad = format!("not a record\n{GOOD}var,6.0,99,0,1.0\n");
        let r = TraceLoader::new().lenient().load_str(&bad).unwrap();
        assert_eq!(r.dropped, 2);
        assert_eq!(r.events, 5, "good records survive around the bad ones");
        assert_eq!(r.diagnostics.len(), 2);
        assert_eq!(r.diagnostics[0].line, 1);
        assert_eq!(r.diagnostics[0].byte_offset, 0);
        assert!(r.diagnostics[1].message.contains("unknown container id 99"));
        assert_eq!(r.trace.ingest_dropped(), 2);
    }

    #[test]
    fn recorder_tallies_load_outcomes() {
        let r = Recorder::enabled();
        let loader = TraceLoader::new().lenient().recorder(r.clone());
        let input = format!("junk line\n{GOOD}var,6.0,2,0,nan\n");
        let report = loader.load_str(&input).unwrap();
        assert_eq!(r.counter("trace.loads").get(), 1);
        assert_eq!(r.counter("trace.lines").get(), report.lines as u64);
        assert_eq!(r.counter("trace.bytes").get(), report.bytes);
        assert_eq!(r.counter("trace.events").get(), report.events as u64);
        assert_eq!(r.counter("trace.dropped").get(), 2);
        assert_eq!(r.counter("trace.quarantined").get(), 1);
        assert_eq!(r.histogram("trace.load.seconds").count(), 1);
        assert_eq!(r.histogram("trace.finish.seconds").count(), 1);

        // A strict failure counts as a load error with an event trail.
        let strict = TraceLoader::new().recorder(r.clone());
        assert!(strict.load_str("nonsense\n").is_err());
        assert_eq!(r.counter("trace.load_errors").get(), 1);
        let events = r.snapshot().events;
        assert_eq!(events.last().unwrap().name, "trace.load_error");

        // A lenient budget breach is counted and logged.
        let tight = ResourceBudget { max_events: 2, ..ResourceBudget::default() };
        let breached = TraceLoader::new().lenient().budget(tight).recorder(r.clone());
        let rep = breached.load_str(GOOD).unwrap();
        assert!(rep.breach.is_some());
        assert_eq!(r.counter("trace.budget_breaches").get(), 1);
    }

    #[test]
    fn duplicate_container_id_is_rejected_with_line() {
        let bad = "container,1,0,host,h\ncontainer,1,0,host,again\n";
        let err = TraceLoader::new().load_str(bad).unwrap_err();
        match err {
            TraceError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("duplicate container id 1"), "{message}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn out_of_span_timestamp_is_rejected_with_line() {
        let bad = "span,0.0,10.0\ncontainer,1,0,host,h\nmetric,0,u,x\nvar,11.0,1,0,1.0\n";
        let err = TraceLoader::new().load_str(bad).unwrap_err();
        match err {
            TraceError::Parse { line, message } => {
                assert_eq!(line, 4);
                assert!(message.contains("outside the declared span"), "{message}");
            }
            other => panic!("unexpected {other:?}"),
        }
        // Without a span record there is no declared range to violate.
        let free = "container,1,0,host,h\nmetric,0,u,x\nvar,11.0,1,0,1.0\n";
        assert!(TraceLoader::new().load_str(free).is_ok());
    }

    #[test]
    fn nan_samples_quarantine_in_lenient() {
        let text = format!("{GOOD}var,6.0,2,0,NaN\nvar,7.0,3,0,inf\n");
        let r = TraceLoader::new().lenient().load_str(&text).unwrap();
        assert_eq!(r.quarantined, 2);
        assert_eq!(r.dropped, 2);
        let c2 = ContainerId::from_index(2);
        let c3 = ContainerId::from_index(3);
        let m = MetricId::from_index(0);
        assert_eq!(r.trace.quarantined(c2, m), 1);
        assert_eq!(r.trace.quarantined(c3, m), 1);
        assert_eq!(r.trace.quarantined_total(), 2);
        // Strict aborts on the same input.
        let err = TraceLoader::new().load_str(&text).unwrap_err();
        assert!(matches!(err, TraceError::Parse { line: 11, .. }), "{err:?}");
    }

    #[test]
    fn non_finite_timestamps_are_plain_errors_not_quarantine() {
        let text = "container,1,0,host,h\nmetric,0,u,x\nvar,NaN,1,0,1.0\n";
        let r = TraceLoader::new().lenient().load_str(text).unwrap();
        assert_eq!(r.dropped, 1);
        assert_eq!(r.quarantined, 0);
    }

    #[test]
    fn event_budget_degrades_to_typed_breach() {
        let budget = ResourceBudget { max_events: 2, ..ResourceBudget::unlimited() };
        let r = TraceLoader::new().lenient().budget(budget).load_str(GOOD).unwrap();
        let b = r.breach.expect("breach reported");
        assert_eq!(b.kind, BudgetKind::Events);
        assert_eq!(b.limit, 2);
        assert_eq!(b.line, 8, "the first line NOT ingested");
        assert_eq!(r.events, 2, "partial trace holds what fit");
        // Strict mode surfaces the same breach as a typed error.
        let err = TraceLoader::new().budget(budget).load_str(GOOD).unwrap_err();
        assert_eq!(err, TraceError::BudgetExceeded(b));
    }

    #[test]
    fn container_budget_is_enforced() {
        let budget = ResourceBudget { max_containers: 2, ..ResourceBudget::unlimited() };
        let r = TraceLoader::new().lenient().budget(budget).load_str(GOOD).unwrap();
        assert_eq!(r.breach.as_ref().map(|b| b.kind), Some(BudgetKind::Containers));
        assert_eq!(r.trace.containers().len(), 3, "root + 2 declared");
    }

    #[test]
    fn memory_budget_is_enforced() {
        let budget = ResourceBudget { max_memory_bytes: 100, ..ResourceBudget::unlimited() };
        let r = TraceLoader::new().lenient().budget(budget).load_str(GOOD).unwrap();
        assert_eq!(r.breach.as_ref().map(|b| b.kind), Some(BudgetKind::MemoryBytes));
    }

    #[test]
    fn oversized_line_is_drained_not_buffered() {
        let mut text = String::from("container,1,0,host,h\n");
        text.push_str("# ");
        text.push_str(&"x".repeat(4096));
        text.push('\n');
        text.push_str("metric,0,u,m\nvar,1.0,1,0,3.0\n");
        let budget = ResourceBudget { max_line_bytes: 64, ..ResourceBudget::unlimited() };
        // Lenient: the long line is skipped, records after it survive.
        let r = TraceLoader::new().lenient().budget(budget).load_str(&text).unwrap();
        assert_eq!(r.dropped, 1);
        assert_eq!(r.events, 1);
        assert_eq!(r.bytes, text.len() as u64, "whole stream consumed");
        assert!(r.diagnostics[0].message.contains("line length"));
        // Strict: typed breach.
        let err = TraceLoader::new().budget(budget).load_str(&text).unwrap_err();
        assert!(matches!(err, TraceError::BudgetExceeded(BudgetBreach { kind: BudgetKind::LineBytes, line: 2, .. })), "{err:?}");
    }

    #[test]
    fn diagnostics_are_capped_but_counted() {
        let mut text = String::new();
        for _ in 0..100 {
            text.push_str("garbage\n");
        }
        let budget = ResourceBudget { max_diagnostics: 5, ..ResourceBudget::default() };
        let r = TraceLoader::new().lenient().budget(budget).load_str(&text).unwrap();
        assert_eq!(r.dropped, 100);
        assert_eq!(r.diagnostics.len(), 5);
    }

    #[test]
    fn crlf_and_missing_trailing_newline_are_tolerated() {
        let text = "container,1,0,host,h\r\nmetric,0,u,m\r\nvar,1.0,1,0,3.0";
        let r = TraceLoader::new().load_str(text).unwrap();
        assert!(r.is_clean());
        assert_eq!(r.events, 1);
    }

    #[test]
    fn invalid_utf8_is_lossy_not_fatal() {
        let mut bytes = b"container,1,0,host,h".to_vec();
        bytes.push(0xFF);
        bytes.extend_from_slice(b"x\nmetric,0,u,m\n");
        let r = TraceLoader::new().lenient().load(&bytes[..]).unwrap();
        // The replacement character lands in the free-form name field,
        // which accepts any text: nothing to drop.
        assert!(r.is_clean());
        assert!(r.trace.containers().len() == 2);
    }

    #[test]
    fn loaded_trace_roundtrips_through_to_csv() {
        let r = TraceLoader::new().load_str(GOOD).unwrap();
        let csv = to_csv(&r.trace);
        let r2 = TraceLoader::new().load_str(&csv).unwrap();
        assert_eq!(csv, to_csv(&r2.trace), "re-export is a fixed point");
    }

    #[test]
    fn empty_input_yields_empty_trace() {
        for mode in [RecoveryMode::Strict, RecoveryMode::Lenient] {
            let r = TraceLoader::new().mode(mode).load_str("").unwrap();
            assert!(r.is_clean());
            assert_eq!(r.trace.containers().len(), 1, "just the root");
            assert_eq!(r.lines, 0);
        }
    }

    #[test]
    fn summary_is_deterministic() {
        let text = format!("{GOOD}garbage\nvar,6.0,2,0,NaN\n");
        let a = TraceLoader::new().lenient().load_str(&text).unwrap().summary();
        let b = TraceLoader::new().lenient().load_str(&text).unwrap().summary();
        assert_eq!(a, b);
        assert!(a.contains("dropped=2"));
        assert!(a.contains("quarantined=1"));
    }
}
