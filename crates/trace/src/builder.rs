//! Incremental construction of [`Trace`]s.
//!
//! A [`TraceBuilder`] is what a tracer (or our simulator's tracing
//! hook) holds while the observed system runs. It accepts events in
//! non-decreasing time order per signal and folds them into signals,
//! state records and link records.

use std::collections::HashMap;

use crate::columns::ColumnStore;
use crate::container::{ContainerId, ContainerKind, ContainerTree};
use crate::error::TraceError;
use crate::event::Event;
use crate::metric::{MetricId, MetricRegistry};
use crate::state::StateLog;
use crate::trace::{LinkRecord, Trace};

/// Builder for [`Trace`].
///
/// # Example
///
/// ```
/// use viva_trace::{TraceBuilder, ContainerKind};
///
/// let mut b = TraceBuilder::new();
/// let host = b.new_container(b.root(), "h", ContainerKind::Host)?;
/// let used = b.metric("power_used", "MFlop/s");
/// b.set_variable(0.0, host, used, 0.0)?;
/// b.add_variable(1.0, host, used, 30.0)?;
/// b.sub_variable(4.0, host, used, 30.0)?;
/// let trace = b.finish(10.0);
/// assert_eq!(trace.signal(host, used).unwrap().integrate(0.0, 10.0), 90.0);
/// # Ok::<(), viva_trace::TraceError>(())
/// ```
#[derive(Debug, Default)]
pub struct TraceBuilder {
    containers: ContainerTree,
    metrics: MetricRegistry,
    columns: ColumnStore,
    states: StateLog,
    links: Vec<LinkRecord>,
    earliest: Option<f64>,
    latest: f64,
    quarantined: HashMap<(ContainerId, MetricId), u64>,
    dropped: u64,
}

impl TraceBuilder {
    /// Creates a builder with an empty root container.
    pub fn new() -> TraceBuilder {
        TraceBuilder::default()
    }

    /// The root container id.
    pub fn root(&self) -> ContainerId {
        self.containers.root()
    }

    /// Read access to the container tree built so far.
    pub fn containers(&self) -> &ContainerTree {
        &self.containers
    }

    /// Registers (or looks up) a metric by name.
    pub fn metric(&mut self, name: impl Into<String>, unit: impl Into<String>) -> MetricId {
        self.metrics.register(name, unit)
    }

    /// Read access to the metric registry built so far.
    pub fn metrics(&self) -> &MetricRegistry {
        &self.metrics
    }

    /// Read access to the columnar event log accumulated so far —
    /// scale benches use this for exact per-event memory accounting.
    pub fn columns(&self) -> &ColumnStore {
        &self.columns
    }

    /// Number of metrics registered so far. Loaders use this to
    /// validate metric ids referenced by serialized records before
    /// they can silently materialize a signal for a metric that was
    /// never declared.
    pub fn metric_count(&self) -> usize {
        self.metrics.len()
    }

    /// Records that one non-finite sample for `(container, metric)` was
    /// quarantined at the ingestion boundary instead of entering the
    /// signal. The counters surface on [`Trace::quarantined`].
    pub fn note_quarantined(&mut self, container: ContainerId, metric: MetricId) {
        *self.quarantined.entry((container, metric)).or_insert(0) += 1;
    }

    /// Records `n` input records dropped before they reached the
    /// builder (malformed lines skipped by a lenient loader).
    pub fn note_dropped(&mut self, n: u64) {
        self.dropped += n;
    }

    /// Creates a container under `parent`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::UnknownContainer`] for a bogus parent.
    pub fn new_container(
        &mut self,
        parent: ContainerId,
        name: impl Into<String>,
        kind: ContainerKind,
    ) -> Result<ContainerId, TraceError> {
        self.containers.add(parent, name, kind)
    }

    fn touch(&mut self, t: f64) {
        self.earliest = Some(self.earliest.map_or(t, |e| e.min(t)));
        self.latest = self.latest.max(t);
    }

    fn check_container(&self, c: ContainerId) -> Result<(), TraceError> {
        if self.containers.get(c).is_none() {
            return Err(TraceError::UnknownContainer(c));
        }
        Ok(())
    }

    /// Sets the absolute value of `metric` on `container` at time `t`.
    ///
    /// # Errors
    ///
    /// Propagates signal errors ([`TraceError::NonMonotonicTime`],
    /// [`TraceError::NotFinite`]) and rejects unknown containers.
    pub fn set_variable(
        &mut self,
        t: f64,
        container: ContainerId,
        metric: MetricId,
        value: f64,
    ) -> Result<(), TraceError> {
        self.check_container(container)?;
        self.columns.append(container, metric, t, value)?;
        self.touch(t);
        Ok(())
    }

    /// Increments `metric` on `container` by `value` at time `t`.
    ///
    /// A variable that was never set starts at 0.
    ///
    /// # Errors
    ///
    /// Same as [`TraceBuilder::set_variable`].
    pub fn add_variable(
        &mut self,
        t: f64,
        container: ContainerId,
        metric: MetricId,
        value: f64,
    ) -> Result<(), TraceError> {
        self.check_container(container)?;
        let cur = self.columns.last(container, metric).map_or(0.0, |(_, v)| v);
        self.columns.append(container, metric, t, cur + value)?;
        self.touch(t);
        Ok(())
    }

    /// Decrements `metric` on `container` by `value` at time `t`.
    ///
    /// # Errors
    ///
    /// Same as [`TraceBuilder::set_variable`], plus
    /// [`TraceError::NegativeVariable`] when the decrement would drive
    /// the variable below zero (beyond numerical noise).
    pub fn sub_variable(
        &mut self,
        t: f64,
        container: ContainerId,
        metric: MetricId,
        value: f64,
    ) -> Result<(), TraceError> {
        self.check_container(container)?;
        let cur = self.columns.last(container, metric).map_or(0.0, |(_, v)| v);
        let next = cur - value;
        if next < -1e-9 {
            return Err(TraceError::NegativeVariable { value: next });
        }
        self.columns.append(container, metric, t, next.max(0.0))?;
        self.touch(t);
        Ok(())
    }

    /// Enters state `state` on `container` at time `t`.
    ///
    /// # Errors
    ///
    /// Rejects unknown containers.
    pub fn push_state(
        &mut self,
        t: f64,
        container: ContainerId,
        state: impl Into<String>,
    ) -> Result<(), TraceError> {
        self.check_container(container)?;
        self.states.push(t, container, state);
        self.touch(t);
        Ok(())
    }

    /// Leaves the innermost state of `container` at time `t`.
    ///
    /// # Errors
    ///
    /// Rejects unknown containers and empty state stacks.
    pub fn pop_state(&mut self, t: f64, container: ContainerId) -> Result<(), TraceError> {
        self.check_container(container)?;
        self.states.pop(t, container)?;
        self.touch(t);
        Ok(())
    }

    /// Records a completed communication of `size` Mbit.
    ///
    /// # Errors
    ///
    /// Rejects unknown containers and non-finite times/sizes.
    pub fn link(
        &mut self,
        start: f64,
        end: f64,
        from: ContainerId,
        to: ContainerId,
        size: f64,
    ) -> Result<(), TraceError> {
        self.check_container(from)?;
        self.check_container(to)?;
        for q in [start, end, size] {
            if !q.is_finite() {
                return Err(TraceError::NotFinite { value: q });
            }
        }
        self.links.push(LinkRecord { start, end, from, to, size });
        self.touch(start);
        self.touch(end);
        Ok(())
    }

    /// Replays an already-serialized event.
    ///
    /// `NewContainer` events must carry the id the tree will assign
    /// (i.e. events must be replayed in original order).
    ///
    /// # Errors
    ///
    /// Propagates the underlying recording error; a `NewContainer`
    /// whose id does not match the next id the tree would assign is
    /// reported as [`TraceError::UnknownContainer`].
    pub fn apply(&mut self, event: &Event) -> Result<(), TraceError> {
        match event {
            Event::NewContainer { time, id, parent, name, kind } => {
                let assigned = self.new_container(*parent, name.clone(), *kind)?;
                self.touch(*time);
                if assigned != *id {
                    return Err(TraceError::UnknownContainer(*id));
                }
                Ok(())
            }
            Event::SetVariable { time, container, metric, value } => {
                self.set_variable(*time, *container, *metric, *value)
            }
            Event::AddVariable { time, container, metric, value } => {
                self.add_variable(*time, *container, *metric, *value)
            }
            Event::SubVariable { time, container, metric, value } => {
                self.sub_variable(*time, *container, *metric, *value)
            }
            Event::PushState { time, container, state } => {
                self.push_state(*time, *container, state.clone())
            }
            Event::PopState { time, container } => self.pop_state(*time, *container),
            Event::Link { start, end, from, to, size } => {
                self.link(*start, *end, *from, *to, *size)
            }
        }
    }

    /// Latest timestamp seen so far.
    pub fn now(&self) -> f64 {
        self.latest
    }

    /// Finalizes the trace. The observation period is
    /// `[earliest event time, max(end, latest event time)]`; open
    /// states are closed at the period end.
    pub fn finish(self, end: f64) -> Trace {
        let start = self.earliest.unwrap_or(0.0);
        let end = end.max(self.latest);
        Trace {
            containers: self.containers,
            metrics: self.metrics,
            signals: self.columns.into_table(),
            states: self.states.finish(end),
            links: self.links,
            start,
            end,
            quarantined: self.quarantined,
            ingest_dropped: self.dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_accumulate() {
        let mut b = TraceBuilder::new();
        let h = b.new_container(b.root(), "h", ContainerKind::Host).unwrap();
        let m = b.metric("bw_used", "Mbit/s");
        b.add_variable(0.0, h, m, 10.0).unwrap();
        b.add_variable(2.0, h, m, 5.0).unwrap();
        b.sub_variable(4.0, h, m, 15.0).unwrap();
        let t = b.finish(10.0);
        let s = t.signal(h, m).unwrap();
        assert_eq!(s.value_at(1.0), 10.0);
        assert_eq!(s.value_at(3.0), 15.0);
        assert_eq!(s.value_at(5.0), 0.0);
    }

    #[test]
    fn sub_below_zero_rejected() {
        let mut b = TraceBuilder::new();
        let h = b.new_container(b.root(), "h", ContainerKind::Host).unwrap();
        let m = b.metric("x", "u");
        b.add_variable(0.0, h, m, 1.0).unwrap();
        assert!(matches!(
            b.sub_variable(1.0, h, m, 2.0),
            Err(TraceError::NegativeVariable { .. })
        ));
    }

    #[test]
    fn unknown_container_rejected() {
        let mut b = TraceBuilder::new();
        let m = b.metric("x", "u");
        let bogus = ContainerId::from_index(99);
        assert_eq!(
            b.set_variable(0.0, bogus, m, 1.0),
            Err(TraceError::UnknownContainer(bogus))
        );
    }

    #[test]
    fn span_tracks_events_and_finish_extends() {
        let mut b = TraceBuilder::new();
        let h = b.new_container(b.root(), "h", ContainerKind::Host).unwrap();
        let m = b.metric("x", "u");
        b.set_variable(2.0, h, m, 1.0).unwrap();
        b.set_variable(7.0, h, m, 0.0).unwrap();
        assert_eq!(b.now(), 7.0);
        let t = b.finish(5.0); // earlier than latest event: clamped
        assert_eq!(t.start(), 2.0);
        assert_eq!(t.end(), 7.0);
    }

    #[test]
    fn states_closed_at_finish() {
        let mut b = TraceBuilder::new();
        let p = b
            .new_container(b.root(), "p0", ContainerKind::Process)
            .unwrap();
        b.push_state(1.0, p, "compute").unwrap();
        let t = b.finish(6.0);
        assert_eq!(t.states().len(), 1);
        assert_eq!(t.states()[0].end, 6.0);
    }

    #[test]
    fn apply_replays_events() {
        // Build a reference trace directly.
        let mut b1 = TraceBuilder::new();
        let h = b1.new_container(b1.root(), "h", ContainerKind::Host).unwrap();
        let m = b1.metric("power", "MFlop/s");
        b1.set_variable(0.0, h, m, 42.0).unwrap();
        let t1 = b1.finish(5.0);

        // Rebuild it through Event::apply.
        let mut b2 = TraceBuilder::new();
        let m2 = b2.metric("power", "MFlop/s");
        b2.apply(&Event::NewContainer {
            time: 0.0,
            id: h,
            parent: b2.root(),
            name: "h".into(),
            kind: ContainerKind::Host,
        })
        .unwrap();
        b2.apply(&Event::SetVariable { time: 0.0, container: h, metric: m2, value: 42.0 })
            .unwrap();
        let t2 = b2.finish(5.0);
        assert_eq!(
            t1.signal(h, m).unwrap().value_at(1.0),
            t2.signal(h, m2).unwrap().value_at(1.0)
        );
    }
}
