//! Live-append support: incremental classification and application of
//! streamed trace lines.
//!
//! A live session's content is *defined* as the lenient load
//! ([`crate::TraceLoader`]) of the concatenation of every acknowledged
//! `append` text — that definition is what makes crash recovery
//! byte-identical (replay the journal through the same loader) and
//! what the incremental fast path below must reproduce bit for bit.
//!
//! [`classify`] mirrors the loader's per-record `var` validation
//! exactly (same checks, same order): a line classified as
//! [`LiveLine::Sample`] is guaranteed to be accepted by a from-scratch
//! lenient reload, a [`LiveLine::Quarantine`] line is guaranteed to
//! quarantine, and a [`LiveLine::Drop`] line is guaranteed to be
//! skipped. Structural records (`span`/`container`/`metric`/`state`/
//! `link`) are not replayed incrementally — the caller falls back to a
//! full reload of the accumulated text, which by construction lands in
//! the same state.
//!
//! Live sessions use an **unlimited** resource budget (overload is the
//! server's admission control's job, not the loader's), so the
//! incremental path never has to model budget exhaustion.

use crate::container::ContainerId;
use crate::error::TraceError;
use crate::loader::{fields, parse_f64, parse_finite, parse_id};
use crate::metric::MetricId;
use crate::trace::Trace;

/// How a lenient loader would treat one appended line, given the
/// current live trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LiveLine {
    /// Blank or comment: ignored, not counted.
    Skip,
    /// A valid `var` record the builder will accept — apply with
    /// [`Trace::live_push_sample`].
    Sample {
        /// Target container.
        container: ContainerId,
        /// Target metric.
        metric: MetricId,
        /// Sample time.
        t: f64,
        /// Sample value (finite).
        v: f64,
    },
    /// A `var` record with a non-finite value on a valid
    /// (container, metric): quarantined + dropped.
    Quarantine {
        /// Target container.
        container: ContainerId,
        /// Target metric.
        metric: MetricId,
    },
    /// A malformed record a lenient load skips (dropped + 1, no other
    /// state change).
    Drop,
    /// A structural record (`span`/`container`/`metric`/`state`/
    /// `link`): the caller must reload the accumulated text.
    Structural,
}

/// Classifies one line exactly as the lenient loader would, given the
/// live trace state and the currently-declared span (see
/// [`span_after`]).
pub fn classify(trace: &Trace, span: Option<(f64, f64)>, raw: &str) -> LiveLine {
    let line = raw.trim_end();
    if line.is_empty() || line.starts_with('#') {
        return LiveLine::Skip;
    }
    let Some((kind, rest)) = line.split_once(',') else {
        return LiveLine::Drop; // "missing record kind"
    };
    match kind {
        "span" | "container" | "metric" | "state" | "link" => return LiveLine::Structural,
        "var" => {}
        _ => return LiveLine::Drop, // "unknown record kind"
    }
    // Mirror of the loader's `var` arm, check for check, in order.
    let Ok([t_s, c_s, m_s, v_s]) = fields::<4>(rest) else {
        return LiveLine::Drop;
    };
    let Ok(t) = parse_finite(t_s, "time") else {
        return LiveLine::Drop;
    };
    let Ok(c_idx) = parse_id(c_s) else {
        return LiveLine::Drop;
    };
    let container = ContainerId::from_index(c_idx);
    if trace.containers().get(container).is_none() {
        return LiveLine::Drop;
    }
    let Ok(m_idx) = parse_id(m_s) else {
        return LiveLine::Drop;
    };
    if m_idx >= trace.metrics().len() {
        return LiveLine::Drop;
    }
    let metric = MetricId::from_index(m_idx);
    if let Some((s, e)) = span {
        if t < s || t > e {
            return LiveLine::Drop;
        }
    }
    let Ok(v) = parse_f64(v_s) else {
        return LiveLine::Drop;
    };
    if !v.is_finite() {
        return LiveLine::Quarantine { container, metric };
    }
    // The builder's `set_variable` would reject a non-monotonic push.
    if let Some(sig) = trace.signal(container, metric) {
        if let Some(last) = sig.last_time() {
            if t < last {
                return LiveLine::Drop;
            }
        }
    }
    LiveLine::Sample { container, metric, t, v }
}

/// The span a lenient load of `text` ends with: the last *valid* `span`
/// record (parses, finite, `end >= start`), if any. Span validity
/// depends on nothing else in the stream, so this can be derived by a
/// flat rescan after every structural reload.
pub fn span_after(text: &str) -> Option<(f64, f64)> {
    let mut span = None;
    for raw in text.lines() {
        let line = raw.trim_end();
        let Some(rest) = line.strip_prefix("span,") else {
            continue;
        };
        let Ok([s_s, e_s]) = fields::<2>(rest) else {
            continue;
        };
        let (Ok(s), Ok(e)) = (parse_finite(s_s, "span start"), parse_finite(e_s, "span end"))
        else {
            continue;
        };
        if e < s {
            continue;
        }
        span = Some((s, e));
    }
    span
}

/// State of the leaf signal *before* a [`Trace::live_push_sample`] —
/// everything `viva-agg`'s incremental insert needs to update the
/// merged series without rescanning.
#[derive(Debug, Clone, Copy)]
pub struct SamplePrior {
    /// Whether the (container, metric) pair already carried a signal.
    /// `false` means the insert adds a new carrier (index structure
    /// changes, not just values).
    pub existed: bool,
    /// Whether the new sample's time equals the signal's previous last
    /// breakpoint (the push overwrote rather than appended).
    pub tied: bool,
    /// The signal's last value before the push (0.0 when `!existed`).
    pub prev_value: f64,
}

impl Trace {
    /// Applies one validated live sample, returning the leaf-signal
    /// prior the aggregation index needs. Maintains `start`/`end`
    /// exactly as a from-scratch lenient reload would (the builder's
    /// earliest/latest fold plus the loader's state-time fold).
    ///
    /// # Errors
    ///
    /// [`TraceError::NonMonotonicTime`] / [`TraceError::NotFinite`]
    /// when the sample would be rejected — callers that pre-validate
    /// with [`classify`] never see these.
    pub fn live_push_sample(
        &mut self,
        container: ContainerId,
        metric: MetricId,
        t: f64,
        v: f64,
    ) -> Result<SamplePrior, TraceError> {
        let prior = match self.signals.get(container, metric) {
            Some(sig) => {
                let last = sig.last_time().unwrap_or(t);
                if t < last {
                    return Err(TraceError::NonMonotonicTime { time: t, last });
                }
                SamplePrior {
                    existed: true,
                    tied: t == last,
                    prev_value: sig.values().last().copied().unwrap_or(0.0),
                }
            }
            None => SamplePrior { existed: false, tied: false, prev_value: 0.0 },
        };
        // Capture *before* the push: whether the builder had seen any
        // event at all decides whether `start` is a fold or a seed.
        let had_events = !self.signals.is_empty() || !self.links.is_empty();
        self.signals.get_or_insert(container, metric).push(t, v)?;
        self.start = if had_events || !self.states.is_empty() { self.start.min(t) } else { t };
        self.end = self.end.max(t);
        Ok(prior)
    }

    /// Books one quarantined non-finite sample on a live session: the
    /// per-pair quarantine counter and the dropped tally both advance
    /// (quarantines are a subset of drops, as in the loader).
    pub fn live_note_quarantined(&mut self, container: ContainerId, metric: MetricId) {
        *self.quarantined.entry((container, metric)).or_insert(0) += 1;
        self.ingest_dropped += 1;
    }

    /// Books one dropped (malformed) live record.
    pub fn live_note_dropped(&mut self) {
        self.ingest_dropped += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::{RecoveryMode, ResourceBudget, TraceLoader};

    const BASE: &str = "span,0.0,10.0\n\
        container,1,0,host,h0\n\
        container,2,0,host,h1\n\
        metric,0,MFlop/s,power\n\
        var,1.0,1,0,100.0\n";

    fn load(text: &str) -> Trace {
        TraceLoader::new()
            .mode(RecoveryMode::Lenient)
            .budget(ResourceBudget::unlimited())
            .load(text.as_bytes())
            .unwrap()
            .trace
    }

    /// The contract `classify` exists for: every classification must
    /// match what a from-scratch lenient reload of base + line does.
    #[test]
    fn classify_matches_reload() {
        let base = load(BASE);
        let span = span_after(BASE);
        let cases: Vec<(&str, LiveLine)> = vec![
            ("", LiveLine::Skip),
            ("# comment", LiveLine::Skip),
            ("var,2.0,1,0,50.0", LiveLine::Sample {
                container: ContainerId::from_index(1),
                metric: MetricId::from_index(0),
                t: 2.0,
                v: 50.0,
            }),
            ("var,2.0,2,0,75.5", LiveLine::Sample {
                container: ContainerId::from_index(2),
                metric: MetricId::from_index(0),
                t: 2.0,
                v: 75.5,
            }),
            ("var,2.0,1,0,NaN", LiveLine::Quarantine {
                container: ContainerId::from_index(1),
                metric: MetricId::from_index(0),
            }),
            ("var,2.0,1,0,inf", LiveLine::Quarantine {
                container: ContainerId::from_index(1),
                metric: MetricId::from_index(0),
            }),
            ("var,0.5,1,0,50.0", LiveLine::Drop), // before last breakpoint
            ("var,11.0,1,0,50.0", LiveLine::Drop), // outside span
            ("var,2.0,9,0,50.0", LiveLine::Drop),  // unknown container
            ("var,2.0,1,7,50.0", LiveLine::Drop),  // unknown metric
            ("var,NaN,1,0,50.0", LiveLine::Drop),  // non-finite time
            ("var,2.0,1,0", LiveLine::Drop),       // missing field
            ("var,2.0,1,0,1.0,extra", LiveLine::Drop), // junk tail folds into v
            ("frobnicate,1,2", LiveLine::Drop),    // unknown kind
            ("no comma here", LiveLine::Drop),
            ("span,0.0,20.0", LiveLine::Structural),
            ("container,3,0,host,h2", LiveLine::Structural),
            ("metric,1,B/s,net", LiveLine::Structural),
            ("state,1,1.0,2.0,0,busy", LiveLine::Structural),
            ("link,1.0,2.0,1,2,8.0", LiveLine::Structural),
        ];
        for (line, want) in cases {
            assert_eq!(classify(&base, span, line), want, "line {line:?}");
        }
    }

    #[test]
    fn push_sample_matches_reload_bytes() {
        let mut live = load(BASE);
        let appended = "var,2.0,1,0,50.0\nvar,2.0,2,0,75.5\nvar,2.0,2,0,80.0\n";
        for raw in appended.lines() {
            match classify(&live, span_after(BASE), raw) {
                LiveLine::Sample { container, metric, t, v } => {
                    live.live_push_sample(container, metric, t, v).unwrap();
                }
                other => panic!("unexpected classification {other:?}"),
            }
        }
        let reloaded = load(&format!("{BASE}{appended}"));
        assert_eq!(live.start(), reloaded.start());
        assert_eq!(live.end(), reloaded.end());
        assert_eq!(live.signal_count(), reloaded.signal_count());
        for (c, m, sig) in reloaded.signals() {
            let l = live.signal(c, m).expect("signal present");
            assert_eq!(l.times(), sig.times());
            assert_eq!(l.values(), sig.values());
            assert_eq!(l.cumulative(), sig.cumulative());
        }
    }

    /// First-ever event seeds `start` (the builder's `unwrap_or(0.0)`
    /// never applies once a real event exists).
    #[test]
    fn start_end_maintenance_without_prior_events() {
        let topo = "container,1,0,host,h0\nmetric,0,u,m\n";
        let mut live = load(topo);
        assert_eq!((live.start(), live.end()), (0.0, 0.0));
        live.live_push_sample(ContainerId::from_index(1), MetricId::from_index(0), 3.0, 1.0)
            .unwrap();
        let reloaded = load(&format!("{topo}var,3.0,1,0,1\n"));
        assert_eq!(live.start(), reloaded.start());
        assert_eq!(live.end(), reloaded.end());
    }

    #[test]
    fn quarantine_and_drop_counters_match_reload() {
        let mut live = load(BASE);
        live.live_note_quarantined(ContainerId::from_index(1), MetricId::from_index(0));
        live.live_note_dropped();
        let reloaded = load(&format!("{BASE}var,2.0,1,0,NaN\ngarbage line, eh\n"));
        assert_eq!(live.quarantined_total(), reloaded.quarantined_total());
        assert_eq!(live.ingest_dropped(), reloaded.ingest_dropped());
    }

    #[test]
    fn span_after_takes_last_valid() {
        let text = "span,0.0,10.0\nspan,bad,10\nspan,5.0,2.0\nspan,1.0,20.0\n# span,9,9\n";
        assert_eq!(span_after(text), Some((1.0, 20.0)));
        assert_eq!(span_after("var,1,1,0,2\n"), None);
    }
}
