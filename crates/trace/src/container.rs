//! Container tree: the hierarchy of monitored entities.
//!
//! The paper's spatial aggregation (§3.2.2) groups monitored entities by
//! "neighbourhoods ... inherited from the traces through the definition
//! of groups, possibly hierarchically organized". The container tree is
//! that hierarchy: `Grid → Site → Cluster → Host/Link` for platforms,
//! with `Process` containers optionally nested under hosts.

use std::fmt;

use crate::error::TraceError;

/// Opaque identifier of a [`Container`] inside one [`ContainerTree`].
///
/// Ids are dense indices: they are assigned in creation order starting
/// from 0 (the root), which makes `Vec`-backed per-container side tables
/// cheap for downstream crates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContainerId(pub(crate) u32);

impl ContainerId {
    /// Returns the dense index backing this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a dense index.
    ///
    /// Only meaningful for indices previously obtained via
    /// [`ContainerId::index`] on the same tree.
    pub fn from_index(index: usize) -> ContainerId {
        ContainerId(index as u32)
    }
}

impl fmt::Display for ContainerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// The nature of a monitored entity.
///
/// The kind drives the default visual mapping (paper §3.1: hosts are
/// squares, links are diamonds) and the default aggregation grouping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContainerKind {
    /// The root of the observed system (e.g. a whole grid).
    Root,
    /// A geographical/administrative site of a grid.
    Site,
    /// A homogeneous cluster of hosts.
    Cluster,
    /// A computing host.
    Host,
    /// A network link.
    Link,
    /// A network router/switch.
    Router,
    /// An application process pinned to a host.
    Process,
    /// A user-defined grouping with no prescribed semantics.
    Group,
}

impl ContainerKind {
    /// Returns `true` for kinds that represent aggregable groupings
    /// rather than leaf monitored entities.
    pub fn is_grouping(self) -> bool {
        matches!(
            self,
            ContainerKind::Root
                | ContainerKind::Site
                | ContainerKind::Cluster
                | ContainerKind::Group
        )
    }

    /// Short lowercase label used by exporters.
    pub fn label(self) -> &'static str {
        match self {
            ContainerKind::Root => "root",
            ContainerKind::Site => "site",
            ContainerKind::Cluster => "cluster",
            ContainerKind::Host => "host",
            ContainerKind::Link => "link",
            ContainerKind::Router => "router",
            ContainerKind::Process => "process",
            ContainerKind::Group => "group",
        }
    }

    /// Parses a label produced by [`ContainerKind::label`].
    pub fn from_label(label: &str) -> Option<ContainerKind> {
        Some(match label {
            "root" => ContainerKind::Root,
            "site" => ContainerKind::Site,
            "cluster" => ContainerKind::Cluster,
            "host" => ContainerKind::Host,
            "link" => ContainerKind::Link,
            "router" => ContainerKind::Router,
            "process" => ContainerKind::Process,
            "group" => ContainerKind::Group,
            _ => return None,
        })
    }
}

impl fmt::Display for ContainerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One monitored entity.
#[derive(Debug, Clone, PartialEq)]
pub struct Container {
    id: ContainerId,
    parent: Option<ContainerId>,
    name: String,
    kind: ContainerKind,
    depth: u32,
    children: Vec<ContainerId>,
}

impl Container {
    /// This container's id.
    pub fn id(&self) -> ContainerId {
        self.id
    }

    /// The parent container, `None` for the root.
    pub fn parent(&self) -> Option<ContainerId> {
        self.parent
    }

    /// Human-readable name, unique among siblings.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The entity kind.
    pub fn kind(&self) -> ContainerKind {
        self.kind
    }

    /// Distance from the root (the root has depth 0).
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Ids of direct children, in creation order.
    pub fn children(&self) -> &[ContainerId] {
        &self.children
    }

    /// Whether this container has no children.
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

/// The tree of all monitored entities of a trace.
///
/// A tree always contains at least the root container.
#[derive(Debug, Clone, PartialEq)]
pub struct ContainerTree {
    nodes: Vec<Container>,
}

impl ContainerTree {
    /// Creates a tree holding only a root container named `root`.
    pub fn new() -> ContainerTree {
        ContainerTree {
            nodes: vec![Container {
                id: ContainerId(0),
                parent: None,
                name: "root".to_owned(),
                kind: ContainerKind::Root,
                depth: 0,
                children: Vec::new(),
            }],
        }
    }

    /// The root container id (always present).
    pub fn root(&self) -> ContainerId {
        ContainerId(0)
    }

    /// Number of containers, root included.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `false`: a tree always holds at least the root.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Adds a child of `parent` and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::UnknownContainer`] if `parent` is not in
    /// this tree.
    pub fn add(
        &mut self,
        parent: ContainerId,
        name: impl Into<String>,
        kind: ContainerKind,
    ) -> Result<ContainerId, TraceError> {
        let depth = self
            .get(parent)
            .ok_or(TraceError::UnknownContainer(parent))?
            .depth
            + 1;
        let id = ContainerId(self.nodes.len() as u32);
        self.nodes.push(Container {
            id,
            parent: Some(parent),
            name: name.into(),
            kind,
            depth,
            children: Vec::new(),
        });
        self.nodes[parent.index()].children.push(id);
        Ok(id)
    }

    /// Looks a container up by id.
    pub fn get(&self, id: ContainerId) -> Option<&Container> {
        self.nodes.get(id.index())
    }

    /// Panicking indexed access, for ids known to be valid.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not part of this tree.
    pub fn node(&self, id: ContainerId) -> &Container {
        &self.nodes[id.index()]
    }

    /// Iterates over all containers in creation (= id) order.
    pub fn iter(&self) -> impl Iterator<Item = &Container> {
        self.nodes.iter()
    }

    /// Finds the first container with the given name anywhere in the
    /// tree (names are only guaranteed unique among siblings).
    pub fn by_name(&self, name: &str) -> Option<&Container> {
        self.nodes.iter().find(|c| c.name == name)
    }

    /// Finds a child of `parent` by name.
    pub fn child_by_name(&self, parent: ContainerId, name: &str) -> Option<&Container> {
        self.get(parent)?
            .children
            .iter()
            .map(|&c| self.node(c))
            .find(|c| c.name == name)
    }

    /// `/`-separated path from the root to `id` (root excluded).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not part of this tree.
    pub fn path(&self, id: ContainerId) -> String {
        let mut parts = Vec::new();
        let mut cur = Some(id);
        while let Some(c) = cur {
            let n = self.node(c);
            if n.parent.is_some() {
                parts.push(n.name.as_str());
            }
            cur = n.parent;
        }
        parts.reverse();
        parts.join("/")
    }

    /// Resolves a path produced by [`ContainerTree::path`].
    pub fn by_path(&self, path: &str) -> Option<&Container> {
        if path.is_empty() {
            return self.get(self.root());
        }
        let mut cur = self.root();
        for part in path.split('/') {
            cur = self.child_by_name(cur, part)?.id();
        }
        self.get(cur)
    }

    /// Ids of the ancestors of `id`, nearest first, root last.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not part of this tree.
    pub fn ancestors(&self, id: ContainerId) -> Vec<ContainerId> {
        let mut out = Vec::new();
        let mut cur = self.node(id).parent;
        while let Some(c) = cur {
            out.push(c);
            cur = self.node(c).parent;
        }
        out
    }

    /// The ancestor of `id` at depth `depth`, or `id` itself if its
    /// depth already is `depth`. `None` if `id` is shallower.
    ///
    /// This is the primitive behind "aggregate the view at cluster /
    /// site / grid level" (paper Fig. 8).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not part of this tree.
    pub fn ancestor_at_depth(&self, id: ContainerId, depth: u32) -> Option<ContainerId> {
        let mut cur = id;
        loop {
            let n = self.node(cur);
            if n.depth == depth {
                return Some(cur);
            }
            if n.depth < depth {
                return None;
            }
            cur = n.parent.expect("non-root has a parent");
        }
    }

    /// All ids in the subtree rooted at `id`, pre-order, `id` first.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not part of this tree.
    pub fn subtree(&self, id: ContainerId) -> Vec<ContainerId> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(c) = stack.pop() {
            out.push(c);
            // Push in reverse so that children come out in order.
            for &ch in self.node(c).children.iter().rev() {
                stack.push(ch);
            }
        }
        out
    }

    /// Leaf ids in the subtree rooted at `id`, in pre-order.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not part of this tree.
    pub fn leaves_under(&self, id: ContainerId) -> Vec<ContainerId> {
        self.subtree(id)
            .into_iter()
            .filter(|&c| self.node(c).is_leaf())
            .collect()
    }

    /// All ids of a given kind, in id order.
    pub fn of_kind(&self, kind: ContainerKind) -> Vec<ContainerId> {
        self.nodes
            .iter()
            .filter(|c| c.kind == kind)
            .map(|c| c.id)
            .collect()
    }

    /// Maximum depth over all containers.
    pub fn max_depth(&self) -> u32 {
        self.nodes.iter().map(|c| c.depth).max().unwrap_or(0)
    }
}

impl Default for ContainerTree {
    fn default() -> Self {
        ContainerTree::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (ContainerTree, ContainerId, ContainerId, ContainerId) {
        let mut t = ContainerTree::new();
        let site = t.add(t.root(), "grenoble", ContainerKind::Site).unwrap();
        let cluster = t.add(site, "adonis", ContainerKind::Cluster).unwrap();
        let host = t.add(cluster, "adonis-1", ContainerKind::Host).unwrap();
        (t, site, cluster, host)
    }

    #[test]
    fn root_exists() {
        let t = ContainerTree::new();
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert_eq!(t.node(t.root()).kind(), ContainerKind::Root);
        assert_eq!(t.node(t.root()).depth(), 0);
        assert!(t.node(t.root()).parent().is_none());
    }

    #[test]
    fn add_builds_depth_and_children() {
        let (t, site, cluster, host) = sample();
        assert_eq!(t.node(site).depth(), 1);
        assert_eq!(t.node(cluster).depth(), 2);
        assert_eq!(t.node(host).depth(), 3);
        assert_eq!(t.node(site).children(), &[cluster]);
        assert_eq!(t.node(host).parent(), Some(cluster));
        assert!(t.node(host).is_leaf());
        assert!(!t.node(site).is_leaf());
    }

    #[test]
    fn add_rejects_unknown_parent() {
        let mut t = ContainerTree::new();
        let bogus = ContainerId(42);
        assert_eq!(
            t.add(bogus, "x", ContainerKind::Host),
            Err(TraceError::UnknownContainer(bogus))
        );
    }

    #[test]
    fn path_roundtrip() {
        let (t, _, _, host) = sample();
        let p = t.path(host);
        assert_eq!(p, "grenoble/adonis/adonis-1");
        assert_eq!(t.by_path(&p).unwrap().id(), host);
        assert_eq!(t.by_path("").unwrap().id(), t.root());
        assert!(t.by_path("grenoble/nope").is_none());
    }

    #[test]
    fn ancestors_nearest_first() {
        let (t, site, cluster, host) = sample();
        assert_eq!(t.ancestors(host), vec![cluster, site, t.root()]);
        assert_eq!(t.ancestors(t.root()), vec![]);
    }

    #[test]
    fn ancestor_at_depth_matches_levels() {
        let (t, site, cluster, host) = sample();
        assert_eq!(t.ancestor_at_depth(host, 1), Some(site));
        assert_eq!(t.ancestor_at_depth(host, 2), Some(cluster));
        assert_eq!(t.ancestor_at_depth(host, 3), Some(host));
        assert_eq!(t.ancestor_at_depth(site, 3), None);
        assert_eq!(t.ancestor_at_depth(host, 0), Some(t.root()));
    }

    #[test]
    fn subtree_is_preorder() {
        let (mut t, site, cluster, host) = sample();
        let host2 = t.add(cluster, "adonis-2", ContainerKind::Host).unwrap();
        assert_eq!(t.subtree(site), vec![site, cluster, host, host2]);
        assert_eq!(t.leaves_under(site), vec![host, host2]);
        assert_eq!(t.subtree(host), vec![host]);
    }

    #[test]
    fn of_kind_filters() {
        let (t, _, _, host) = sample();
        assert_eq!(t.of_kind(ContainerKind::Host), vec![host]);
        assert!(t.of_kind(ContainerKind::Link).is_empty());
    }

    #[test]
    fn kind_label_roundtrip() {
        for k in [
            ContainerKind::Root,
            ContainerKind::Site,
            ContainerKind::Cluster,
            ContainerKind::Host,
            ContainerKind::Link,
            ContainerKind::Router,
            ContainerKind::Process,
            ContainerKind::Group,
        ] {
            assert_eq!(ContainerKind::from_label(k.label()), Some(k));
        }
        assert_eq!(ContainerKind::from_label("widget"), None);
    }

    #[test]
    fn by_name_finds_first() {
        let (t, _, cluster, _) = sample();
        assert_eq!(t.by_name("adonis").unwrap().id(), cluster);
        assert!(t.by_name("missing").is_none());
    }
}
