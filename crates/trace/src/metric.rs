//! Metric registry: the typed quantities recorded in a trace.
//!
//! Each metric has its own unit and therefore its own scale; the paper
//! (§4.1) insists that "computing power is likely to be measured in
//! Megaflops, network data traffic might be measured in Megabit/second"
//! and derives an *independent* screen scaling per metric type. The
//! registry is where that typing lives.

use std::fmt;

/// Opaque identifier of a [`Metric`] inside one [`MetricRegistry`].
///
/// Ids are dense indices assigned in registration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MetricId(pub(crate) u32);

impl MetricId {
    /// Returns the dense index backing this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a dense index previously obtained via
    /// [`MetricId::index`] on the same registry.
    pub fn from_index(index: usize) -> MetricId {
        MetricId(index as u32)
    }
}

impl fmt::Display for MetricId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// A typed quantity: name + unit.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Metric {
    id: MetricId,
    name: String,
    unit: String,
}

impl Metric {
    /// This metric's id.
    pub fn id(&self) -> MetricId {
        self.id
    }

    /// Metric name (e.g. `"power"`, `"bandwidth_used"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Unit label (e.g. `"MFlop/s"`, `"Mbit/s"`).
    pub fn unit(&self) -> &str {
        &self.unit
    }
}

/// Registry of all metrics of a trace, keyed by name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricRegistry {
    metrics: Vec<Metric>,
}

impl MetricRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricRegistry {
        MetricRegistry::default()
    }

    /// Registers a metric, or returns the existing id when a metric of
    /// the same name was already registered (the unit of the first
    /// registration wins).
    pub fn register(&mut self, name: impl Into<String>, unit: impl Into<String>) -> MetricId {
        let name = name.into();
        if let Some(m) = self.by_name(&name) {
            return m.id();
        }
        let id = MetricId(self.metrics.len() as u32);
        self.metrics.push(Metric { id, name, unit: unit.into() });
        id
    }

    /// Looks a metric up by id.
    pub fn get(&self, id: MetricId) -> Option<&Metric> {
        self.metrics.get(id.index())
    }

    /// Looks a metric up by name.
    pub fn by_name(&self, name: &str) -> Option<&Metric> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether no metric has been registered yet.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Iterates over metrics in registration (= id) order.
    pub fn iter(&self) -> impl Iterator<Item = &Metric> {
        self.metrics.iter()
    }
}

/// Conventional metric names used across the workspace.
///
/// Simulator and generators agree on these so that the visualization
/// layer can apply sensible default mappings (capacity → size,
/// utilization → fill; paper §3.1).
pub mod names {
    /// Host computing power capacity, MFlop/s.
    pub const POWER: &str = "power";
    /// Host computing power in use, MFlop/s.
    pub const POWER_USED: &str = "power_used";
    /// Link bandwidth capacity, Mbit/s.
    pub const BANDWIDTH: &str = "bandwidth";
    /// Link bandwidth in use, Mbit/s.
    pub const BANDWIDTH_USED: &str = "bandwidth_used";
    /// Resource availability: 1 while a host/link is up, 0 while it is
    /// down (fault injection). The time-mean over a slice is the
    /// availability *fraction* of that slice.
    pub const AVAILABILITY: &str = "available";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut r = MetricRegistry::new();
        let p = r.register("power", "MFlop/s");
        let b = r.register("bandwidth", "Mbit/s");
        assert_ne!(p, b);
        assert_eq!(r.len(), 2);
        assert_eq!(r.get(p).unwrap().name(), "power");
        assert_eq!(r.get(p).unwrap().unit(), "MFlop/s");
        assert_eq!(r.by_name("bandwidth").unwrap().id(), b);
        assert!(r.by_name("latency").is_none());
    }

    #[test]
    fn register_is_idempotent_by_name() {
        let mut r = MetricRegistry::new();
        let a = r.register("power", "MFlop/s");
        let b = r.register("power", "GFlop/s");
        assert_eq!(a, b);
        assert_eq!(r.len(), 1);
        // First unit wins.
        assert_eq!(r.get(a).unwrap().unit(), "MFlop/s");
    }

    #[test]
    fn iter_in_id_order() {
        let mut r = MetricRegistry::new();
        r.register("a", "x");
        r.register("b", "y");
        let names: Vec<_> = r.iter().map(|m| m.name().to_owned()).collect();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn empty_registry() {
        let r = MetricRegistry::new();
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert!(r.get(MetricId(0)).is_none());
    }
}
