//! Piecewise-constant signals: the value of one metric on one container
//! over time.
//!
//! A [`Signal`] is built from timestamped *set* events: after a
//! `push(t, v)` the signal holds value `v` from `t` until the next
//! breakpoint (the last value persists forever). Before the first
//! breakpoint the signal is 0.
//!
//! The paper's temporal aggregation (§3.2.1) time-integrates such
//! signals over an analyst-chosen time-slice. [`Signal::integrate`]
//! does this in `O(log n)` thanks to a running prefix integral that is
//! maintained incrementally on push.

use crate::error::TraceError;

/// A piecewise-constant function of time.
///
/// # Example
///
/// ```
/// use viva_trace::Signal;
///
/// let mut s = Signal::new();
/// s.push(0.0, 100.0)?;
/// s.push(5.0, 50.0)?;
/// assert_eq!(s.value_at(2.5), 100.0);
/// assert_eq!(s.value_at(7.5), 50.0);
/// assert_eq!(s.integrate(0.0, 10.0), 100.0 * 5.0 + 50.0 * 5.0);
/// assert_eq!(s.mean(0.0, 10.0), 75.0);
/// # Ok::<(), viva_trace::TraceError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Signal {
    times: Vec<f64>,
    values: Vec<f64>,
    /// `cum[i]` = integral of the signal over `[times[0], times[i]]`.
    cum: Vec<f64>,
}

impl Signal {
    /// Creates an empty signal (identically 0).
    pub fn new() -> Signal {
        Signal::default()
    }

    /// Creates a signal holding `value` from time `t` on.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::NotFinite`] when `t` or `value` is not
    /// finite.
    pub fn constant_from(t: f64, value: f64) -> Result<Signal, TraceError> {
        let mut s = Signal::new();
        s.push(t, value)?;
        Ok(s)
    }

    /// Number of breakpoints.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Reserves capacity for `additional` further breakpoints in all
    /// three columns — lets bulk conversions size signals exactly.
    pub(crate) fn reserve(&mut self, additional: usize) {
        self.times.reserve(additional);
        self.values.reserve(additional);
        self.cum.reserve(additional);
    }

    /// Whether the signal has no breakpoints (identically 0).
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Time of the first breakpoint.
    pub fn first_time(&self) -> Option<f64> {
        self.times.first().copied()
    }

    /// Time of the last breakpoint.
    pub fn last_time(&self) -> Option<f64> {
        self.times.last().copied()
    }

    /// Appends a breakpoint: the signal takes value `value` from time
    /// `t` on. Pushing at the exact time of the last breakpoint
    /// overwrites its value.
    ///
    /// # Errors
    ///
    /// * [`TraceError::NotFinite`] when `t` or `value` is not finite.
    /// * [`TraceError::NonMonotonicTime`] when `t` precedes the last
    ///   breakpoint.
    pub fn push(&mut self, t: f64, value: f64) -> Result<(), TraceError> {
        if !t.is_finite() {
            return Err(TraceError::NotFinite { value: t });
        }
        if !value.is_finite() {
            return Err(TraceError::NotFinite { value });
        }
        match self.times.last().copied() {
            None => {
                self.times.push(t);
                self.values.push(value);
                self.cum.push(0.0);
            }
            Some(last) if t < last => {
                return Err(TraceError::NonMonotonicTime { time: t, last });
            }
            Some(last) if t == last => {
                *self.values.last_mut().expect("non-empty") = value;
            }
            Some(last) => {
                let dt = t - last;
                let prev_val = *self.values.last().expect("non-empty");
                let prev_cum = *self.cum.last().expect("non-empty");
                self.times.push(t);
                self.values.push(value);
                self.cum.push(prev_cum + prev_val * dt);
            }
        }
        Ok(())
    }

    /// The value of the signal at time `t` (0 before the first
    /// breakpoint; the last value persists after the last breakpoint).
    pub fn value_at(&self, t: f64) -> f64 {
        match self.segment_index(t) {
            Some(i) => self.values[i],
            None => 0.0,
        }
    }

    /// Index of the breakpoint governing time `t`, i.e. the rightmost
    /// breakpoint with `times[i] <= t`.
    fn segment_index(&self, t: f64) -> Option<usize> {
        if self.times.is_empty() || t < self.times[0] {
            return None;
        }
        // partition_point returns the number of breakpoints <= t.
        Some(self.times.partition_point(|&x| x <= t) - 1)
    }

    /// Antiderivative: integral of the signal over `(-inf, t]`.
    fn antiderivative(&self, t: f64) -> f64 {
        match self.segment_index(t) {
            None => 0.0,
            Some(i) => self.cum[i] + (t - self.times[i]) * self.values[i],
        }
    }

    /// Integral of the signal over `[a, b]`.
    ///
    /// Returns 0 when `b <= a`. This is the temporal-aggregation
    /// primitive of the paper's Equation 1.
    pub fn integrate(&self, a: f64, b: f64) -> f64 {
        if b <= a {
            return 0.0;
        }
        self.antiderivative(b) - self.antiderivative(a)
    }

    /// Time-average of the signal over `[a, b]`.
    ///
    /// Returns 0 when `b <= a`.
    pub fn mean(&self, a: f64, b: f64) -> f64 {
        if b <= a {
            return 0.0;
        }
        self.integrate(a, b) / (b - a)
    }

    /// Maximum value taken anywhere in `[a, b]` (0 if the window lies
    /// entirely before the first breakpoint).
    pub fn max_over(&self, a: f64, b: f64) -> f64 {
        self.fold_over(a, b, f64::NEG_INFINITY, f64::max)
    }

    /// Minimum value taken anywhere in `[a, b]`.
    pub fn min_over(&self, a: f64, b: f64) -> f64 {
        self.fold_over(a, b, f64::INFINITY, f64::min)
    }

    fn fold_over(&self, a: f64, b: f64, init: f64, f: fn(f64, f64) -> f64) -> f64 {
        if b < a {
            return 0.0;
        }
        let mut acc = init;
        // Portion before the first breakpoint is 0.
        if self.times.first().is_none_or(|&t0| a < t0) {
            acc = f(acc, 0.0);
        }
        let start = self.segment_index(a).unwrap_or(0);
        for i in start..self.times.len() {
            if self.times[i] > b {
                break;
            }
            acc = f(acc, self.values[i]);
        }
        if acc.is_infinite() {
            0.0
        } else {
            acc
        }
    }

    /// Iterates over `(start, end, value)` segments; the final segment
    /// has `end = None` (the value persists).
    pub fn segments(&self) -> Segments<'_> {
        Segments { signal: self, i: 0 }
    }

    /// Breakpoint times, ascending.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Values taken after each breakpoint (parallel to
    /// [`Signal::times`]).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Running antiderivative at each breakpoint: `cumulative()[i]` is
    /// the integral of the signal over `[times()[0], times()[i]]`.
    /// Parallel to [`Signal::times`]. This is the raw material
    /// aggregation indices are built from — they splice these arrays
    /// instead of re-integrating event by event.
    pub fn cumulative(&self) -> &[f64] {
        &self.cum
    }

    /// Builds the pointwise sum of several signals.
    ///
    /// The result has a breakpoint wherever any input has one. Useful
    /// for aggregating independent resource-usage signals into a group
    /// signal (paper §3.2.2).
    pub fn sum<'a>(signals: impl IntoIterator<Item = &'a Signal>) -> Signal {
        let signals: Vec<&Signal> = signals.into_iter().collect();
        let mut all_times: Vec<f64> = signals
            .iter()
            .flat_map(|s| s.times.iter().copied())
            .collect();
        all_times.sort_by(f64::total_cmp);
        all_times.dedup();
        let mut out = Signal::new();
        for t in all_times {
            let v: f64 = signals.iter().map(|s| s.value_at(t)).sum();
            out.push(t, v).expect("sorted deduped times are monotonic");
        }
        out
    }

    /// Returns a copy scaled by `factor`.
    pub fn scaled(&self, factor: f64) -> Signal {
        Signal {
            times: self.times.clone(),
            values: self.values.iter().map(|v| v * factor).collect(),
            cum: self.cum.iter().map(|c| c * factor).collect(),
        }
    }
}

/// Iterator over the constant segments of a [`Signal`].
///
/// Produced by [`Signal::segments`].
#[derive(Debug, Clone)]
pub struct Segments<'a> {
    signal: &'a Signal,
    i: usize,
}

impl Iterator for Segments<'_> {
    /// `(start, end, value)`; `end` is `None` for the last segment.
    type Item = (f64, Option<f64>, f64);

    fn next(&mut self) -> Option<Self::Item> {
        let s = self.signal;
        if self.i >= s.times.len() {
            return None;
        }
        let start = s.times[self.i];
        let end = s.times.get(self.i + 1).copied();
        let value = s.values[self.i];
        self.i += 1;
        Some((start, end, value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step() -> Signal {
        let mut s = Signal::new();
        s.push(0.0, 100.0).unwrap();
        s.push(5.0, 50.0).unwrap();
        s.push(10.0, 0.0).unwrap();
        s
    }

    #[test]
    fn empty_signal_is_zero() {
        let s = Signal::new();
        assert!(s.is_empty());
        assert_eq!(s.value_at(3.0), 0.0);
        assert_eq!(s.integrate(0.0, 100.0), 0.0);
        assert_eq!(s.mean(0.0, 100.0), 0.0);
        assert!(s.first_time().is_none());
    }

    #[test]
    fn value_at_boundaries() {
        let s = step();
        assert_eq!(s.value_at(-1.0), 0.0);
        assert_eq!(s.value_at(0.0), 100.0);
        assert_eq!(s.value_at(4.999), 100.0);
        assert_eq!(s.value_at(5.0), 50.0);
        assert_eq!(s.value_at(10.0), 0.0);
        assert_eq!(s.value_at(1e9), 0.0);
    }

    #[test]
    fn integrate_exact() {
        let s = step();
        assert_eq!(s.integrate(0.0, 5.0), 500.0);
        assert_eq!(s.integrate(0.0, 10.0), 750.0);
        assert_eq!(s.integrate(2.0, 7.0), 300.0 + 100.0);
        assert_eq!(s.integrate(-5.0, 0.0), 0.0);
        assert_eq!(s.integrate(20.0, 30.0), 0.0);
        // Degenerate and inverted windows.
        assert_eq!(s.integrate(3.0, 3.0), 0.0);
        assert_eq!(s.integrate(7.0, 3.0), 0.0);
    }

    #[test]
    fn last_value_persists() {
        let mut s = Signal::new();
        s.push(0.0, 2.0).unwrap();
        assert_eq!(s.integrate(0.0, 1e6), 2e6);
        assert_eq!(s.value_at(f64::MAX / 2.0), 2.0);
    }

    #[test]
    fn mean_is_integral_over_width() {
        let s = step();
        assert_eq!(s.mean(0.0, 10.0), 75.0);
        assert_eq!(s.mean(5.0, 10.0), 50.0);
    }

    #[test]
    fn push_same_time_overwrites() {
        let mut s = Signal::new();
        s.push(1.0, 10.0).unwrap();
        s.push(1.0, 20.0).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.value_at(1.0), 20.0);
    }

    #[test]
    fn push_rejects_bad_input() {
        let mut s = Signal::new();
        s.push(5.0, 1.0).unwrap();
        assert!(matches!(
            s.push(4.0, 1.0),
            Err(TraceError::NonMonotonicTime { .. })
        ));
        assert!(matches!(
            s.push(f64::NAN, 1.0),
            Err(TraceError::NotFinite { .. })
        ));
        assert!(matches!(
            s.push(6.0, f64::INFINITY),
            Err(TraceError::NotFinite { .. })
        ));
    }

    #[test]
    fn max_min_over_windows() {
        let s = step();
        assert_eq!(s.max_over(0.0, 10.0), 100.0);
        assert_eq!(s.max_over(6.0, 8.0), 50.0);
        assert_eq!(s.min_over(0.0, 4.0), 100.0);
        assert_eq!(s.min_over(0.0, 20.0), 0.0);
        // Window before the signal starts sees the implicit 0.
        assert_eq!(s.max_over(-10.0, -5.0), 0.0);
    }

    #[test]
    fn segments_enumerate_pieces() {
        let s = step();
        let segs: Vec<_> = s.segments().collect();
        assert_eq!(
            segs,
            vec![
                (0.0, Some(5.0), 100.0),
                (5.0, Some(10.0), 50.0),
                (10.0, None, 0.0),
            ]
        );
    }

    #[test]
    fn sum_merges_breakpoints() {
        let mut a = Signal::new();
        a.push(0.0, 1.0).unwrap();
        a.push(10.0, 3.0).unwrap();
        let mut b = Signal::new();
        b.push(5.0, 2.0).unwrap();
        let s = Signal::sum([&a, &b]);
        assert_eq!(s.value_at(2.0), 1.0);
        assert_eq!(s.value_at(7.0), 3.0);
        assert_eq!(s.value_at(12.0), 5.0);
        assert_eq!(
            s.integrate(0.0, 15.0),
            a.integrate(0.0, 15.0) + b.integrate(0.0, 15.0)
        );
    }

    #[test]
    fn scaled_scales_integral() {
        let s = step().scaled(2.0);
        assert_eq!(s.integrate(0.0, 10.0), 1500.0);
        assert_eq!(s.value_at(1.0), 200.0);
    }

    #[test]
    fn constant_from_builds_step() {
        let s = Signal::constant_from(3.0, 7.0).unwrap();
        assert_eq!(s.value_at(2.0), 0.0);
        assert_eq!(s.value_at(3.0), 7.0);
        assert_eq!(s.integrate(0.0, 5.0), 14.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Strategy: a signal with up to 32 breakpoints in [0, 100] and
    /// values in [0, 1000].
    fn signal_strategy() -> impl Strategy<Value = Signal> {
        proptest::collection::vec((0.0f64..100.0, 0.0f64..1000.0), 1..32).prop_map(|mut pts| {
            pts.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut s = Signal::new();
            for (t, v) in pts {
                s.push(t, v).unwrap();
            }
            s
        })
    }

    proptest! {
        /// Integration is additive over adjacent windows.
        #[test]
        fn integral_additivity(s in signal_strategy(),
                               a in -10.0f64..110.0,
                               b in -10.0f64..110.0,
                               c in -10.0f64..110.0) {
            let mut w = [a, b, c];
            w.sort_by(f64::total_cmp);
            let [a, b, c] = w;
            let whole = s.integrate(a, c);
            let parts = s.integrate(a, b) + s.integrate(b, c);
            prop_assert!((whole - parts).abs() <= 1e-6 * whole.abs().max(1.0));
        }

        /// The mean over a window lies between the min and max values.
        #[test]
        fn mean_bounded_by_extremes(s in signal_strategy(),
                                    a in 0.0f64..100.0,
                                    w in 0.01f64..50.0) {
            let b = a + w;
            let mean = s.mean(a, b);
            let lo = s.min_over(a, b);
            let hi = s.max_over(a, b);
            prop_assert!(mean >= lo - 1e-9, "mean {mean} < min {lo}");
            prop_assert!(mean <= hi + 1e-9, "mean {mean} > max {hi}");
        }

        /// Summing signals commutes with integration (linearity).
        #[test]
        fn sum_linearity(x in signal_strategy(), y in signal_strategy(),
                         a in 0.0f64..50.0, w in 0.01f64..50.0) {
            let b = a + w;
            let s = Signal::sum([&x, &y]);
            let lhs = s.integrate(a, b);
            let rhs = x.integrate(a, b) + y.integrate(a, b);
            prop_assert!((lhs - rhs).abs() <= 1e-6 * rhs.abs().max(1.0));
        }

        /// value_at agrees with the segment enumeration.
        #[test]
        fn value_matches_segments(s in signal_strategy(), t in -5.0f64..105.0) {
            let v = s.value_at(t);
            let mut expect = 0.0;
            for (start, end, val) in s.segments() {
                let within = t >= start && end.is_none_or(|e| t < e);
                if within {
                    expect = val;
                }
            }
            prop_assert_eq!(v, expect);
        }
    }
}
