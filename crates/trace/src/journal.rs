//! Append-only, checksummed event journal — the durability substrate
//! for live streaming sessions.
//!
//! A journal is a single file holding a fixed header line followed by
//! length-prefixed, CRC-checksummed NDJSON records:
//!
//! ```text
//! vivajournal\t1\t"<id>"\n
//! <len>\t<crc32:08x>\t{"seq":1,"text":"..."}\n
//! <len>\t<crc32:08x>\t{"seq":2,"text":"..."}\n
//! <len>\t<crc32:08x>\t{"seal":true}\n
//! ```
//!
//! * `len` is the byte length of the payload (the third field), so a
//!   torn write is detectable without trusting the newline.
//! * `crc32` is the IEEE CRC-32 of the payload bytes, so a bit flip is
//!   detectable even when the length survives.
//! * Payloads are canonical one-line JSON; `text` escapes `\n` and
//!   friends, so the file stays strictly line-oriented.
//! * A `{"seal":true}` record marks the journal **sealed**: no record
//!   may follow it, and recovery treats anything after it as garbage.
//!
//! Recovery ([`RecoveredJournal::read`]) scans from the start and
//! **truncates at the first torn or corrupt record** — a short final
//! line, a length mismatch, a CRC mismatch, an unparsable payload, or a
//! non-contiguous sequence number all end the valid prefix. Everything
//! before that point is a provable prefix of what the writer appended,
//! which is exactly what the lenient loader needs to replay a live
//! session after a crash (see DESIGN.md §16).
//!
//! The writer fsync-batches: [`JournalWriter::append`] flushes the OS
//! buffer every record but only calls `fsync` every
//! [`JournalConfig::sync_every`] records (and on [`JournalWriter::seal`]),
//! trading a bounded window of acknowledged-but-not-yet-durable records
//! for append throughput.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use viva_obs::Recorder;

/// Magic first field of the header line.
const MAGIC: &str = "vivajournal";
/// On-disk format version.
const VERSION: u32 = 1;

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) lookup table,
/// built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// IEEE CRC-32 of `bytes` (the common `crc32`/zlib checksum).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------
// Minimal JSON string escaping (journal payloads are self-contained —
// viva-trace cannot depend on the server's codec).
// ---------------------------------------------------------------------

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON string literal starting at `s[0] == '"'`. Returns the
/// decoded string and the number of bytes consumed (including quotes).
fn unescape(s: &str) -> Option<(String, usize)> {
    let bytes = s.as_bytes();
    if bytes.first() != Some(&b'"') {
        return None;
    }
    let mut out = String::new();
    let mut chars = s[1..].char_indices();
    while let Some((i, ch)) = chars.next() {
        match ch {
            '"' => return Some((out, 1 + i + 1)),
            '\\' => {
                let (_, esc) = chars.next()?;
                match esc {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'b' => out.push('\u{8}'),
                    'f' => out.push('\u{c}'),
                    'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let (_, h) = chars.next()?;
                            code = code * 16 + h.to_digit(16)?;
                        }
                        out.push(char::from_u32(code)?);
                    }
                    _ => return None,
                }
            }
            c => out.push(c),
        }
    }
    None
}

// ---------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------

/// One recovered journal record: an acknowledged `append` payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    /// Strictly increasing, contiguous from 1.
    pub seq: u64,
    /// The appended trace text (one or more CSV interchange lines).
    pub text: String,
}

enum Payload {
    Record(JournalRecord),
    Seal,
}

fn encode_payload(p: &Payload) -> String {
    match p {
        Payload::Record(r) => {
            let mut s = String::with_capacity(r.text.len() + 32);
            s.push_str("{\"seq\":");
            s.push_str(&r.seq.to_string());
            s.push_str(",\"text\":");
            escape_into(&mut s, &r.text);
            s.push('}');
            s
        }
        Payload::Seal => "{\"seal\":true}".to_string(),
    }
}

fn decode_payload(s: &str) -> Option<Payload> {
    if s == "{\"seal\":true}" {
        return Some(Payload::Seal);
    }
    let rest = s.strip_prefix("{\"seq\":")?;
    let digits_end = rest.find(|c: char| !c.is_ascii_digit())?;
    if digits_end == 0 {
        return None;
    }
    let seq: u64 = rest[..digits_end].parse().ok()?;
    let rest = rest[digits_end..].strip_prefix(",\"text\":")?;
    let (text, used) = unescape(rest)?;
    if &rest[used..] != "}" {
        return None;
    }
    Some(Payload::Record(JournalRecord { seq, text }))
}

fn encode_record_line(p: &Payload) -> String {
    let payload = encode_payload(p);
    format!("{}\t{:08x}\t{}\n", payload.len(), crc32(payload.as_bytes()), payload)
}

fn header_line(id: &str) -> String {
    let mut s = String::new();
    s.push_str(MAGIC);
    s.push('\t');
    s.push_str(&VERSION.to_string());
    s.push('\t');
    escape_into(&mut s, id);
    s.push('\n');
    s
}

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// Why a journal could not be opened or appended to.
#[derive(Debug)]
pub enum JournalError {
    /// Underlying filesystem failure.
    Io(io::Error),
    /// The file's header is not a `vivajournal` header this version
    /// understands (wrong magic, wrong version, torn header).
    BadHeader,
    /// `append` on a sealed journal.
    Sealed,
    /// `append` with a sequence number that is not `last_seq + 1`.
    BadSeq {
        /// What the writer expected.
        expected: u64,
        /// What the caller passed.
        got: u64,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::BadHeader => write!(f, "not a vivajournal v{VERSION} file"),
            JournalError::Sealed => write!(f, "journal is sealed"),
            JournalError::BadSeq { expected, got } => {
                write!(f, "journal sequence gap: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        JournalError::Io(e)
    }
}

// ---------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------

/// The provably-valid prefix of a journal file, as read back by
/// recovery.
#[derive(Debug)]
pub struct RecoveredJournal {
    /// The id stored in the header (the live session's name).
    pub id: String,
    /// Valid records, contiguous from seq 1.
    pub records: Vec<JournalRecord>,
    /// Whether a seal record ended the valid prefix.
    pub sealed: bool,
    /// Byte length of the valid prefix (header + intact records).
    pub valid_len: u64,
    /// Bytes discarded past the valid prefix (0 for a clean file).
    pub truncated_bytes: u64,
}

impl RecoveredJournal {
    /// Highest valid sequence number (0 when empty).
    pub fn last_seq(&self) -> u64 {
        self.records.last().map_or(0, |r| r.seq)
    }

    /// Scans `path`, validating records until the first torn or corrupt
    /// one. Never errors on a damaged *tail* — damage merely shortens
    /// the valid prefix. Errors only when the file cannot be read at
    /// all or its header is not a vivajournal header (a torn header
    /// means zero durable records, which is also reported as
    /// [`JournalError::BadHeader`] — the caller decides whether to
    /// discard the file).
    pub fn read(path: &Path) -> Result<RecoveredJournal, JournalError> {
        let mut buf = Vec::new();
        File::open(path)?.read_to_end(&mut buf)?;
        // Header must be intact: a valid UTF-8 line `magic\tversion\t"id"`.
        let nl = buf
            .iter()
            .position(|&b| b == b'\n')
            .ok_or(JournalError::BadHeader)?;
        let header =
            std::str::from_utf8(&buf[..nl]).map_err(|_| JournalError::BadHeader)?;
        let mut fields = header.splitn(3, '\t');
        if fields.next() != Some(MAGIC) {
            return Err(JournalError::BadHeader);
        }
        if fields.next().and_then(|v| v.parse::<u32>().ok()) != Some(VERSION) {
            return Err(JournalError::BadHeader);
        }
        let id = match fields.next().and_then(unescape) {
            Some((id, used)) if used == header.len() - (MAGIC.len() + 1) - 2 => id,
            _ => return Err(JournalError::BadHeader),
        };

        let mut records = Vec::new();
        let mut sealed = false;
        let mut pos = nl + 1;
        let mut valid_len = pos as u64;
        while pos < buf.len() && !sealed {
            let Some(parsed) = parse_record_at(&buf[pos..]) else {
                break;
            };
            let (payload, line_len) = parsed;
            match payload {
                Payload::Record(r) => {
                    let expected = records.last().map_or(1, |p: &JournalRecord| p.seq + 1);
                    if r.seq != expected {
                        break;
                    }
                    records.push(r);
                }
                Payload::Seal => sealed = true,
            }
            pos += line_len;
            valid_len = pos as u64;
        }
        Ok(RecoveredJournal {
            id,
            records,
            sealed,
            valid_len,
            truncated_bytes: buf.len() as u64 - valid_len,
        })
    }
}

/// Parses one record line at the start of `buf`. Returns the payload
/// and the total line length (including the newline), or `None` when
/// the line is torn or corrupt in any way.
fn parse_record_at(buf: &[u8]) -> Option<(Payload, usize)> {
    let nl = buf.iter().position(|&b| b == b'\n')?;
    let line = std::str::from_utf8(&buf[..nl]).ok()?;
    let mut fields = line.splitn(3, '\t');
    let len: usize = fields.next()?.parse().ok()?;
    let crc_field = fields.next()?;
    if crc_field.len() != 8 {
        return None;
    }
    let crc: u32 = u32::from_str_radix(crc_field, 16).ok()?;
    let payload = fields.next()?;
    if payload.len() != len || crc32(payload.as_bytes()) != crc {
        return None;
    }
    Some((decode_payload(payload)?, nl + 1))
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// Writer tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct JournalConfig {
    /// `fsync` after every N appended records (1 = every record). The
    /// OS buffer is flushed on every append regardless; this bounds the
    /// *durability* window, not the visibility window.
    pub sync_every: u32,
}

impl Default for JournalConfig {
    fn default() -> Self {
        JournalConfig { sync_every: 64 }
    }
}

/// What one [`JournalWriter::append`] did — feeds observability
/// counters at the call site.
#[derive(Debug, Clone, Copy)]
pub struct AppendOutcome {
    /// Bytes written for this record (framing included).
    pub bytes: u64,
    /// Whether this append crossed the batch boundary and fsynced.
    pub synced: bool,
}

/// Appends checksummed records to a journal file.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
    path: PathBuf,
    id: String,
    last_seq: u64,
    sealed: bool,
    unsynced: u32,
    config: JournalConfig,
    recorder: Recorder,
}

impl JournalWriter {
    /// Creates a fresh journal at `path` (truncating any existing
    /// file), writes and fsyncs the header.
    pub fn create(
        path: &Path,
        id: &str,
        config: JournalConfig,
    ) -> Result<JournalWriter, JournalError> {
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        file.write_all(header_line(id).as_bytes())?;
        file.sync_data()?;
        Ok(JournalWriter {
            file,
            path: path.to_path_buf(),
            id: id.to_string(),
            last_seq: 0,
            sealed: false,
            unsynced: 0,
            config,
            recorder: Recorder::disabled(),
        })
    }

    /// Recovers `path` and reopens it for appending: the torn tail (if
    /// any) is physically truncated so the file ends exactly at the
    /// valid prefix, and the writer continues from the recovered
    /// sequence number. Returns the recovered prefix alongside so the
    /// caller can replay it.
    pub fn recover(
        path: &Path,
        config: JournalConfig,
    ) -> Result<(JournalWriter, RecoveredJournal), JournalError> {
        let recovered = RecoveredJournal::read(path)?;
        let mut file = OpenOptions::new().write(true).open(path)?;
        if recovered.truncated_bytes > 0 {
            file.set_len(recovered.valid_len)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(recovered.valid_len))?;
        let writer = JournalWriter {
            file,
            path: path.to_path_buf(),
            id: recovered.id.clone(),
            last_seq: recovered.last_seq(),
            sealed: recovered.sealed,
            unsynced: 0,
            config,
            recorder: Recorder::disabled(),
        };
        Ok((writer, recovered))
    }

    /// Attaches an observability recorder; subsequent appends bump
    /// `journal.records` / `journal.bytes` / `journal.fsyncs`.
    pub fn with_recorder(mut self, recorder: Recorder) -> JournalWriter {
        self.recorder = recorder;
        self
    }

    /// The id recorded in the header.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Highest appended sequence number (0 when empty).
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    /// Whether [`JournalWriter::seal`] has been written.
    pub fn sealed(&self) -> bool {
        self.sealed
    }

    /// Appends one record. `seq` must be exactly `last_seq() + 1` — the
    /// caller owns idempotent-duplicate suppression; the journal only
    /// guarantees the file never contains a gap or a duplicate.
    pub fn append(&mut self, seq: u64, text: &str) -> Result<AppendOutcome, JournalError> {
        if self.sealed {
            return Err(JournalError::Sealed);
        }
        let expected = self.last_seq + 1;
        if seq != expected {
            return Err(JournalError::BadSeq { expected, got: seq });
        }
        let line = encode_record_line(&Payload::Record(JournalRecord {
            seq,
            text: text.to_string(),
        }));
        self.file.write_all(line.as_bytes())?;
        self.last_seq = seq;
        self.unsynced += 1;
        let synced = self.unsynced >= self.config.sync_every.max(1);
        if synced {
            self.file.sync_data()?;
            self.unsynced = 0;
            self.recorder.counter("journal.fsyncs").add(1);
        }
        self.recorder.counter("journal.records").add(1);
        self.recorder.counter("journal.bytes").add(line.len() as u64);
        Ok(AppendOutcome { bytes: line.len() as u64, synced })
    }

    /// Forces an fsync of everything appended so far.
    pub fn sync(&mut self) -> Result<(), JournalError> {
        self.file.sync_data()?;
        if self.unsynced > 0 {
            self.recorder.counter("journal.fsyncs").add(1);
        }
        self.unsynced = 0;
        Ok(())
    }

    /// Writes the seal record and fsyncs. Idempotent.
    pub fn seal(&mut self) -> Result<(), JournalError> {
        if self.sealed {
            return Ok(());
        }
        let line = encode_record_line(&Payload::Seal);
        self.file.write_all(line.as_bytes())?;
        self.file.sync_data()?;
        self.recorder.counter("journal.fsyncs").add(1);
        self.recorder.counter("journal.bytes").add(line.len() as u64);
        self.sealed = true;
        self.unsynced = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "viva_journal_test_{tag}_{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn crc32_known_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn payload_roundtrip_with_escapes() {
        let r = JournalRecord {
            seq: 7,
            text: "var,1.0,2,0,3.5\nspan \"quoted\" \\ tab\tend\u{1}".to_string(),
        };
        let enc = encode_payload(&Payload::Record(r.clone()));
        assert!(!enc.contains('\n'));
        match decode_payload(&enc) {
            Some(Payload::Record(back)) => assert_eq!(back, r),
            _ => panic!("payload did not round-trip"),
        }
    }

    #[test]
    fn write_recover_roundtrip() {
        let path = tmpdir("roundtrip").join("a.vjj");
        let mut w = JournalWriter::create(&path, "sess/α", JournalConfig::default()).unwrap();
        for i in 1..=5u64 {
            w.append(i, &format!("var,{i}.0,1,0,{i}\n")).unwrap();
        }
        w.seal().unwrap();
        let rec = RecoveredJournal::read(&path).unwrap();
        assert_eq!(rec.id, "sess/α");
        assert_eq!(rec.records.len(), 5);
        assert_eq!(rec.last_seq(), 5);
        assert!(rec.sealed);
        assert_eq!(rec.truncated_bytes, 0);
        assert_eq!(rec.records[2].text, "var,3.0,1,0,3\n");
    }

    #[test]
    fn append_enforces_contiguity_and_seal() {
        let path = tmpdir("contig").join("a.vjj");
        let mut w = JournalWriter::create(&path, "s", JournalConfig::default()).unwrap();
        w.append(1, "x").unwrap();
        assert!(matches!(
            w.append(3, "y"),
            Err(JournalError::BadSeq { expected: 2, got: 3 })
        ));
        w.seal().unwrap();
        assert!(matches!(w.append(2, "y"), Err(JournalError::Sealed)));
    }

    #[test]
    fn torn_tail_truncates_to_prefix() {
        let path = tmpdir("torn").join("a.vjj");
        let mut w = JournalWriter::create(&path, "s", JournalConfig { sync_every: 1 }).unwrap();
        for i in 1..=4u64 {
            w.append(i, &format!("line {i}")).unwrap();
        }
        drop(w);
        let full = std::fs::read(&path).unwrap();
        // Tear the file mid-way through the last record.
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let rec = RecoveredJournal::read(&path).unwrap();
        assert_eq!(rec.last_seq(), 3);
        assert!(!rec.sealed);
        assert!(rec.truncated_bytes > 0);

        // Reopening truncates physically and appends continue at 4.
        let (mut w, rec) = JournalWriter::recover(&path, JournalConfig::default()).unwrap();
        assert_eq!(rec.last_seq(), 3);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), rec.valid_len);
        w.append(4, "line 4 again").unwrap();
        w.sync().unwrap();
        let rec = RecoveredJournal::read(&path).unwrap();
        assert_eq!(rec.last_seq(), 4);
        assert_eq!(rec.records[3].text, "line 4 again");
    }

    #[test]
    fn bit_flip_truncates_at_corruption() {
        let path = tmpdir("flip").join("a.vjj");
        let mut w = JournalWriter::create(&path, "s", JournalConfig { sync_every: 1 }).unwrap();
        for i in 1..=4u64 {
            w.append(i, &format!("payload number {i}")).unwrap();
        }
        drop(w);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a bit inside record 3's payload (find its text).
        let off = bytes
            .windows(b"number 3".len())
            .position(|w| w == b"number 3")
            .unwrap();
        bytes[off] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let rec = RecoveredJournal::read(&path).unwrap();
        assert_eq!(rec.last_seq(), 2, "corruption in record 3 ends the prefix");
        assert!(rec.truncated_bytes > 0);
    }

    #[test]
    fn bad_header_rejected() {
        let path = tmpdir("hdr").join("a.vjj");
        std::fs::write(&path, "not a journal\n").unwrap();
        assert!(matches!(
            RecoveredJournal::read(&path),
            Err(JournalError::BadHeader)
        ));
        std::fs::write(&path, "vivajournal\t999\t\"x\"\n").unwrap();
        assert!(matches!(
            RecoveredJournal::read(&path),
            Err(JournalError::BadHeader)
        ));
    }

    #[test]
    fn fsync_batching_counts() {
        let path = tmpdir("sync").join("a.vjj");
        let mut w = JournalWriter::create(&path, "s", JournalConfig { sync_every: 3 }).unwrap();
        let outcomes: Vec<bool> = (1..=7u64)
            .map(|i| w.append(i, "x").unwrap().synced)
            .collect();
        assert_eq!(outcomes, vec![false, false, true, false, false, true, false]);
    }

    #[test]
    fn garbage_after_seal_ignored() {
        let path = tmpdir("postseal").join("a.vjj");
        let mut w = JournalWriter::create(&path, "s", JournalConfig { sync_every: 1 }).unwrap();
        w.append(1, "x").unwrap();
        w.seal().unwrap();
        drop(w);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"trailing garbage after the seal");
        std::fs::write(&path, &bytes).unwrap();
        let rec = RecoveredJournal::read(&path).unwrap();
        assert!(rec.sealed);
        assert_eq!(rec.last_seq(), 1);
        assert!(rec.truncated_bytes > 0);
    }
}
