//! Columnar (structure-of-arrays) event storage.
//!
//! At 100k+ hosts and 10M+ events, a `HashMap<(ContainerId, MetricId),
//! Signal>` pays twice: per-entry hashing overhead on every insert, and
//! pointer-chasing iteration when the aggregation index streams all
//! signals of one metric. This module replaces both sides:
//!
//! * [`ColumnStore`] is the *ingest* form — four parallel columns
//!   (container ids, metric ids, times, values) appended to in arrival
//!   order. One event costs exactly 24 bytes (`u32 + u32 + f64 + f64`),
//!   roughly half of the row-of-structs [`crate::Event`] baseline, and
//!   appends are branch-light `Vec` pushes validated through a small
//!   per-pair cursor table.
//! * [`SignalTable`] is the *query* form — pair keys sorted
//!   metric-major in one `Vec`, signals in a parallel `Vec`, so a
//!   single-pair lookup is a binary search and "all signals of metric
//!   m" (the aggregation-index build scan) is one contiguous slice
//!   walk in container-id order, with no hashing and no sort.
//!
//! [`ColumnStore::into_table`] converts between the two with a
//! counting pass plus one streaming replay through [`Signal::push`], so
//! the resulting signals are *bit-identical* to what pushing each event
//! into a per-pair `Signal` directly would have produced — including
//! the overwrite-at-equal-time and running-prefix-integral semantics.
//! Validation happens at append time with the exact check order of
//! [`Signal::push`] (time finite, value finite, monotonic per pair), so
//! the replay in `into_table` cannot fail and error surfaces observed
//! by loaders are unchanged.

use std::collections::HashMap;

use crate::container::ContainerId;
use crate::error::TraceError;
use crate::metric::MetricId;
use crate::signal::Signal;

/// Per-pair ingest cursor: enough state to validate the next append and
/// to serve read-your-writes queries (`add_variable`'s "current value")
/// without materializing a `Signal`.
#[derive(Debug, Clone, Copy)]
struct PairCursor {
    last_t: f64,
    last_v: f64,
    count: usize,
}

/// Append-only SoA event log for variable samples.
///
/// # Example
///
/// ```
/// use viva_trace::columns::ColumnStore;
/// use viva_trace::{ContainerId, MetricId};
///
/// let c = ContainerId::from_index(1);
/// let m = MetricId::from_index(0);
/// let mut store = ColumnStore::new();
/// store.append(c, m, 0.0, 100.0)?;
/// store.append(c, m, 5.0, 50.0)?;
/// let table = store.into_table();
/// assert_eq!(table.get(c, m).unwrap().integrate(0.0, 10.0), 750.0);
/// # Ok::<(), viva_trace::TraceError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct ColumnStore {
    containers: Vec<ContainerId>,
    metrics: Vec<MetricId>,
    times: Vec<f64>,
    values: Vec<f64>,
    cursors: HashMap<(ContainerId, MetricId), PairCursor>,
}

impl ColumnStore {
    /// Creates an empty store.
    pub fn new() -> ColumnStore {
        ColumnStore::default()
    }

    /// Number of appended events (overwrites at equal time included).
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether no event was ever appended.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Number of distinct `(container, metric)` pairs seen.
    pub fn pair_count(&self) -> usize {
        self.cursors.len()
    }

    /// Bytes held by the four event columns — the columnar counterpart
    /// of `events * size_of::<Event>()` for the scale bench's memory
    /// gate. Excludes the per-pair cursor table (proportional to pair
    /// count, not event count) and `Vec` growth slack.
    pub fn approx_bytes(&self) -> usize {
        self.times.len()
            * (std::mem::size_of::<ContainerId>()
                + std::mem::size_of::<MetricId>()
                + 2 * std::mem::size_of::<f64>())
    }

    /// The `(time, value)` of the pair's latest append, if any — what
    /// `Signal::last_time` / last value would report after a replay.
    pub fn last(&self, container: ContainerId, metric: MetricId) -> Option<(f64, f64)> {
        self.cursors
            .get(&(container, metric))
            .map(|cur| (cur.last_t, cur.last_v))
    }

    /// Appends one sample, validating exactly as [`Signal::push`]
    /// would: time finite, then value finite, then per-pair monotonic.
    /// Appending at the pair's exact last time is the overwrite case —
    /// the row is logged and the replay in [`ColumnStore::into_table`]
    /// reproduces the overwrite.
    ///
    /// # Errors
    ///
    /// [`TraceError::NotFinite`] / [`TraceError::NonMonotonicTime`],
    /// with the same payloads `Signal::push` reports.
    pub fn append(
        &mut self,
        container: ContainerId,
        metric: MetricId,
        t: f64,
        value: f64,
    ) -> Result<(), TraceError> {
        if !t.is_finite() {
            return Err(TraceError::NotFinite { value: t });
        }
        if !value.is_finite() {
            return Err(TraceError::NotFinite { value });
        }
        match self.cursors.entry((container, metric)) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let cur = e.get_mut();
                if t < cur.last_t {
                    return Err(TraceError::NonMonotonicTime { time: t, last: cur.last_t });
                }
                cur.last_t = t;
                cur.last_v = value;
                cur.count += 1;
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(PairCursor { last_t: t, last_v: value, count: 1 });
            }
        }
        self.containers.push(container);
        self.metrics.push(metric);
        self.times.push(t);
        self.values.push(value);
        Ok(())
    }

    /// Converts the arrival-order log into the sorted query form.
    ///
    /// One counting pass sizes every signal exactly, then one streaming
    /// scan replays the columns through [`Signal::push`] in arrival
    /// order per pair — bit-identical to having pushed into per-pair
    /// signals directly.
    pub fn into_table(self) -> SignalTable {
        let mut pairs: Vec<(MetricId, ContainerId)> =
            self.cursors.keys().map(|&(c, m)| (m, c)).collect();
        pairs.sort_unstable();
        let slots: HashMap<(ContainerId, MetricId), u32> = pairs
            .iter()
            .enumerate()
            .map(|(i, &(m, c))| ((c, m), i as u32))
            .collect();
        let mut signals: Vec<Signal> = pairs
            .iter()
            .map(|&(m, c)| {
                let mut s = Signal::new();
                s.reserve(self.cursors[&(c, m)].count);
                s
            })
            .collect();
        for i in 0..self.times.len() {
            let slot = slots[&(self.containers[i], self.metrics[i])] as usize;
            signals[slot]
                .push(self.times[i], self.values[i])
                .expect("columns validated on append");
        }
        SignalTable { pairs, signals }
    }
}

/// Sorted pair-table of signals: the immutable query form of the
/// columnar store, owned by [`crate::Trace`].
///
/// Keys are `(metric, container)` in one sorted `Vec` with signals in a
/// parallel `Vec`: point lookups are a binary search, and all carriers
/// of one metric are a contiguous slice in ascending container order —
/// the exact enumeration the aggregation index streams, now without a
/// filter-the-whole-map-and-sort pass.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SignalTable {
    /// Metric-major sorted keys.
    pairs: Vec<(MetricId, ContainerId)>,
    /// `signals[i]` belongs to `pairs[i]`.
    signals: Vec<Signal>,
}

impl SignalTable {
    /// Number of stored signals.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the table holds no signal at all.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The signal of `(container, metric)`, if present.
    pub fn get(&self, container: ContainerId, metric: MetricId) -> Option<&Signal> {
        self.pairs
            .binary_search(&(metric, container))
            .ok()
            .map(|i| &self.signals[i])
    }

    /// Mutable access to an existing pair's signal.
    pub fn get_mut(&mut self, container: ContainerId, metric: MetricId) -> Option<&mut Signal> {
        self.pairs
            .binary_search(&(metric, container))
            .ok()
            .map(|i| &mut self.signals[i])
    }

    /// The pair's signal, inserting an empty one at its sorted slot if
    /// absent. Live appends of brand-new pairs pay an `O(n)` `Vec`
    /// insert here — rare by construction (a pair is new once, then
    /// streams through the in-place fast path forever).
    pub fn get_or_insert(&mut self, container: ContainerId, metric: MetricId) -> &mut Signal {
        match self.pairs.binary_search(&(metric, container)) {
            Ok(i) => &mut self.signals[i],
            Err(i) => {
                self.pairs.insert(i, (metric, container));
                self.signals.insert(i, Signal::new());
                &mut self.signals[i]
            }
        }
    }

    /// Iterates `(container, metric, signal)` in deterministic
    /// metric-major, then container-id, order.
    pub fn iter(&self) -> impl Iterator<Item = (ContainerId, MetricId, &Signal)> {
        self.pairs
            .iter()
            .zip(&self.signals)
            .map(|(&(m, c), s)| (c, m, s))
    }

    /// Iterates all signals without their keys.
    pub fn signals(&self) -> impl Iterator<Item = &Signal> {
        self.signals.iter()
    }

    /// All carriers of `metric` as a contiguous ascending-container
    /// walk — the aggregation-index build scan.
    pub fn for_metric(
        &self,
        metric: MetricId,
    ) -> impl Iterator<Item = (ContainerId, &Signal)> {
        let lo = self.pairs.partition_point(|&(m, _)| m < metric);
        let hi = self.pairs.partition_point(|&(m, _)| m <= metric);
        self.pairs[lo..hi]
            .iter()
            .zip(&self.signals[lo..hi])
            .map(|(&(_, c), s)| (c, s))
    }

    /// Bytes held by breakpoint storage (times + values + prefix
    /// integrals) plus the key column.
    pub fn approx_bytes(&self) -> usize {
        let keys = self.pairs.len()
            * (std::mem::size_of::<MetricId>() + std::mem::size_of::<ContainerId>());
        let breaks: usize = self.signals.iter().map(|s| s.len() * 3 * 8).sum();
        keys + breaks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u32) -> ContainerId {
        ContainerId::from_index(i as usize)
    }
    fn m(i: u32) -> MetricId {
        MetricId::from_index(i as usize)
    }

    #[test]
    fn replay_matches_direct_pushes() {
        // Interleaved pairs, including an equal-time overwrite.
        let events = [
            (1, 0, 0.0, 10.0),
            (2, 0, 0.0, 20.0),
            (1, 1, 0.5, 1.0),
            (1, 0, 2.0, 30.0),
            (1, 0, 2.0, 35.0), // overwrite
            (2, 0, 3.0, 0.0),
        ];
        let mut store = ColumnStore::new();
        let mut reference: HashMap<(ContainerId, MetricId), Signal> = HashMap::new();
        for &(ci, mi, t, v) in &events {
            store.append(c(ci), m(mi), t, v).unwrap();
            reference.entry((c(ci), m(mi))).or_default().push(t, v).unwrap();
        }
        assert_eq!(store.len(), events.len());
        let table = store.into_table();
        assert_eq!(table.len(), reference.len());
        for ((rc, rm), sig) in &reference {
            assert_eq!(table.get(*rc, *rm), Some(sig));
        }
    }

    #[test]
    fn append_validates_like_signal_push() {
        let mut store = ColumnStore::new();
        let mut sig = Signal::new();
        for (t, v) in [(f64::NAN, 1.0), (0.0, f64::INFINITY)] {
            // NaN payloads compare unequal; the rendered error carries
            // the same information and is what users see.
            assert_eq!(
                store.append(c(1), m(0), t, v).unwrap_err().to_string(),
                sig.push(t, v).unwrap_err().to_string()
            );
        }
        store.append(c(1), m(0), 5.0, 1.0).unwrap();
        sig.push(5.0, 1.0).unwrap();
        assert_eq!(
            store.append(c(1), m(0), 4.0, 1.0).unwrap_err(),
            sig.push(4.0, 1.0).unwrap_err()
        );
        // Rejected appends leave no partial row behind.
        assert_eq!(store.len(), 1);
        // Other pairs are independent timelines.
        store.append(c(2), m(0), 0.0, 1.0).unwrap();
    }

    #[test]
    fn last_tracks_overwrites() {
        let mut store = ColumnStore::new();
        assert_eq!(store.last(c(1), m(0)), None);
        store.append(c(1), m(0), 1.0, 10.0).unwrap();
        store.append(c(1), m(0), 1.0, 12.0).unwrap();
        assert_eq!(store.last(c(1), m(0)), Some((1.0, 12.0)));
    }

    #[test]
    fn table_order_is_metric_major() {
        let mut store = ColumnStore::new();
        store.append(c(2), m(1), 0.0, 1.0).unwrap();
        store.append(c(1), m(1), 0.0, 1.0).unwrap();
        store.append(c(9), m(0), 0.0, 1.0).unwrap();
        let table = store.into_table();
        let keys: Vec<(ContainerId, MetricId)> =
            table.iter().map(|(tc, tm, _)| (tc, tm)).collect();
        assert_eq!(keys, vec![(c(9), m(0)), (c(1), m(1)), (c(2), m(1))]);
        let carriers: Vec<ContainerId> = table.for_metric(m(1)).map(|(tc, _)| tc).collect();
        assert_eq!(carriers, vec![c(1), c(2)]);
        assert!(table.for_metric(m(7)).next().is_none());
    }

    #[test]
    fn get_or_insert_keeps_sorted_order() {
        let mut table = ColumnStore::new().into_table();
        table.get_or_insert(c(5), m(1)).push(0.0, 1.0).unwrap();
        table.get_or_insert(c(1), m(0)).push(0.0, 2.0).unwrap();
        table.get_or_insert(c(5), m(1)).push(1.0, 3.0).unwrap();
        assert_eq!(table.len(), 2);
        assert_eq!(table.get(c(5), m(1)).unwrap().len(), 2);
        let keys: Vec<(ContainerId, MetricId)> =
            table.iter().map(|(tc, tm, _)| (tc, tm)).collect();
        assert_eq!(keys, vec![(c(1), m(0)), (c(5), m(1))]);
    }

    #[test]
    fn bytes_accounting() {
        let mut store = ColumnStore::new();
        for i in 0..10 {
            store.append(c(1), m(0), i as f64, 1.0).unwrap();
        }
        assert_eq!(store.approx_bytes(), 10 * 24);
        let table = store.into_table();
        assert_eq!(table.approx_bytes(), 8 + 10 * 24);
    }
}
