//! The §5.2 case study: two non-cooperative master-worker applications
//! on a Grid'5000-scale platform, analyzed with multi-scale spatial
//! aggregation (host → cluster → site → grid) and time animation.
//!
//! Uses a 300-host platform by default so it runs quickly; pass
//! `--full` for the paper's 2170 hosts.
//!
//! ```sh
//! cargo run --release -p viva-examples --bin gridmw_analysis
//! ```

use viva::{AnalysisSession, Animation, Viewport};
use viva_agg::TimeSlice;
use viva_platform::generators::{self, Grid5000Config};
use viva_simflow::TracingConfig;
use viva_trace::ContainerKind;
use viva_workloads::{run_master_worker, AppSpec, MwConfig};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let platform = generators::grid5000(&Grid5000Config {
        total_hosts: if full { 2170 } else { 300 },
        ..Default::default()
    })
    .expect("valid platform");
    println!(
        "platform: {} hosts, {} clusters, {} sites",
        platform.hosts().len(),
        platform.clusters().len(),
        platform.sites().len()
    );

    let apps = vec![
        AppSpec {
            name: "app1".into(),
            master: platform.sites()[0]
                .clusters()
                .first()
                .map(|&c| platform.cluster(c).hosts()[0])
                .expect("site has hosts"),
            config: MwConfig {
                tasks: if full { 4000 } else { 800 },
                task_flops: 50_000.0,
                ..MwConfig::cpu_bound()
            },
        },
        AppSpec {
            name: "app2".into(),
            master: platform.sites()[1]
                .clusters()
                .first()
                .map(|&c| platform.cluster(c).hosts()[0])
                .expect("site has hosts"),
            config: MwConfig {
                tasks: if full { 3000 } else { 600 },
                task_flops: 20_000.0,
                ..MwConfig::network_bound()
            },
        },
    ];
    let run = run_master_worker(
        platform.clone(),
        &apps,
        Some(TracingConfig { record_messages: false, record_accounts: true }),
    );
    println!("makespan: {:.1} s", run.makespan);
    let trace = run.trace.expect("traced");

    let mut session =
        AnalysisSession::builder(trace).platform(&platform).build();
    session.set_time_slice(TimeSlice::new(run.makespan * 0.2, run.makespan * 0.6));

    // Walk the aggregation levels the way Fig. 8 does.
    for (label, depth) in [("site", 1u32), ("cluster", 2)] {
        session.collapse_at_depth(depth);
        session.relax(150);
        let view = session.view();
        println!(
            "\n{label} level: {} visible nodes (from {} leaf containers)",
            view.nodes.len(),
            session.trace().containers().len()
        );
        // Rank aggregated groups by utilization; the §6 indicators say
        // how uneven each group is inside.
        let mut groups: Vec<_> = view
            .nodes
            .iter()
            .filter(|n| n.members > 1)
            .collect();
        groups.sort_by(|a, b| b.fill_fraction.total_cmp(&a.fill_fraction));
        for g in groups.iter().take(5) {
            let stddev = session
                .aggregate("power_used", g.container)
                .map(|a| a.summary.std_dev())
                .unwrap_or(0.0);
            println!(
                "  {:<14} {} members, fill {:>3.0}%, member stddev {:.0} MFlop/s",
                g.label,
                g.members,
                g.fill_fraction * 100.0,
                stddev
            );
        }
    }

    // Per-application split at the site level (the paper's phenomena).
    let tree = session.trace().containers();
    let sites = tree.of_kind(ContainerKind::Site);
    println!("\nper-application compute share per site (fixed slice):");
    for site in sites {
        let name = tree.node(site).name().to_owned();
        let a1 = session.aggregate("power_used:app1", site).map_or(0.0, |a| a.integral);
        let a2 = session.aggregate("power_used:app2", site).map_or(0.0, |a| a.integral);
        let (a1, a2) = (a1.max(0.0), a2.max(0.0));
        if a1 + a2 > 0.0 {
            println!("  {name:<10} app1 {a1:>12.0}  app2 {a2:>12.0}  MFlop");
        }
    }

    // Fig. 9-style animation: four frames at the site level.
    session.collapse_at_depth(1);
    let frames = TimeSlice::new(0.0, run.makespan).split(4);
    let anim = Animation::capture(&mut session, &frames, 20);
    println!(
        "\nanimation: {} frames, max node drift between frames {:.2} layout units",
        anim.len(),
        anim.max_frame_displacement()
    );
    let svg = session.render(&Viewport::new(800.0, 600.0));
    std::fs::write("gridmw_sites.svg", &svg).expect("write svg");
    println!("wrote gridmw_sites.svg");
}
