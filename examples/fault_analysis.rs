//! End-to-end fault analysis: inject failures into a simulated
//! master-worker run, then *see* them in the visualization.
//!
//! The pipeline exercised here is the robustness story of the fault
//! subsystem:
//!
//! 1. build a platform and a seeded [`FaultPlan`] (crashes, a recovery,
//!    a lossy window);
//! 2. run the fault-tolerant master-worker on it — all tasks complete
//!    despite the failures, lost work is requeued;
//! 3. open the trace in an [`AnalysisSession`]: the tracer recorded
//!    availability as a first-class `available` signal, so crashed
//!    hosts surface as `availability < 1` on their view nodes and as a
//!    dashed red outline in the SVG;
//! 4. aggregate a cluster containing crashed hosts — the group's
//!    availability is the members' mean, so partial degradation is
//!    visible even fully collapsed;
//! 5. feed the session untrusted input — unknown ids, inverted slices —
//!    and get typed [`SessionError`]s back instead of panics.
//!
//! ```sh
//! cargo run -p viva-examples --bin fault_analysis
//! ```

use viva::{AnalysisSession, SessionError, Viewport};
use viva_platform::generators::{self, TwoClustersConfig};
use viva_simflow::{FaultPlan, TracingConfig};
use viva_trace::ContainerId;
use viva_workloads::{run_master_worker_with_faults, AppSpec, FtConfig, MwConfig, Scheduler};

fn main() {
    // 1. Platform + fault plan. The master lives on host 0 of adonis;
    // we crash three griffon workers mid-run (one recovers) and lose 2%
    // of messages for the first minute.
    let platform = generators::two_clusters(&TwoClustersConfig::default())
        .expect("valid platform");
    let griffon: Vec<_> = platform
        .hosts()
        .iter()
        .filter(|h| h.name().starts_with("griffon"))
        .map(|h| h.id())
        .collect();
    let plan = FaultPlan::new()
        .with_seed(7)
        .host_crash(10.0, griffon[0])
        .host_crash(12.0, griffon[1])
        .host_outage(14.0, 60.0, griffon[2])
        .message_loss(0.0, 60.0, 0.02);
    println!(
        "1. fault plan: {} events, seed {}",
        plan.events().len(),
        plan.seed()
    );

    // 2. Fault-tolerant run: heartbeats detect the dead workers, their
    // in-flight tasks are requeued to the survivors.
    let app = AppSpec {
        name: "app1".into(),
        master: platform.hosts()[0].id(),
        config: MwConfig {
            tasks: 60,
            task_flops: 20_000.0,
            scheduler: Scheduler::Fifo,
            fault_tolerance: Some(FtConfig::default()),
            ..MwConfig::cpu_bound()
        },
    };
    let run = run_master_worker_with_faults(
        platform.clone(),
        std::slice::from_ref(&app),
        Some(TracingConfig { record_messages: false, record_accounts: true }),
        Some(&plan),
    )
    .expect("plan validates");
    println!(
        "2. fault-tolerant run: {}/{} tasks completed, {} shipped (requeues included), makespan {:.1} s",
        run.tasks_completed[0], 60, run.tasks_shipped[0], run.makespan
    );

    // 3. Open the trace; crashed hosts carry availability < 1.
    let trace = run.trace.expect("traced run");
    let mut session =
        AnalysisSession::builder(trace).platform(&platform).build();
    session.try_set_time_slice(0.0, run.makespan).expect("finite bounds");
    session.relax(500);
    let view = session.view();
    let degraded: Vec<_> = view
        .nodes
        .iter()
        .filter(|n| n.is_degraded())
        .map(|n| format!("{} ({:.0}% up)", n.label, n.availability * 100.0))
        .collect();
    println!("3. degraded resources over the whole run: {}", degraded.join(", "));

    // 4. Collapse griffon: the aggregate inherits the members' mean
    // availability, so the failure stays visible at cluster scale.
    let tree = session.trace().containers();
    let cluster = tree.by_name("griffon").expect("cluster container").id();
    session.collapse(cluster).expect("known group");
    let agg = session.view().node(cluster).expect("aggregate node").clone();
    println!(
        "4. collapsed griffon: {} members, aggregate availability {:.2}",
        agg.members, agg.availability
    );
    assert!(agg.is_degraded(), "partial failure survives aggregation");

    let svg = session.render(&Viewport::new(800.0, 600.0));
    assert!(svg.contains("data-availability"), "degradation reaches the SVG");
    std::fs::write("fault_analysis.svg", &svg).expect("write svg");
    println!("   wrote fault_analysis.svg (dashed red = was down in the slice)");

    // 5. Untrusted input degrades gracefully instead of panicking.
    let bogus = ContainerId::from_index(9999);
    match session.collapse(bogus) {
        Err(SessionError::UnknownContainer(c)) => {
            println!("5. collapse({c:?}) -> UnknownContainer, session intact");
        }
        other => panic!("expected UnknownContainer, got {other:?}"),
    }
    match session.try_set_time_slice(50.0, 10.0) {
        Err(SessionError::InvalidTimeSlice(e)) => {
            println!("   try_set_time_slice(50, 10) -> {e}");
        }
        other => panic!("expected InvalidTimeSlice, got {other:?}"),
    }
    // Overshooting bounds is clamped, not rejected: a cursor dragged
    // past the end of the trace is routine UI input.
    let clamped = session
        .try_set_time_slice(0.0, run.makespan * 10.0)
        .expect("clamped");
    println!("   slice dragged past the end clamps to {clamped}");
}
