//! Detecting resource-usage anomalies with multi-scale aggregation —
//! the workflow of the authors' companion paper (reference \[33\]:
//! "Detection and Analysis of Resource Usage Anomalies in Large
//! Distributed Systems through Multi-scale Visualization").
//!
//! We inject two anomalies into a healthy cluster workload — a host
//! whose available power silently halves (external load) and a link
//! that degrades — then find both by scanning time-slices for groups
//! whose utilization statistics shift.
//!
//! ```sh
//! cargo run --release -p viva-examples --bin anomaly_detection
//! ```

use viva::{AnalysisSession, Viewport};
use viva_agg::{Summary, TimeSlice};
use viva_platform::generators;
use viva_simflow::{Actor, ActorId, Ctx, Payload, Simulation, Tag, TracingConfig};
use viva_trace::timeline;

/// Repeatedly computes fixed-size jobs and reports to a collector.
struct SteadyWorker {
    collector: ActorId,
    jobs: usize,
}

impl Actor for SteadyWorker {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.execute(500.0, Tag(0));
    }
    fn on_compute_done(&mut self, _tag: Tag, ctx: &mut Ctx<'_>) {
        ctx.send(self.collector, 4.0, Box::new(()), Tag(1));
        self.jobs -= 1;
        if self.jobs > 0 {
            ctx.execute(500.0, Tag(0));
        }
    }
}

struct Collector;
impl Actor for Collector {
    fn on_message(&mut self, _from: ActorId, _p: Payload, _ctx: &mut Ctx<'_>) {}
}

fn main() {
    let platform = generators::star(12, 1000.0, 1000.0).expect("valid platform");
    let mut sim = Simulation::new(platform.clone());
    sim.enable_tracing(TracingConfig::default());
    let collector = sim.spawn(platform.hosts()[0].id(), Box::new(Collector));
    for h in &platform.hosts()[1..] {
        sim.spawn(h.id(), Box::new(SteadyWorker { collector, jobs: 40 }));
    }
    // Anomaly 1: star-5 loses half its power at t = 8 (external load).
    let victim = platform.host_by_name("star-5").unwrap().id();
    sim.schedule_host_power(8.0, victim, 500.0);
    // Anomaly 2: star-9's uplink degrades to 10% at t = 12.
    let bad_link = platform.link_by_name("star-9-up").unwrap().id();
    sim.schedule_link_bandwidth(12.0, bad_link, 100.0);

    let makespan = sim.run();
    let trace = sim.into_trace().expect("tracing enabled");
    println!("simulated {makespan:.1} s on 12 hosts; scanning for anomalies...\n");

    // Scan: compare each host's job *rate* (computed MFlop per second)
    // across consecutive time-slices; a sustained drop flags the host.
    let used = trace.metric_id("power_used").unwrap();
    let slices = TimeSlice::new(0.0, makespan).split(6);
    println!("host compute rate per slice (MFlop/s), flagged when < 60% of its peak:");
    let mut flagged = Vec::new();
    for h in trace.containers().of_kind(viva_trace::ContainerKind::Host) {
        let name = trace.containers().node(h).name().to_owned();
        let rates: Vec<f64> = slices
            .iter()
            .map(|s| trace.integrate(h, used, s.start(), s.end()) / s.width())
            .collect();
        let peak = rates.iter().copied().fold(0.0f64, f64::max);
        let marks: Vec<String> = rates
            .iter()
            .map(|&r| {
                if peak > 0.0 && r < 0.6 * peak && r > 0.0 {
                    format!("[{r:>5.0}]")
                } else {
                    format!(" {r:>5.0} ")
                }
            })
            .collect();
        let anomalous = rates
            .iter()
            .skip(1)
            .any(|&r| peak > 0.0 && r > 0.0 && r < 0.6 * peak);
        if anomalous {
            flagged.push(name.clone());
        }
        println!("  {name:<10} {}", marks.join(" "));
    }
    println!("\nflagged hosts: {flagged:?}");
    assert!(
        flagged.contains(&"star-5".to_owned()),
        "the throttled host must be flagged"
    );

    // Cross-check with the statistical indicators of §6: the member
    // variance of the whole cluster jumps when the anomaly starts.
    let cluster = trace.containers().by_name("star").unwrap().id();
    println!("\ncluster-level fill statistics per slice (§6 indicators):");
    for s in &slices {
        let m = trace.metric_id("power_used").unwrap();
        let vals: Vec<f64> = trace
            .containers()
            .leaves_under(cluster)
            .into_iter()
            .filter_map(|c| trace.signal(c, m).map(|sig| sig.mean(s.start(), s.end())))
            .collect();
        let summary = Summary::of(vals);
        println!(
            "  [{:>5.1}, {:>5.1})  mean {:>6.1}  stddev {:>6.1}  cv {:.2}",
            s.start(),
            s.end(),
            summary.mean,
            summary.std_dev(),
            summary.cv()
        );
    }

    // The link anomaly shows in the top-consumers ranking reversing.
    let bw_used = trace.metric_id("bandwidth_used").unwrap();
    let early = timeline::top_consumers(&trace, bw_used, 0.0, 12.0, 3);
    let late = timeline::top_consumers(&trace, bw_used, 12.0, makespan, 3);
    let name = |c| trace.containers().node(c).name().to_owned();
    println!(
        "\ntop network consumers before t=12: {:?}",
        early.iter().map(|&(c, _)| name(c)).collect::<Vec<_>>()
    );
    println!(
        "top network consumers after  t=12: {:?}",
        late.iter().map(|&(c, _)| name(c)).collect::<Vec<_>>()
    );

    // Finally, the visual confirmation: a session over the anomaly
    // window shows star-5 with full fill (saturated at reduced
    // capacity) and smaller size (capacity is the node size!).
    let mut session =
        AnalysisSession::builder(trace).platform(&platform).build();
    session.set_time_slice(TimeSlice::new(9.0, 11.0));
    session.relax(300);
    let view = session.view();
    let sick = view.node_by_label("star-5").unwrap();
    let healthy = view.node_by_label("star-4").unwrap();
    println!(
        "\nin the topology view over [9, 11): star-5 size {:.0} vs star-4 size {:.0}",
        sick.size_value, healthy.size_value
    );
    assert!(sick.size_value < healthy.size_value * 0.6);
    std::fs::write("anomaly.svg", session.render(&Viewport::new(640.0, 480.0))).expect("write svg");
    println!("wrote anomaly.svg");
}
