//! The §5.1 case study end to end: run NAS-DT class A (White Hole) under
//! both deployments, find the saturated inter-cluster links with the
//! topology view, and quantify the locality win.
//!
//! ```sh
//! cargo run --release -p viva-examples --bin nasdt_analysis
//! ```

use viva::AnalysisSession;
use viva_agg::TimeSlice;
use viva_platform::generators;
use viva_simflow::TracingConfig;
use viva_trace::ContainerKind;
use viva_workloads::{run_dt, Deployment, DtConfig};

fn main() {
    let platform = generators::two_clusters(&Default::default()).expect("valid platform");
    let cfg = DtConfig::default();
    let tracing = TracingConfig { record_messages: false, record_accounts: false };

    println!("running NAS-DT class A White-Hole on 2x11 hosts...");
    let seq = run_dt(platform.clone(), &cfg, Deployment::Sequential, Some(tracing.clone()));
    println!("  sequential hostfile: {:.3} s", seq.makespan);

    // Analyst workflow: open the trace, look at the whole run, rank
    // links by utilization.
    let trace = seq.trace.expect("traced");
    let mut session =
        AnalysisSession::builder(trace).platform(&platform).build();
    session.relax(400);
    let view = session.view();
    let mut links: Vec<_> = view
        .nodes
        .iter()
        .filter(|n| n.kind == ContainerKind::Link)
        .collect();
    links.sort_by(|a, b| b.fill_fraction.total_cmp(&a.fill_fraction));
    println!("  most utilized links over the whole run:");
    for l in links.iter().take(4) {
        println!("    {:<12} {:>3.0}%", l.label, l.fill_fraction * 100.0);
    }
    let saturated: Vec<&str> = links.iter().take(2).map(|l| l.label.as_str()).collect();
    assert!(
        saturated.iter().all(|n| n.ends_with("-bb")),
        "expected the inter-cluster links on top, got {saturated:?}"
    );
    println!("  -> the two inter-cluster links are the bottleneck (paper Fig. 6)");

    // Check the hypothesis on a narrower slice near the end.
    let end_slice = TimeSlice::new(seq.makespan * 0.8, seq.makespan);
    session.set_time_slice(end_slice);
    let late = session.view();
    let bb = late.node_by_label("adonis-bb").expect("backbone node");
    println!(
        "  backbone utilization in the last fifth of the run: {:.0}%",
        bb.fill_fraction * 100.0
    );

    // Redeploy for locality, as the analyst would after seeing Fig. 6.
    let loc = run_dt(platform.clone(), &cfg, Deployment::Locality, Some(tracing));
    println!("  locality hostfile:   {:.3} s", loc.makespan);
    println!(
        "  improvement: {:.1}% (the paper reports ~20%)",
        100.0 * (1.0 - loc.makespan / seq.makespan)
    );

    let trace = loc.trace.expect("traced");
    let mut session =
        AnalysisSession::builder(trace).platform(&platform).build();
    session.relax(400);
    let view = session.view();
    let bb = view.node_by_label("adonis-bb").expect("backbone node");
    println!(
        "  backbone utilization after redeployment: {:.0}% (was ~97%)",
        bb.fill_fraction * 100.0
    );
}
