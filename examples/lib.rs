//! Runnable examples for the `viva` workspace; see the `[[bin]]`
//! targets (`quickstart`, `nasdt_analysis`, `gridmw_analysis`,
//! `interactive_session`).
