//! A scripted tour of the interactive features of §4: collapsing and
//! expanding groups (with the smooth layout morphs of §3.3), dragging
//! and pinning nodes, the charge/spring/damping sliders, per-type size
//! sliders, and dynamic mapping changes.
//!
//! Every gesture a GUI would offer is an API call here; the printed
//! output shows its observable effect. The same tour is also emitted
//! as a `viva-server` wire-protocol script
//! (`interactive_session.script`), so the identical session can be
//! replayed headlessly:
//!
//! ```sh
//! cargo run -p viva-examples --bin interactive_session
//! cargo run -p viva-server --bin viva-server-client -- interactive_session.script
//! ```
//!
//! ```sh
//! cargo run -p viva-examples --bin interactive_session
//! ```

use viva::mapping::{NodeMapping, Shape};
use viva::{AnalysisSession, Theme, Viewport};
use viva_layout::Vec2;
use viva_platform::generators;
use viva_server::protocol::Command;
use viva_simflow::TracingConfig;
use viva_trace::{ContainerKind, RecoveryMode};
use viva_workloads::{run_dt, Deployment, DtConfig};

/// Session name used in the emitted protocol script.
const TOUR: &str = "tour";

fn main() {
    // Material: a traced DT run on the two-cluster platform.
    let platform = generators::two_clusters(&Default::default()).expect("valid platform");
    let run = run_dt(
        platform.clone(),
        &DtConfig { rounds: 5, ..Default::default() },
        Deployment::Sequential,
        Some(TracingConfig { record_messages: false, record_accounts: false }),
    );
    let trace = run.trace.expect("traced");
    // The protocol twin of this tour: every gesture below that has a
    // wire equivalent is also appended here and written out as an
    // NDJSON script at the end.
    let mut script: Vec<Command> = vec![Command::LoadTrace {
        session: TOUR.into(),
        mode: RecoveryMode::Strict,
        text: viva_trace::export::to_csv(&trace),
        trace: None,
    }];
    let mut session =
        AnalysisSession::builder(trace).platform(&platform).build();

    println!("1. initial layout ({} nodes)...", session.view().nodes.len());
    let steps = session.relax(2000);
    script.push(Command::Relax { session: TOUR.into(), steps: 2000 });
    println!("   converged in {steps} steps");

    // 2. Aggregate the adonis cluster; the aggregate appears at its
    // members' barycenter (smooth morph).
    let adonis = session
        .trace()
        .containers()
        .by_name("adonis")
        .expect("cluster container")
        .id();
    let members_before: Vec<Vec2> = session
        .view()
        .nodes
        .iter()
        .filter(|n| {
            session.trace().containers().path(n.container).starts_with("grenoble/adonis")
        })
        .map(|n| n.position)
        .collect();
    session.collapse(adonis).unwrap();
    script.push(Command::Collapse { session: TOUR.into(), container: "adonis".into() });
    let agg_pos = session
        .view()
        .node(adonis)
        .expect("aggregate node")
        .position;
    let centroid = members_before
        .iter()
        .fold(Vec2::default(), |acc, &p| acc + p)
        / members_before.len() as f64;
    println!(
        "2. collapsed 'adonis' ({} members) -> aggregate spawned {:.1} units from their centroid",
        members_before.len(),
        agg_pos.distance(centroid)
    );

    // 3. Drag the aggregate to the west and pin it (the analyst's
    // geographic convention, §4.2).
    session.drag(adonis, Vec2::new(-120.0, 0.0)).unwrap();
    session.relax(400);
    script.push(Command::Drag {
        session: TOUR.into(),
        container: "adonis".into(),
        x: -120.0,
        y: 0.0,
    });
    script.push(Command::Relax { session: TOUR.into(), steps: 400 });
    println!(
        "3. dragged + pinned 'adonis' at {}; neighbours followed",
        session.view().node(adonis).unwrap().position
    );

    // 4. Play with the sliders. The protocol's `set_forces` takes
    // absolute values, so each relative nudge is recorded as the value
    // it lands on.
    let set_repulsion = |session: &mut AnalysisSession,
                             script: &mut Vec<Command>,
                             scale: f64| {
        session.layout_config_mut().repulsion *= scale;
        script.push(Command::SetForces {
            session: TOUR.into(),
            repulsion: Some(session.layout().config().repulsion),
            spring: None,
            damping: None,
        });
    };
    set_repulsion(&mut session, &mut script, 4.0);
    session.relax(400);
    script.push(Command::Relax { session: TOUR.into(), steps: 400 });
    let spread = session.layout().bounds().map(|(lo, hi)| (hi - lo).length()).unwrap();
    set_repulsion(&mut session, &mut script, 1.0 / 16.0);
    session.relax(600);
    script.push(Command::Relax { session: TOUR.into(), steps: 600 });
    let packed = session.layout().bounds().map(|(lo, hi)| (hi - lo).length()).unwrap();
    println!("4. charge slider: extent {spread:.0} at high charge, {packed:.0} at low charge");
    set_repulsion(&mut session, &mut script, 4.0); // restore

    // 5. Per-type size sliders (§4.1): make links twice as prominent.
    session.scaling_mut().set_slider("bandwidth", 2.0);
    script.push(Command::SetScaling {
        session: TOUR.into(),
        group: "bandwidth".into(),
        factor: 2.0,
    });
    let view = session.view();
    let link_px = view
        .nodes
        .iter()
        .find(|n| n.kind == ContainerKind::Link)
        .map(|n| n.px_size)
        .unwrap_or(0.0);
    println!("5. bandwidth slider 2.0x -> biggest link drawn at {link_px:.0}px");

    // 6. Dynamic mapping change (§3.1): draw hosts as circles sized by
    // *utilization* instead of capacity.
    session.mapping_mut().set_rule(
        ContainerKind::Host,
        NodeMapping {
            shape: Shape::Circle,
            size_metric: Some("power_used".into()),
            fill_metric: None,
        },
    );
    let view = session.view();
    let host = view
        .nodes
        .iter()
        .find(|n| n.kind == ContainerKind::Host)
        .expect("a host is visible");
    println!(
        "6. remapped hosts: '{}' is now a {} sized by power_used ({:.1})",
        host.label,
        host.shape.label(),
        host.size_value
    );

    // 7. Expand back; members reappear around the pinned aggregate.
    session.expand(adonis).unwrap();
    session.relax(300);
    script.push(Command::Expand { session: TOUR.into(), container: "adonis".into() });
    script.push(Command::Relax { session: TOUR.into(), steps: 300 });
    println!(
        "7. expanded 'adonis' back to {} visible nodes",
        session.view().nodes.len()
    );

    let svg = session.render(&Viewport::new(800.0, 600.0));
    std::fs::write("interactive_session.svg", &svg).expect("write svg");
    println!("wrote interactive_session.svg");

    // The wire twin ends with the same render. Step 6's mapping change
    // has no protocol command yet, so the replayed frame shows hosts
    // with the default mapping — everything else matches.
    script.push(Command::Render {
        session: TOUR.into(),
        width: 800.0,
        height: 600.0,
        theme: Theme::Light,
        labels: false,
        zoom: None,
        pan_x: None,
        pan_y: None,
    });
    let mut ndjson = String::new();
    for cmd in &script {
        ndjson.push_str(&cmd.encode());
        ndjson.push('\n');
    }
    std::fs::write("interactive_session.script", &ndjson).expect("write script");
    println!(
        "wrote interactive_session.script ({} protocol commands; replay with \
         `cargo run -p viva-server --bin viva-server-client -- interactive_session.script`)",
        script.len()
    );
}
