//! Quickstart: simulate a tiny platform, record a trace, and explore it
//! through a topology-based analysis session.
//!
//! ```sh
//! cargo run -p viva-examples --bin quickstart
//! ```

use viva::{AnalysisSession, Viewport};
use viva_agg::TimeSlice;
use viva_platform::generators;
use viva_simflow::{Actor, ActorId, Ctx, Payload, Simulation, Tag, TracingConfig};

/// Streams `count` messages to a peer, computing between sends.
struct Streamer {
    peer: ActorId,
    count: usize,
}

impl Actor for Streamer {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.send(self.peer, 400.0, Box::new(()), Tag(0));
    }

    fn on_send_done(&mut self, _tag: Tag, ctx: &mut Ctx<'_>) {
        self.count -= 1;
        if self.count > 0 {
            ctx.execute(50.0, Tag(1));
        }
    }

    fn on_compute_done(&mut self, _tag: Tag, ctx: &mut Ctx<'_>) {
        ctx.send(self.peer, 400.0, Box::new(()), Tag(0));
    }
}

/// Computes on everything it receives.
struct Cruncher;

impl Actor for Cruncher {
    fn on_message(&mut self, _from: ActorId, _payload: Payload, ctx: &mut Ctx<'_>) {
        ctx.execute(200.0, Tag(0));
    }
}

fn main() {
    // 1. A platform: one 8-host cluster behind a switch.
    let platform = generators::star(8, 1000.0, 1000.0).expect("valid platform");

    // 2. A workload: three streamers feeding one cruncher.
    let mut sim = Simulation::new(platform.clone());
    sim.enable_tracing(TracingConfig::default());
    let cruncher = sim.spawn(platform.hosts()[0].id(), Box::new(Cruncher));
    for i in 1..=3 {
        sim.spawn(
            platform.hosts()[i].id(),
            Box::new(Streamer { peer: cruncher, count: 5 }),
        );
    }
    let makespan = sim.run();
    let trace = sim.into_trace().expect("tracing was enabled");
    println!("simulated {makespan:.3} s, {} signals recorded", trace.signal_count());

    // 3. Analysis: topology view over the whole run.
    let mut session = AnalysisSession::builder(trace).platform(&platform).build();
    session.relax(500);
    let view = session.view();
    println!("view: {} nodes, {} edges", view.nodes.len(), view.edges.len());
    for node in &view.nodes {
        println!(
            "  {:<10} {:<7} size {:>7.1} fill {:>4.0}%",
            node.label,
            node.shape.label(),
            node.size_value,
            node.fill_fraction * 100.0
        );
    }

    // 4. Zoom the time-slice onto the first half of the run.
    session.set_time_slice(TimeSlice::new(0.0, makespan / 2.0));
    let early = session.view();
    let busy = early.node_by_label("star-1").expect("cruncher host");
    println!(
        "cruncher host utilization in the first half: {:.0}%",
        busy.fill_fraction * 100.0
    );

    // 5. Render.
    let svg = session.render(&Viewport::new(640.0, 480.0));
    std::fs::write("quickstart.svg", &svg).expect("write svg");
    println!("wrote quickstart.svg ({} bytes)", svg.len());
}
