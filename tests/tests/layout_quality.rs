//! Layout quality across the visualization pipeline: the §2.3 drawing
//! measures on real session layouts, and the smoothness claims of §3.3.

use viva::{AnalysisSession, SessionConfig};
use viva_layout::metrics;
use viva_platform::generators;
use viva_simflow::TracingConfig;
use viva_workloads::{run_dt, Deployment, DtConfig};

fn dt_session() -> (viva_platform::Platform, AnalysisSession) {
    let p = generators::two_clusters(&Default::default()).unwrap();
    let run = run_dt(
        p.clone(),
        &DtConfig { rounds: 3, ..Default::default() },
        Deployment::Sequential,
        Some(TracingConfig { record_messages: false, record_accounts: false }),
    );
    let session =
        AnalysisSession::builder(run.trace.unwrap()).platform(&p).build();
    (p, session)
}

#[test]
fn relaxation_improves_drawing_quality() {
    let (_, mut session) = dt_session();
    let before_stress = metrics::stress(session.layout());
    let before_crossings = metrics::crossing_count(session.layout());
    session.relax(2500);
    let after_stress = metrics::stress(session.layout());
    let after_crossings = metrics::crossing_count(session.layout());
    assert!(
        after_stress < before_stress,
        "stress should drop: {before_stress} -> {after_stress}"
    );
    assert!(
        after_crossings <= before_crossings,
        "crossings should not increase: {before_crossings} -> {after_crossings}"
    );
}

#[test]
fn cluster_view_is_a_clean_drawing() {
    // The two-cluster platform collapsed to cluster level is a tiny
    // graph (2 aggregates + 2 backbone links + core router); a relaxed
    // force layout must draw it planar.
    let (_, mut session) = dt_session();
    session.collapse_at_depth(2);
    session.relax(2000);
    assert_eq!(metrics::crossing_count(session.layout()), 0);
    assert!(metrics::bounding_area(session.layout()) > 0.0);
}

#[test]
fn collapse_is_smoother_than_fresh_layout() {
    // §3.3's motivation: morphing beats recomputation. Collapsing a
    // cluster must move the surviving nodes much less than laying the
    // aggregated graph out from scratch with a different seed.
    let (p, mut session) = dt_session();
    session.relax(1500);
    let before: std::collections::HashMap<_, _> = session
        .view()
        .nodes
        .iter()
        .map(|n| (n.container, n.position))
        .collect();
    let adonis = session.trace().containers().by_name("adonis").unwrap().id();
    session.collapse(adonis).unwrap();
    session.relax(30);
    let mut max_drift = 0.0f64;
    for n in &session.view().nodes {
        if let Some(&p0) = before.get(&n.container) {
            max_drift = max_drift.max(p0.distance(n.position));
        }
    }
    // A fresh layout of the same trace with another seed puts nodes in
    // totally different places.
    let mut fresh = AnalysisSession::builder(session.trace().clone())
        .config(SessionConfig { seed: 999, ..Default::default() })
        .platform(&p)
        .build();
    fresh.collapse(adonis).unwrap();
    fresh.relax(30);
    let mut fresh_drift = 0.0f64;
    for n in &fresh.view().nodes {
        if let Some(&p0) = before.get(&n.container) {
            fresh_drift = fresh_drift.max(p0.distance(n.position));
        }
    }
    assert!(
        max_drift < fresh_drift,
        "morph drift {max_drift} should beat fresh-layout drift {fresh_drift}"
    );
}

#[test]
fn pinned_geography_survives_level_changes() {
    // §4.2: the analyst arranges clusters geographically (adonis west,
    // griffon east) and the convention survives collapsing/expanding.
    let (_, mut session) = dt_session();
    let tree_adonis = session.trace().containers().by_name("adonis").unwrap().id();
    let tree_griffon = session.trace().containers().by_name("griffon").unwrap().id();
    session.collapse_at_depth(2);
    session.drag(tree_adonis, viva_layout::Vec2::new(-100.0, 0.0)).unwrap();
    session.drag(tree_griffon, viva_layout::Vec2::new(100.0, 0.0)).unwrap();
    session.relax(300);
    let view = session.view();
    assert!(view.node(tree_adonis).unwrap().position.x < view.node(tree_griffon).unwrap().position.x);
    // Expand and re-collapse: aggregates reform near their members'
    // barycenter, so the west/east arrangement persists.
    session.expand_all();
    session.relax(100);
    session.collapse_at_depth(2);
    let view = session.view();
    let ax = view.node(tree_adonis).unwrap().position.x;
    let gx = view.node(tree_griffon).unwrap().position.x;
    assert!(
        ax < gx,
        "geographic arrangement lost: adonis {ax} vs griffon {gx}"
    );
}
