//! Wire-protocol guarantees of `viva-server`:
//!
//! 1. **Codec identity** — for arbitrary protocol values,
//!    `decode(encode(v)) == v`, for both commands and responses. The
//!    encoding is also *stable*: encoding the decoded value reproduces
//!    the original bytes (the encoder is canonical).
//! 2. **Golden-transcript determinism** — replaying the checked-in
//!    session script through a fresh server twice yields byte-identical
//!    transcripts, and those bytes match the checked-in golden file.
//!    This is the property `ci.sh server-smoke` holds end to end over
//!    the real binaries.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use viva::Theme;
use viva_server::protocol::{
    Command, ErrorKind, Response, SessionStats, SpanNode, StatsBlock, StatsEvent,
};
use viva_server::{Server, ServerLimits, TraceEntry};
use viva_trace::RecoveryMode;

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

/// Names exercising JSON escaping: quotes, backslashes, control
/// characters, non-ASCII, and astral-plane text.
const NAMES: &[&str] = &[
    "a",
    "grenoble/adonis-1",
    "with \"quotes\"",
    "back\\slash",
    "tabs\tand\nnewlines",
    "nul\u{0}byte",
    "héhé-ü",
    "城市",
    "🜁 air",
    "",
];

fn name() -> impl Strategy<Value = String> {
    (0usize..NAMES.len()).prop_map(|i| NAMES[i].to_owned())
}

/// Finite `f64`s including the awkward ones (negative zero, subnormal,
/// huge, tiny, non-representable-in-decimal fractions).
fn num() -> impl Strategy<Value = f64> {
    prop_oneof![
        -1.0e9f64..1.0e9,
        (0usize..8).prop_map(|i| {
            [0.0, -0.0, 0.1, -1.5e-300, 4.9e-324, 1.7976931348623157e308, -3.0, 1e17][i]
        }),
    ]
}

fn uint() -> impl Strategy<Value = u64> {
    // Kept under 2^53 so the JSON number round-trips exactly.
    prop_oneof![0u64..1 << 53, (0usize..3).prop_map(|i| [0, 1, (1 << 53) - 1][i])]
}

fn theme() -> impl Strategy<Value = Theme> {
    prop_oneof![Just(Theme::Light), Just(Theme::Dark)]
}

fn mode() -> impl Strategy<Value = RecoveryMode> {
    prop_oneof![Just(RecoveryMode::Strict), Just(RecoveryMode::Lenient)]
}

fn opt_num() -> impl Strategy<Value = Option<f64>> {
    prop_oneof![Just(None), num().prop_map(Some)]
}

fn command() -> impl Strategy<Value = Command> {
    prop_oneof![
        Just(Command::Ping),
        Just(Command::Sessions),
        name().prop_map(|session| Command::CloseSession { session }),
        (name(), mode(), name(), opt_name())
            .prop_map(|(session, mode, text, trace)| Command::LoadTrace { session, mode, text, trace }),
        (name(), name()).prop_map(|(session, trace)| Command::Attach { session, trace }),
        Just(Command::ListTraces),
        name().prop_map(|trace| Command::DropTrace { trace }),
        (name(), num(), num())
            .prop_map(|(session, start, end)| Command::SetTimeSlice { session, start, end }),
        (name(), name()).prop_map(|(session, container)| Command::Collapse { session, container }),
        (name(), name()).prop_map(|(session, container)| Command::Expand { session, container }),
        (name(), 0u32..12).prop_map(|(session, depth)| Command::CollapseAtDepth { session, depth }),
        name().prop_map(|session| Command::ExpandAll { session }),
        (name(), opt_num(), opt_num(), opt_num()).prop_map(|(session, repulsion, spring, damping)| {
            Command::SetForces { session, repulsion, spring, damping }
        }),
        (name(), name(), num())
            .prop_map(|(session, group, factor)| Command::SetScaling { session, group, factor }),
        (name(), name(), num(), num())
            .prop_map(|(session, container, x, y)| Command::Drag { session, container, x, y }),
        (name(), name()).prop_map(|(session, container)| Command::Release { session, container }),
        (name(), uint()).prop_map(|(session, steps)| Command::Relax { session, steps }),
        (name(), name(), name())
            .prop_map(|(session, metric, group)| Command::Aggregate { session, metric, group }),
        (
            (name(), num(), num(), theme(), prop_oneof![Just(false), Just(true)]),
            (opt_num(), opt_num(), opt_num()),
        )
            .prop_map(|((session, width, height, theme, labels), (zoom, pan_x, pan_y))| {
                Command::Render { session, width, height, theme, labels, zoom, pan_x, pan_y }
            }),
        (opt_name(), prop_oneof![Just(false), Just(true)])
            .prop_map(|(session, reset)| Command::Stats { session, reset }),
        (opt_name(), prop_oneof![Just(None), uint().prop_map(Some)])
            .prop_map(|(session, limit)| Command::Spans { session, limit }),
    ]
}

fn stats_block() -> impl Strategy<Value = StatsBlock> {
    (
        uint(),
        (
            proptest::collection::vec((name(), uint()), 0..3),
            proptest::collection::vec((name(), num()), 0..3),
            proptest::collection::vec((name(), uint()), 0..3),
        ),
        (
            proptest::collection::vec(
                (uint(), name(), name())
                    .prop_map(|(seq, name, detail)| StatsEvent { seq, name, detail }),
                0..3,
            ),
            uint(),
        ),
    )
        .prop_map(|(clock, (counters, gauges, histograms), (events, events_dropped))| {
            StatsBlock { clock, counters, gauges, histograms, events, events_dropped }
        })
}

fn error_kind() -> impl Strategy<Value = ErrorKind> {
    let kinds = [
        ErrorKind::Protocol,
        ErrorKind::UnknownCommand,
        ErrorKind::NoSession,
        ErrorKind::UnknownContainer,
        ErrorKind::HiddenContainer,
        ErrorKind::UnknownMetric,
        ErrorKind::InvalidTimeSlice,
        ErrorKind::NonFinitePosition,
        ErrorKind::BadViewport,
        ErrorKind::BadTheme,
        ErrorKind::BadArgument,
        ErrorKind::ParseTrace,
        ErrorKind::BudgetExceeded,
        ErrorKind::NoTrace,
    ];
    (0usize..kinds.len()).prop_map(move |i| kinds[i])
}

fn opt_name() -> impl Strategy<Value = Option<String>> {
    prop_oneof![Just(None), name().prop_map(Some)]
}

fn response() -> impl Strategy<Value = Response> {
    prop_oneof![
        Just(Response::Pong),
        proptest::collection::vec(name(), 0..4)
            .prop_map(|names| Response::SessionList { names }),
        name().prop_map(|session| Response::Closed { session }),
        (name(), (uint(), uint(), uint(), uint()), num(), num(), opt_name()).prop_map(
            |(session, (containers, events, dropped, quarantined), start, end, breach)| {
                Response::Loaded {
                    session,
                    containers,
                    events,
                    dropped,
                    quarantined,
                    start,
                    end,
                    breach,
                }
            }
        ),
        (num(), num()).prop_map(|(start, end)| Response::Slice { start, end }),
        uint().prop_map(|revision| Response::Done { revision }),
        (num(), num(), num())
            .prop_map(|(repulsion, spring, damping)| Response::Forces { repulsion, spring, damping }),
        (uint(), opt_name()).prop_map(|(steps, frozen)| Response::Relaxed { steps, frozen }),
        ((uint(), uint()), (num(), num()), (num(), num(), num()), prop_oneof![Just(false), Just(true)])
            .prop_map(|((members, quarantined), (integral, mean), (min, max, median), empty)| {
                Response::Aggregated { members, integral, mean, min, max, median, quarantined, empty }
            }),
        (uint(), prop_oneof![Just(false), Just(true)], name())
            .prop_map(|(revision, cached, svg)| Response::Frame { revision, cached, svg }),
        (name(), name(), (uint(), uint()), (num(), num())).prop_map(
            |(session, trace, (containers, events), (start, end))| Response::Attached {
                session,
                trace,
                containers,
                events,
                start,
                end,
            }
        ),
        proptest::collection::vec(
            (name(), name(), (uint(), uint(), uint())).prop_map(
                |(name, hash, (containers, events, sessions))| TraceEntry {
                    name,
                    hash,
                    containers,
                    events,
                    sessions,
                }
            ),
            0..3,
        )
        .prop_map(|traces| Response::TraceList { traces }),
        name().prop_map(|trace| Response::TraceDropped { trace }),
        (error_kind(), name()).prop_map(|(kind, message)| Response::Error { kind, message }),
        (
            uint(),
            stats_block(),
            prop_oneof![
                Just(None),
                (name(), uint(), opt_name(), stats_block()).prop_map(
                    |(name, revision, frozen, stats)| Some(Box::new(SessionStats {
                        name,
                        revision,
                        frozen,
                        stats
                    }))
                ),
            ],
        )
            .prop_map(|(sessions, server, session)| Response::Stats {
                sessions,
                server: Box::new(server),
                session
            }),
        (
            uint(),
            proptest::collection::vec(
                ((uint(), uint(), uint()), (name(), name()), (uint(), uint(), uint(), uint()))
                    .prop_map(
                        |((trace, id, parent), (name, detail), (shard, start_tick, end_tick, duration_ns))| {
                            SpanNode {
                                trace,
                                id,
                                parent,
                                name,
                                detail,
                                shard,
                                start_tick,
                                end_tick,
                                duration_ns,
                            }
                        }
                    ),
                0..3,
            ),
        )
            .prop_map(|(dropped, spans)| Response::Spans { dropped, spans }),
    ]
}

// ---------------------------------------------------------------------
// Codec identity
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    /// decode ∘ encode is the identity on commands, and the encoder is
    /// canonical: re-encoding the decoded value reproduces the bytes.
    #[test]
    fn command_codec_is_identity(cmd in command()) {
        let line = cmd.encode();
        let back = Command::decode(&line)
            .map_err(|e| TestCaseError::fail(format!("decode {line}: {e}")))?;
        prop_assert_eq!(&back, &cmd);
        prop_assert_eq!(back.encode(), line);
    }

    /// decode ∘ encode is the identity on responses, and canonical.
    #[test]
    fn response_codec_is_identity(resp in response()) {
        let line = resp.encode();
        let back = Response::decode(&line)
            .map_err(|e| TestCaseError::fail(format!("decode {line}: {e}")))?;
        prop_assert_eq!(&back, &resp);
        prop_assert_eq!(back.encode(), line);
    }
}

// ---------------------------------------------------------------------
// Golden transcript
// ---------------------------------------------------------------------

fn replay(script: &str) -> String {
    let server = Server::new(ServerLimits::default());
    let mut out = String::new();
    for line in script.lines() {
        if let Some(resp) = server.handle_line(line) {
            out.push_str(&resp);
            out.push('\n');
        }
    }
    out
}

/// The checked-in demo session replays deterministically: two fresh
/// servers produce byte-identical transcripts, and the bytes are
/// exactly the checked-in golden file (regenerate the golden with
/// `viva-server-client tests/data/server_session.script` if the
/// protocol legitimately changes).
#[test]
fn golden_transcript_replays_byte_identically() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/data");
    let script = std::fs::read_to_string(format!("{dir}/server_session.script"))
        .expect("checked-in script");
    let golden = std::fs::read_to_string(format!("{dir}/server_session.golden"))
        .expect("checked-in golden transcript");

    let first = replay(&script);
    let second = replay(&script);
    assert_eq!(first, second, "two fresh replays must be byte-identical");
    assert_eq!(first, golden, "replay must match the checked-in golden transcript");

    // Every response line must itself round-trip through the typed
    // codec — the transcript is not just stable, it is well-formed.
    for line in first.lines() {
        let resp = Response::decode(line).expect("transcript line decodes");
        assert_eq!(resp.encode(), line, "transcript lines are canonical");
    }
}
