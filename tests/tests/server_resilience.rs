//! Resilience guarantees of the serving layer (DESIGN.md §14):
//!
//! 1. **Poison recovery** — a handler that panics while holding a
//!    session lock must not wedge the session: the next command on the
//!    same session succeeds (regression test for the `SessionSlot`
//!    poison-recovery path).
//! 2. **Admission control** — past `max_inflight_commands` the server
//!    sheds with a typed `overloaded` error carrying the configured
//!    `retry_after_ms` hint; it never queues.
//! 3. **Deadlines** — a zero budget turns every command of that class
//!    into a typed `deadline` error without touching session state.
//! 4. **Torn frames** — bytes that arrive without a trailing newline
//!    are dropped, never executed.
//! 5. **Drain** — after `shutdown`, state-changing commands are shed
//!    while liveness/observability/export still answer, and `serve`
//!    ends its connection after the in-flight response.

use std::sync::Arc;

use viva::Theme;
use viva_server::protocol::{Command, ErrorKind, Response};
use viva_server::{Server, ServerLimits, SessionRegistry};
use viva_trace::{ContainerKind, RecoveryMode, TraceBuilder};

/// A small two-cluster trace as CSV for `load_trace`.
fn trace_csv() -> String {
    let mut b = TraceBuilder::new();
    let power = b.metric("power", "MFlop/s");
    let used = b.metric("power_used", "MFlop/s");
    for cn in ["c1", "c2"] {
        let cl = b.new_container(b.root(), cn, ContainerKind::Cluster).unwrap();
        for i in 0..3 {
            let h = b.new_container(cl, format!("{cn}-h{i}"), ContainerKind::Host).unwrap();
            b.set_variable(0.0, h, power, 100.0).unwrap();
            b.set_variable(0.0, h, used, (20 * (i + 1)) as f64).unwrap();
        }
    }
    viva_trace::export::to_csv(&b.finish(10.0))
}

fn load(server: &Server, name: &str) {
    let resp = server.execute(Command::LoadTrace {
        session: name.to_owned(),
        mode: RecoveryMode::Strict,
        text: trace_csv(),
        trace: None,
    });
    assert!(matches!(resp, Response::Loaded { .. }), "load failed: {resp:?}");
}

fn render(server: &Server, name: &str) -> Response {
    server.execute(Command::Render {
        session: name.to_owned(),
        width: 400.0,
        height: 300.0,
        theme: Theme::Light,
        labels: false,
        zoom: None,
        pan_x: None,
        pan_y: None,
    })
}

// ---------------------------------------------------------------------
// 1. Poison recovery
// ---------------------------------------------------------------------

#[test]
fn panicking_handler_does_not_wedge_the_session() {
    let server = Arc::new(Server::new(ServerLimits::default()));
    load(&server, "s");
    let before = match render(&server, "s") {
        Response::Frame { svg, revision, .. } => (svg, revision),
        other => panic!("render failed: {other:?}"),
    };

    // Simulate a handler panicking while holding the session lock —
    // the exact situation that poisons the slot's mutex.
    let slot = server.registry().peek("s").expect("live session");
    let poisoner = std::thread::spawn(move || {
        let _guard = SessionRegistry::lock_session(&slot);
        panic!("injected handler panic");
    });
    assert!(poisoner.join().is_err(), "the injected panic must fire");

    // The session must answer again, with the same deterministic bytes.
    let after = match render(&server, "s") {
        Response::Frame { svg, revision, .. } => (svg, revision),
        other => panic!("render after poison failed: {other:?}"),
    };
    assert_eq!(before, after, "a poisoned-then-recovered session must render identically");

    // And it is still fully operable, not just readable.
    let resp = server.execute(Command::Relax { session: "s".to_owned(), steps: 3 });
    assert!(matches!(resp, Response::Relaxed { .. }), "relax after poison failed: {resp:?}");
}

// ---------------------------------------------------------------------
// 2. Admission control
// ---------------------------------------------------------------------

#[test]
fn full_gate_sheds_with_typed_overloaded_and_hint() {
    let limits = ServerLimits {
        max_inflight_commands: 0,
        overload_retry_after_ms: 123,
        ..ServerLimits::default()
    };
    let server = Server::new(limits);
    match server.execute(Command::Ping) {
        Response::Error { kind: ErrorKind::Overloaded { retry_after_ms }, .. } => {
            assert_eq!(retry_after_ms, 123, "the shed must carry the configured hint");
        }
        other => panic!("a zero-width gate must shed everything: {other:?}"),
    }
    // Shedding never queues: the server stays immediately responsive
    // and the gate releases as soon as a command finishes (a non-zero
    // gate admits again right away).
    let server = Server::new(ServerLimits {
        max_inflight_commands: 1,
        ..ServerLimits::default()
    });
    for _ in 0..3 {
        assert!(matches!(server.execute(Command::Ping), Response::Pong));
    }
}

// ---------------------------------------------------------------------
// 3. Deadlines
// ---------------------------------------------------------------------

#[test]
fn zero_budget_breaches_deterministically_without_state_change() {
    let mut limits = ServerLimits::default();
    limits.deadlines.relax_ms = Some(0);
    let server = Server::new(limits);
    load(&server, "s");
    let before = match render(&server, "s") {
        Response::Frame { revision, .. } => revision,
        other => panic!("render failed: {other:?}"),
    };
    for _ in 0..5 {
        let resp = server.execute(Command::Relax { session: "s".to_owned(), steps: 10 });
        assert!(
            matches!(resp, Response::Error { kind: ErrorKind::DeadlineExceeded, .. }),
            "a zero relax budget must breach: {resp:?}"
        );
    }
    let after = match render(&server, "s") {
        Response::Frame { revision, .. } => revision,
        other => panic!("render failed: {other:?}"),
    };
    assert_eq!(before, after, "a breached command must not have advanced the layout");
}

// ---------------------------------------------------------------------
// 4. Torn frames
// ---------------------------------------------------------------------

#[test]
fn torn_frame_is_dropped_not_executed() {
    let server = Server::with_metrics(ServerLimits::default());
    // A valid command with the final newline missing: the peer died
    // mid-frame. It must produce no response and no session.
    let torn = Command::LoadTrace {
        session: "torn".to_owned(),
        mode: RecoveryMode::Strict,
        text: trace_csv(),
        trace: None,
    }
    .encode();
    let mut out = Vec::new();
    server.serve(torn.as_bytes(), &mut out).expect("serve ends cleanly on a torn frame");
    assert!(out.is_empty(), "a torn frame must produce no response bytes");
    assert!(server.registry().peek("torn").is_none(), "a torn frame must never execute");
    match server.execute(Command::Stats { session: None, reset: false }) {
        Response::Stats { server: block, .. } => {
            let torn = block.counters.iter().find(|(n, _)| n == "server.torn_frames");
            assert_eq!(torn.map(|(_, v)| *v), Some(1), "the drop must be observable");
        }
        other => panic!("{other:?}"),
    }
}

// ---------------------------------------------------------------------
// 5. Drain
// ---------------------------------------------------------------------

#[test]
fn drain_sheds_mutations_answers_observability_and_ends_connections() {
    let server = Server::new(ServerLimits::default());
    load(&server, "s");
    match server.execute(Command::Shutdown) {
        Response::ShutdownStarted { sessions, .. } => assert_eq!(sessions, 1),
        other => panic!("shutdown failed: {other:?}"),
    }
    assert!(server.is_draining());
    // Mutations are shed with the typed overload error...
    let resp = server.execute(Command::Relax { session: "s".to_owned(), steps: 5 });
    assert!(
        matches!(resp, Response::Error { kind: ErrorKind::Overloaded { .. }, .. }),
        "a draining server must shed mutations: {resp:?}"
    );
    // ...while liveness, observability, and state export still answer.
    assert!(matches!(server.execute(Command::Ping), Response::Pong));
    assert!(matches!(server.execute(Command::Stats { session: None, reset: false }), Response::Stats { .. }));
    assert!(matches!(
        server.execute(Command::Checkpoint { session: "s".to_owned() }),
        Response::Checkpointed { .. }
    ));
    // A serve loop answers the in-flight line, then ends its connection.
    let mut out = Vec::new();
    server.serve("{\"cmd\":\"ping\"}\n{\"cmd\":\"ping\"}\n".as_bytes(), &mut out).expect("serve");
    let out = String::from_utf8(out).expect("utf8");
    assert_eq!(out.lines().count(), 1, "a draining connection ends after one response: {out}");
}
