//! Stateful property test for checkpoint/restore (DESIGN.md §14):
//! after an arbitrary interactive session, a checkpoint→restore
//! round-trip is invisible to the analyst.
//!
//! 1. **Render equality** — the restored session renders byte-identical
//!    SVG at the same view revision as the session it was captured
//!    from.
//! 2. **Fixed point** — checkpointing the restored session reproduces
//!    the checkpoint byte-for-byte: restore loses nothing that a second
//!    crash would then lose.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use viva::Theme;
use viva_server::protocol::{Command, Response};
use viva_server::{Server, ServerLimits};
use viva_trace::{ContainerKind, RecoveryMode, TraceBuilder};

/// One interactive gesture, expressed as a protocol command.
#[derive(Debug, Clone)]
enum Op {
    Slice(f64, f64),
    Collapse(usize),
    Expand(usize),
    Level(u32),
    ExpandAll,
    Drag(usize, f64, f64),
    Relax(usize),
}

/// Containers addressable by the ops (clusters and hosts by name).
const CONTAINERS: &[&str] =
    &["c1", "c2", "c1-h0", "c1-h1", "c1-h2", "c2-h0", "c2-h1", "c2-h2", "nope"];

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0.0f64..8.0, 0.5f64..3.0).prop_map(|(a, w)| Op::Slice(a, w)),
        (0usize..CONTAINERS.len()).prop_map(Op::Collapse),
        (0usize..CONTAINERS.len()).prop_map(Op::Expand),
        (0u32..4).prop_map(Op::Level),
        Just(Op::ExpandAll),
        (0usize..CONTAINERS.len(), -40.0f64..40.0, -40.0f64..40.0)
            .prop_map(|(i, x, y)| Op::Drag(i, x, y)),
        (1usize..8).prop_map(Op::Relax),
    ]
}

fn trace_csv() -> String {
    let mut b = TraceBuilder::new();
    let power = b.metric("power", "MFlop/s");
    let used = b.metric("power_used", "MFlop/s");
    for cn in ["c1", "c2"] {
        let cl = b.new_container(b.root(), cn, ContainerKind::Cluster).unwrap();
        for i in 0..3 {
            let h = b.new_container(cl, format!("{cn}-h{i}"), ContainerKind::Host).unwrap();
            b.set_variable(0.0, h, power, 100.0).unwrap();
            b.set_variable(0.0, h, used, (20 * (i + 1)) as f64).unwrap();
        }
    }
    viva_trace::export::to_csv(&b.finish(10.0))
}

fn command(op: &Op) -> Command {
    let session = "s".to_owned();
    let name = |i: usize| CONTAINERS[i % CONTAINERS.len()].to_owned();
    match *op {
        Op::Slice(a, w) => Command::SetTimeSlice { session, start: a, end: a + w },
        Op::Collapse(i) => Command::Collapse { session, container: name(i) },
        Op::Expand(i) => Command::Expand { session, container: name(i) },
        Op::Level(depth) => Command::CollapseAtDepth { session, depth },
        Op::ExpandAll => Command::ExpandAll { session },
        Op::Drag(i, x, y) => Command::Drag { session, container: name(i), x, y },
        Op::Relax(steps) => Command::Relax { session, steps: steps as u64 },
    }
}

/// Renders and returns (revision, svg); panics on anything but a frame.
fn frame(server: &Server) -> (u64, String) {
    match server.execute(Command::Render {
        session: "s".to_owned(),
        width: 640.0,
        height: 480.0,
        theme: Theme::Dark,
        labels: true,
        zoom: None,
        pan_x: None,
        pan_y: None,
    }) {
        Response::Frame { revision, svg, .. } => (revision, svg),
        other => panic!("render failed: {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn checkpoint_restore_is_invisible(ops in proptest::collection::vec(op_strategy(), 1..20)) {
        let server = Server::new(ServerLimits::default());
        let loaded = server.execute(Command::LoadTrace {
            session: "s".to_owned(),
            mode: RecoveryMode::Strict,
            text: trace_csv(),
            trace: None,
        });
        prop_assert!(matches!(loaded, Response::Loaded { .. }), "load failed: {loaded:?}");

        for op in &ops {
            // Ops on unknown/hidden containers answer with typed errors;
            // those responses are part of the session history too.
            let _ = server.execute(command(op));
        }

        let before = frame(&server);
        let state = match server.execute(Command::Checkpoint { session: "s".to_owned() }) {
            Response::Checkpointed { state, .. } => state,
            other => return Err(TestCaseError::fail(format!("checkpoint failed: {other:?}"))),
        };

        // Restore over the live session (the crash-recovery path).
        let restored = server.execute(Command::Restore {
            session: "s".to_owned(),
            state: Some(state.clone()),
        });
        match restored {
            Response::Restored { revision, .. } => {
                prop_assert_eq!(revision, state.revision, "restore must report the captured revision");
            }
            other => return Err(TestCaseError::fail(format!("restore failed: {other:?}"))),
        }

        // 1. Render equality: the analyst cannot tell a restore happened.
        let after = frame(&server);
        prop_assert_eq!(before.0, after.0, "view revision must survive the round-trip");
        prop_assert_eq!(&before.1, &after.1, "restored render must be byte-identical");

        // 2. Fixed point: checkpointing the restored session reproduces
        //    the checkpoint bytes exactly.
        let again = server.execute(Command::Checkpoint { session: "s".to_owned() });
        let (first, second) = (
            Response::Checkpointed { session: "s".to_owned(), state }.encode(),
            again.encode(),
        );
        prop_assert_eq!(first, second, "double checkpoint must be a fixed point");
    }
}
