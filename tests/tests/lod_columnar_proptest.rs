//! Property tests for the columnar-store + level-of-detail subsystem.
//!
//! Three invariants pin the new rendering path to the old semantics:
//!
//! 1. **Tiles are honest aggregates** — every level-of-detail tile of a
//!    fully-zoomed-out render carries exactly the values that plain
//!    `AggIndex` subtree queries produce for its root, bit for bit
//!    (size, fill, breakdown shares, availability, quarantine count).
//!    A tile is a collapse the camera performed, not a new estimator.
//! 2. **Full visibility is the identity** — a camera that keeps every
//!    node readable (identity transform, `detail_px = 0`) renders SVG
//!    byte-identical to the classic camera-less path. Attaching the
//!    LoD machinery to a scene it cannot prune must be invisible.
//! 3. **Columnar storage is lossless** — the SoA signal store holds
//!    exactly the breakpoints a row-of-events reference model predicts,
//!    bit for bit, whichever door the data came through: the builder,
//!    the CSV loader round-trip, or live journal-replay pushes.

use std::collections::BTreeMap;

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use viva::{AnalysisSession, Camera, SessionBuilder, Viewport};
use viva_agg::TimeSlice;
use viva_trace::export::{from_csv, to_csv};
use viva_trace::{ContainerId, ContainerKind, MetricId, Trace, TraceBuilder};

/// A compact generator-friendly trace description: a two-cluster site
/// so zoomed-out cuts have real subtrees to tile.
#[derive(Debug, Clone)]
struct TraceSpec {
    hosts: usize, // per cluster
    // (host, metric, time-grid index, value)
    vars: Vec<(usize, usize, u32, f64)>,
}

const SPAN: f64 = 128.0;
const METRICS: [(&str, &str); 3] =
    [("power", "MFlop/s"), ("power_used", "MFlop/s"), ("bandwidth", "Mbit/s")];

fn grid(g: u32) -> f64 {
    f64::from(g % 256) * 0.5 // 0.0 .. 127.5, always inside the span
}

/// Builds the trace and returns the id handles the properties need to
/// address hosts and metrics directly.
fn build(spec: &TraceSpec) -> (Trace, Vec<ContainerId>, Vec<MetricId>) {
    let mut b = builder_skeleton(spec);
    let hosts = host_ids(&b);
    let metrics: Vec<_> = METRICS.iter().map(|&(n, u)| b.metric(n, u)).collect();
    // The builder rejects non-monotonic pushes per (container, metric):
    // sort by time first; duplicate times legitimately overwrite.
    let mut vars = spec.vars.clone();
    vars.sort_by_key(|v| v.2);
    for &(h, m, g, v) in &vars {
        b.set_variable(grid(g), hosts[h % hosts.len()], metrics[m % metrics.len()], v)
            .unwrap();
    }
    (b.finish(SPAN), hosts, metrics)
}

/// Containers only — the skeleton both the builder path and the
/// journal-replay path start from, so ids line up across stores.
fn builder_skeleton(spec: &TraceSpec) -> TraceBuilder {
    let mut b = TraceBuilder::new();
    for c in 0..2 {
        let cluster = b
            .new_container(b.root(), format!("c{c}"), ContainerKind::Cluster)
            .unwrap();
        for i in 0..spec.hosts {
            b.new_container(cluster, format!("c{c}h{i}"), ContainerKind::Host)
                .unwrap();
        }
    }
    b
}

/// The host ids of a skeleton, in creation order (c0's hosts then
/// c1's) — the order the reference model indexes by.
fn host_ids(b: &TraceBuilder) -> Vec<ContainerId> {
    b.containers()
        .iter()
        .filter(|n| n.kind() == ContainerKind::Host)
        .map(|n| n.id())
        .collect()
}

/// The row-of-events reference model: per (host, metric), the
/// breakpoint list a plain append-and-overwrite event log would hold.
fn row_reference(spec: &TraceSpec) -> BTreeMap<(usize, usize), Vec<(f64, f64)>> {
    let hosts = spec.hosts * 2;
    let mut vars = spec.vars.clone();
    vars.sort_by_key(|v| v.2);
    let mut model: BTreeMap<(usize, usize), Vec<(f64, f64)>> = BTreeMap::new();
    for &(h, m, g, v) in &vars {
        let col = model.entry((h % hosts, m % METRICS.len())).or_default();
        let t = grid(g);
        match col.last_mut() {
            Some(last) if last.0 == t => last.1 = v, // same-time overwrite
            _ => col.push((t, v)),
        }
    }
    model
}

fn spec_strategy() -> impl Strategy<Value = TraceSpec> {
    (
        2usize..5,
        proptest::collection::vec(
            (0usize..10, 0usize..3, 0u32..256, -1.0e6f64..1.0e6),
            1..48,
        ),
    )
        .prop_map(|(hosts, vars)| TraceSpec { hosts, vars })
}

/// Checks one trace's signals against the reference model, bit for
/// bit, both directions (nothing missing, nothing invented).
fn assert_matches_reference(
    trace: &Trace,
    hosts: &[ContainerId],
    metrics: &[MetricId],
    model: &BTreeMap<(usize, usize), Vec<(f64, f64)>>,
    path: &str,
) -> Result<(), TestCaseError> {
    for (&(h, m), expected) in model {
        let sig = trace.signal(hosts[h], metrics[m]);
        prop_assert!(sig.is_some(), "{path}: signal ({h},{m}) missing");
        let sig = sig.unwrap();
        prop_assert_eq!(
            sig.times().len(),
            expected.len(),
            "{} : breakpoint count for ({}, {})", path, h, m
        );
        for (i, &(t, v)) in expected.iter().enumerate() {
            prop_assert_eq!(sig.times()[i].to_bits(), t.to_bits(), "{} : time[{}]", path, i);
            prop_assert_eq!(sig.values()[i].to_bits(), v.to_bits(), "{} : value[{}]", path, i);
        }
    }
    prop_assert_eq!(
        trace.signals().count(),
        model.len(),
        "{} : signal invented beyond the reference model", path
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Invariant 1: a fully-zoomed-out render tiles the scene, and each
    /// tile's values are the `AggIndex` subtree queries of its root —
    /// bit-identical, including the §6 breakdown shares.
    #[test]
    fn zoomed_out_tiles_match_agg_index_queries(
        spec in spec_strategy(),
        slice in (0u32..200, 1u32..56),
    ) {
        let (trace, _, _) = build(&spec);
        let mut session: AnalysisSession = SessionBuilder::new(trace).build();
        session
            .set_breakdown_metrics(vec!["power".into(), "power_used".into()])
            .unwrap();
        let (s, w) = slice;
        session.set_time_slice(TimeSlice::new(grid(s), (grid(s) + grid(w).max(0.5)).min(SPAN)));

        // An absurd readability threshold: nothing resolves, the cut
        // must fall back to aggregate tiles (the fully-zoomed-out
        // regime at 100k hosts, reproduced in miniature).
        let vp = Viewport::new(640.0, 480.0)
            .with_camera(Camera::new(1.0, 0.0, 0.0).with_detail_px(1.0e9));
        let view = session.view_lod(&vp);
        prop_assert!(view.nodes.is_empty(), "nothing is readable below 1e9 px");
        prop_assert!(!view.tiles.is_empty(), "an unresolvable frontier must tile");

        let idx = session.shared_index().expect("default sessions build an index");
        let trace = session.shared_trace();
        let slice = session.time_slice();
        let width = slice.width();
        let norm = |v: f64| if width > 0.0 { v / width } else { 0.0 };
        let power = trace.metric_id("power").unwrap();
        let used = trace.metric_id("power_used").unwrap();
        for tile in &view.tiles {
            let c = tile.container;
            // Size and fill are Equation 1 over the subtree: the
            // index's Euler-tour integral, normalized by slice width.
            prop_assert_eq!(
                tile.size_value.to_bits(),
                norm(idx.integrate(power, c, slice)).to_bits(),
                "tile {} size_value", c
            );
            prop_assert_eq!(
                tile.fill_value.to_bits(),
                norm(idx.integrate(used, c, slice)).to_bits(),
                "tile {} fill_value", c
            );
            // Breakdown pie shares: positive integrals normalized.
            let mut segments: Vec<(String, f64)> = [("power", power), ("power_used", used)]
                .into_iter()
                .filter_map(|(name, m)| {
                    let integral = idx.integrate(m, c, slice);
                    (integral > 0.0).then(|| (name.to_owned(), integral))
                })
                .collect();
            let total: f64 = segments.iter().map(|(_, v)| v).sum();
            if total > 0.0 {
                for (_, v) in segments.iter_mut() {
                    *v /= total;
                }
            }
            prop_assert_eq!(&tile.segments, &segments, "tile segments");
            // No availability signal in these traces: always up.
            prop_assert_eq!(tile.availability.to_bits(), 1.0f64.to_bits());
            // Quarantine is the Euler-tour prefix-sum count.
            prop_assert_eq!(tile.quarantined, idx.quarantined_under_all(c));
        }
    }

    /// Invariant 2: a camera that prunes nothing renders byte-identical
    /// SVG to the classic camera-less path.
    #[test]
    fn full_visibility_lod_render_is_byte_identical(
        spec in spec_strategy(),
        w in 320.0f64..1600.0,
        h in 240.0f64..900.0,
        labels in prop_oneof![Just(false), Just(true)],
    ) {
        let (trace, _, _) = build(&spec);
        let session: AnalysisSession = SessionBuilder::new(trace).build();
        let classic = Viewport::new(w, h).with_labels(labels);
        let lod = classic
            .clone()
            .with_camera(Camera::new(1.0, 0.0, 0.0).with_detail_px(0.0));
        prop_assert_eq!(
            session.render(&classic),
            session.render(&lod),
            "identity camera with detail_px=0 must not perturb a single byte"
        );
    }

    /// Invariant 3: the columnar store round-trips the row reference
    /// model bit-exactly through all three ingestion doors.
    #[test]
    fn columnar_store_round_trips_row_reference(spec in spec_strategy()) {
        let model = row_reference(&spec);

        // Door 1: the builder.
        let (built, hosts, metrics) = build(&spec);
        assert_matches_reference(&built, &hosts, &metrics, &model, "builder")?;

        // Door 2: CSV export → strict loader (ids survive the hop).
        let loaded = from_csv(&to_csv(&built)).expect("own output must parse strictly");
        assert_matches_reference(&loaded, &hosts, &metrics, &model, "loader")?;

        // Door 3: live journal replay — an empty skeleton trace fed
        // one validated sample at a time, the crash-recovery path.
        let mut b = builder_skeleton(&spec);
        let live_metrics: Vec<_> = METRICS.iter().map(|&(n, u)| b.metric(n, u)).collect();
        let mut live = b.finish(SPAN);
        let mut vars = spec.vars.clone();
        vars.sort_by_key(|v| v.2);
        for &(h, m, g, v) in &vars {
            live.live_push_sample(
                hosts[h % hosts.len()],
                live_metrics[m % live_metrics.len()],
                grid(g),
                v,
            )
            .expect("time-sorted replay is monotonic per pair");
        }
        assert_matches_reference(&live, &hosts, &metrics, &model, "live replay")?;
    }
}
