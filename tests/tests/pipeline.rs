//! Cross-crate pipeline properties: determinism, trace round-tripping,
//! Equation 1 conservation across aggregation levels, and rendering
//! stability.

use viva::{AnalysisSession, Viewport};
use viva_agg::{integrate_group, TimeSlice, ViewState};
use viva_platform::generators;
use viva_simflow::TracingConfig;
use viva_trace::{export, ContainerKind};
use viva_workloads::{run_dt, Deployment, DtConfig};

fn traced_run() -> (viva_platform::Platform, viva_workloads::DtRun) {
    let platform = generators::two_clusters(&Default::default()).unwrap();
    let run = run_dt(
        platform.clone(),
        &DtConfig { rounds: 4, ..Default::default() },
        Deployment::Sequential,
        Some(TracingConfig::default()),
    );
    (platform, run)
}

#[test]
fn whole_pipeline_is_deterministic() {
    let render = || {
        let (platform, run) = traced_run();
        let trace = run.trace.unwrap();
        let mut session =
            AnalysisSession::builder(trace).platform(&platform).build();
        session.relax(200);
        let adonis = session.trace().containers().by_name("adonis").unwrap().id();
        session.collapse(adonis).unwrap();
        session.relax(50);
        session.render(&Viewport::new(800.0, 600.0))
    };
    assert_eq!(render(), render(), "same seed, same bytes");
}

#[test]
fn trace_survives_csv_roundtrip() {
    let (_, run) = traced_run();
    let t1 = run.trace.unwrap();
    let csv = export::to_csv(&t1);
    let t2 = export::from_csv(&csv).expect("parse back");
    assert_eq!(t1.containers().len(), t2.containers().len());
    assert_eq!(t1.signal_count(), t2.signal_count());
    assert_eq!(t1.links().len(), t2.links().len());
    // Aggregates agree exactly on both traces.
    let m = t1.metric_id("bandwidth_used").unwrap();
    let slice = TimeSlice::new(0.0, t1.end());
    for c in t1.containers().of_kind(ContainerKind::Link) {
        assert_eq!(
            integrate_group(&t1, m, c, slice),
            integrate_group(&t2, m, c, slice),
        );
    }
}

#[test]
fn equation1_is_conserved_across_levels() {
    let (_, run) = traced_run();
    let trace = run.trace.unwrap();
    let tree = trace.containers();
    let m = trace.metric_id("power_used").unwrap();
    let slice = TimeSlice::new(run.makespan * 0.1, run.makespan * 0.9);
    let root_total = integrate_group(&trace, m, tree.root(), slice);
    // Sum over sites == sum over clusters == sum over hosts == root.
    for (kind, label) in [
        (ContainerKind::Site, "sites"),
        (ContainerKind::Cluster, "clusters"),
        (ContainerKind::Host, "hosts"),
    ] {
        let sum: f64 = tree
            .of_kind(kind)
            .into_iter()
            .map(|c| integrate_group(&trace, m, c, slice))
            .sum();
        assert!(
            (sum - root_total).abs() <= 1e-9 * root_total.abs().max(1.0),
            "{label}: {sum} != {root_total}"
        );
    }
}

#[test]
fn view_state_frontiers_partition_the_leaves() {
    let (_, run) = traced_run();
    let trace = run.trace.unwrap();
    let tree = trace.containers();
    let mut state = ViewState::new();
    for depth in 0..=tree.max_depth() {
        state.collapse_at_depth(tree, depth);
        let visible = state.visible(tree);
        // Every leaf has exactly one representative among the visible.
        let mut covered = 0usize;
        for &v in &visible {
            covered += tree.leaves_under(v).len();
        }
        let leaves = tree.leaves_under(tree.root()).len();
        assert_eq!(covered, leaves, "depth {depth}");
    }
}

#[test]
fn session_from_communication_pairs_without_platform() {
    // §3.1.1 first option: no platform, edges from who-talks-to-whom.
    let (_, run) = traced_run();
    let trace = run.trace.unwrap();
    assert!(!trace.links().is_empty(), "messages were recorded");
    let session = AnalysisSession::builder(trace).build();
    let view = session.view();
    assert!(
        !view.edges.is_empty(),
        "communication pattern should induce edges"
    );
}

#[test]
fn svg_snapshot_has_expected_structure() {
    let (platform, run) = traced_run();
    let trace = run.trace.unwrap();
    let mut session =
        AnalysisSession::builder(trace).platform(&platform).build();
    session.relax(100);
    let svg = session.render(&Viewport::new(640.0, 480.0));
    let squares = svg.matches("node-square").count();
    let diamonds = svg.matches("node-diamond").count();
    let circles = svg.matches("node-circle").count();
    assert_eq!(squares, 22, "hosts are squares");
    assert_eq!(diamonds, 24, "links are diamonds");
    assert_eq!(circles, 3, "routers are circles");
    assert!(svg.matches("<line").count() >= 24 * 2, "host-link-router edges");
}
