//! Observability guarantees of the serving stack:
//!
//! 1. **Zero perturbation** — replaying the checked-in golden script
//!    on a metrics-*enabled* server yields the same bytes as the
//!    checked-in golden transcript. Instrumentation may watch the
//!    pipeline; it may never change a response.
//! 2. **Snapshot determinism** — for an arbitrary gesture script, two
//!    fresh metrics-enabled servers finish with byte-identical `stats`
//!    responses: every counter, gauge, histogram sample count, and
//!    event the wire exposes is a pure function of the command
//!    history, never of wall time.

use proptest::prelude::*;
use viva::Theme;
use viva_server::protocol::{Command, Response};
use viva_server::{Server, ServerLimits};
use viva_trace::{ContainerKind, RecoveryMode, TraceBuilder};

/// The canonical two-cluster trace, as CSV for `load_trace`.
fn trace_csv() -> String {
    let mut b = TraceBuilder::new();
    let power = b.metric("power", "MFlop/s");
    let used = b.metric("power_used", "MFlop/s");
    for cn in ["c1", "c2"] {
        let cl = b.new_container(b.root(), cn, ContainerKind::Cluster).unwrap();
        for i in 0..3 {
            let h = b.new_container(cl, format!("{cn}-h{i}"), ContainerKind::Host).unwrap();
            b.set_variable(0.0, h, power, 100.0).unwrap();
            b.set_variable(0.0, h, used, (20 * (i + 1)) as f64).unwrap();
        }
    }
    viva_trace::export::to_csv(&b.finish(10.0))
}

// ---------------------------------------------------------------------
// Golden transcript, metrics on
// ---------------------------------------------------------------------

#[test]
fn golden_transcript_is_unchanged_by_metrics() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/data");
    let script = std::fs::read_to_string(format!("{dir}/server_session.script"))
        .expect("checked-in script");
    let golden = std::fs::read_to_string(format!("{dir}/server_session.golden"))
        .expect("checked-in golden transcript");

    let server = Server::with_metrics(ServerLimits::default());
    let mut out = String::new();
    for line in script.lines() {
        if let Some(resp) = server.handle_line(line) {
            out.push_str(&resp);
            out.push('\n');
        }
    }
    assert_eq!(out, golden, "metrics-on replay must still match the golden bytes");

    // The recorder really was watching: the command counters add up to
    // the number of response lines the script produced.
    match server.execute(Command::Stats { session: None, reset: false }) {
        Response::Stats { server: block, .. } => {
            let total: u64 = block
                .counters
                .iter()
                .filter(|(n, _)| n.starts_with("server.cmd."))
                .map(|(_, v)| *v)
                .sum();
            // +1 for the stats command itself.
            assert_eq!(total, golden.lines().count() as u64 + 1);
        }
        other => panic!("{other:?}"),
    }
}

// ---------------------------------------------------------------------
// Golden stats transcript: snapshot, atomic reset, zeroed follow-up
// ---------------------------------------------------------------------

/// The `stats` wire block — counters, histogram sample counts, exact
/// bucket bounds, and the `reset:true` snapshot-and-zero — replayed
/// against checked-in bytes. The reset response returns the pre-reset
/// values; the follow-up shows zeroed counters and histograms while
/// gauges (`server.sessions`) survive untouched.
#[test]
fn golden_stats_transcript_pins_reset_semantics() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/data");
    let script = std::fs::read_to_string(format!("{dir}/server_stats.script"))
        .expect("checked-in stats script");
    let golden = std::fs::read_to_string(format!("{dir}/server_stats.golden"))
        .expect("checked-in stats golden");

    let server = Server::with_metrics(ServerLimits::default());
    let mut out = String::new();
    for line in script.lines() {
        if let Some(resp) = server.handle_line(line) {
            out.push_str(&resp);
            out.push('\n');
        }
    }
    assert_eq!(out, golden, "stats replay must match the golden bytes");
}

// ---------------------------------------------------------------------
// Snapshot determinism
// ---------------------------------------------------------------------

/// One interactive gesture against session "a", drawn from the values
/// the canonical trace actually contains (plus a few that fail — typed
/// errors must be deterministic too).
fn gesture() -> impl Strategy<Value = Command> {
    let s = || "a".to_owned();
    let container = || {
        prop_oneof![
            Just("c1".to_owned()),
            Just("c2".to_owned()),
            Just("c1-h0".to_owned()),
            Just("ghost".to_owned()),
        ]
    };
    prop_oneof![
        (0.0f64..12.0, 0.0f64..12.0).prop_map(move |(a, b)| Command::SetTimeSlice {
            session: "a".into(),
            start: a.min(b),
            end: a.max(b),
        }),
        container().prop_map(move |c| Command::Collapse { session: "a".into(), container: c }),
        container().prop_map(move |c| Command::Expand { session: "a".into(), container: c }),
        (0u32..4).prop_map(move |d| Command::CollapseAtDepth { session: "a".into(), depth: d }),
        Just(Command::ExpandAll { session: s() }),
        (1u64..40).prop_map(move |n| Command::Relax { session: "a".into(), steps: n }),
        (100.0f64..900.0).prop_map(move |w| Command::Render {
            session: "a".into(),
            width: w.floor(),
            height: 480.0,
            theme: Theme::Light,
            labels: false,
            zoom: None,
            pan_x: None,
            pan_y: None,
        }),
        Just(Command::Aggregate {
            session: s(),
            metric: "power_used".into(),
            group: "c1".into(),
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Same script ⇒ identical `stats` bytes, server and session scope
    /// both. This is the wire-level face of the obs determinism
    /// contract: everything `stats` exposes is replay-stable.
    #[test]
    fn same_script_yields_identical_stats(cmds in proptest::collection::vec(gesture(), 1..16)) {
        let csv = trace_csv();
        let run = |cmds: &[Command]| -> (String, String) {
            let server = Server::with_metrics(ServerLimits::default());
            let loaded = server.execute(Command::LoadTrace {
                session: "a".into(),
                mode: RecoveryMode::Strict,
                text: csv.clone(),
                trace: None,
            });
            assert!(matches!(loaded, Response::Loaded { .. }), "{loaded:?}");
            let mut transcript = String::new();
            for cmd in cmds {
                transcript.push_str(&server.execute(cmd.clone()).encode());
                transcript.push('\n');
            }
            let stats = server.execute(Command::Stats { session: Some("a".into()), reset: false }).encode();
            (transcript, stats)
        };
        let (t1, s1) = run(&cmds);
        let (t2, s2) = run(&cmds);
        prop_assert_eq!(t1, t2, "transcripts diverged");
        prop_assert_eq!(s1, s2, "stats snapshots diverged");
    }
}
