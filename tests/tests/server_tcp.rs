//! The event-driven TCP transport holds the same contract as stdio:
//!
//! 1. **Golden replay** — the checked-in session script replayed over a
//!    real socket, with metrics enabled, produces a transcript
//!    byte-identical to the checked-in golden file (and therefore to
//!    the stdio replay of the same script).
//! 2. **Pipelining** — a client that writes the entire script in one
//!    syscall gets every response, in order, unchanged: batching is a
//!    transport detail, not a semantic one.
//! 3. **Torn frames and slow loris** — a connection that dies
//!    mid-frame is counted and dropped without disturbing other
//!    connections; a peer that sends nothing is timed out by the
//!    readiness loop.
//! 4. **Drain** — `shutdown` over TCP finishes the in-flight
//!    transcript, then every shard worker exits and can be joined.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use viva_server::protocol::Command;
use viva_server::{serve_tcp, Server, ServerLimits};

fn data(file: &str) -> String {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/data");
    std::fs::read_to_string(format!("{dir}/{file}")).expect("checked-in test data")
}

/// Starts a metrics-enabled server on an ephemeral port.
fn start(
    limits: ServerLimits,
    workers: usize,
) -> (Arc<Server>, std::net::SocketAddr, Vec<std::thread::JoinHandle<()>>) {
    let server = Arc::new(Server::with_metrics(limits));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
    let addr = listener.local_addr().expect("local addr");
    let handles = serve_tcp(listener, workers, Arc::clone(&server));
    (server, addr, handles)
}

fn connect(addr: std::net::SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    stream
}

/// Replays `script` over one connection, writing `chunk_lines` request
/// lines per syscall, and returns the response transcript.
fn replay_tcp(addr: std::net::SocketAddr, script: &str, chunk_lines: usize) -> String {
    let stream = connect(addr);
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = stream;
    let requests: Vec<&str> = script.lines().filter(|l| !l.trim().is_empty()).collect();
    let mut transcript = String::new();
    for batch in requests.chunks(chunk_lines.max(1)) {
        let mut frame = String::new();
        for line in batch {
            frame.push_str(line);
            frame.push('\n');
        }
        // One syscall carries the whole batch; the shard must answer
        // every frame it finds in the read buffer.
        writer.write_all(frame.as_bytes()).expect("write batch");
        for _ in batch {
            let mut line = String::new();
            reader.read_line(&mut line).expect("read response");
            transcript.push_str(&line);
        }
    }
    transcript
}

/// The server-level stats line, for counter assertions.
fn stats_line(addr: std::net::SocketAddr) -> String {
    let mut stream = connect(addr);
    stream
        .write_all(format!("{}\n", Command::Stats { session: None, reset: false }.encode()).as_bytes())
        .expect("write stats");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read stats");
    line
}

fn counter(stats: &str, name: &str) -> u64 {
    // Counters encode as a {"name":value,...} object in the stats block.
    let needle = format!("\"{name}\":");
    let at = match stats.find(&needle) {
        Some(at) => at + needle.len(),
        None => return 0,
    };
    stats[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or(0)
}

/// Golden replay over a real socket, metrics on, byte-identical to the
/// checked-in transcript — line-at-a-time AND fully pipelined.
#[test]
fn golden_transcript_replays_byte_identically_over_tcp() {
    let script = data("server_session.script");
    let golden = data("server_session.golden");

    let (_one, addr, _handles) = start(ServerLimits::default(), 2);
    let line_at_a_time = replay_tcp(addr, &script, 1);
    assert_eq!(
        line_at_a_time, golden,
        "TCP replay must match the checked-in golden transcript"
    );

    // A fresh server, the whole script in one write: pipelined batching
    // must not change a byte either.
    let (_two, addr, _handles) = start(ServerLimits::default(), 2);
    let pipelined = replay_tcp(addr, &script, usize::MAX);
    assert_eq!(pipelined, golden, "pipelined replay must be byte-identical");
}

/// A connection that dies mid-frame: complete frames before the tear
/// are answered, the residue is counted as torn, other connections are
/// untouched.
#[test]
fn torn_frame_is_counted_and_other_connections_survive() {
    let (_server, addr, _handles) = start(ServerLimits::default(), 2);

    let mut torn = connect(addr);
    torn.write_all(b"{\"cmd\":\"ping\"}\n{\"cmd\":\"pi").expect("write torn");
    let mut reader = BufReader::new(torn.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("read pong");
    assert!(line.contains("pong"), "complete frame before the tear is answered: {line}");
    torn.shutdown(std::net::Shutdown::Write).expect("half-close");
    // The server drops the connection after counting the residue.
    let mut rest = String::new();
    reader.read_to_string(&mut rest).expect("drained to EOF");
    assert_eq!(rest, "", "no response for a torn frame");

    // A healthy connection on the same server still works (the stats
    // probe below is itself a fresh connection), and the tear was
    // counted exactly once.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let stats = stats_line(addr);
        if counter(&stats, "server.torn_frames") == 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "torn frame never counted: {stats}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// A peer that connects and never sends a complete frame is timed out
/// by the readiness loop (slow-loris defense).
#[test]
fn slow_loris_connection_is_timed_out() {
    let (_server, addr, _handles) = start(
        ServerLimits { io_timeout_ms: Some(50), ..ServerLimits::default() },
        1,
    );
    let mut loris = connect(addr);
    loris.write_all(b"{\"cmd\":\"pi").expect("trickle");
    // Well past the timeout the server must have dropped us: the read
    // side sees EOF, not a hang.
    let mut reader = BufReader::new(loris.try_clone().expect("clone"));
    let mut out = String::new();
    reader.read_to_string(&mut out).expect("EOF after timeout");
    assert_eq!(out, "", "no response for an incomplete frame");

    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let stats = stats_line(addr);
        if counter(&stats, "server.io_timeouts") >= 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "io timeout never counted: {stats}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// `shutdown` over TCP answers the in-flight transcript, then every
/// shard worker exits cleanly.
#[test]
fn drain_over_tcp_joins_all_shard_workers() {
    let (_server, addr, handles) = start(ServerLimits::default(), 4);
    let mut stream = connect(addr);
    stream
        .write_all(format!("{}\n{}\n", Command::Ping.encode(), Command::Shutdown.encode()).as_bytes())
        .expect("write drain");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("pong");
    assert!(line.contains("pong"), "{line}");
    line.clear();
    reader.read_line(&mut line).expect("shutdown ack");
    assert!(line.contains("shutdown"), "{line}");
    for h in handles {
        h.join().expect("shard worker exits after drain");
    }
}
