//! Shared-trace economics of the `TraceStore` (DESIGN.md §15): a
//! thousand attached sessions cost one parsed trace and one
//! aggregation index, verified by `Arc` accounting — not by trusting
//! any bookkeeping the store itself reports.
//!
//! 1. **1k-session soak** — `load_trace` once under a store name, then
//!    1000 `attach`es. Every session shares the *same* allocation: the
//!    stored trace's `Arc` strong count is exactly
//!    `1 (store) + sessions`, and the store's own `sessions` figure
//!    agrees.
//! 2. **Release accounting** — closing sessions drops the count
//!    one-for-one; the store never pins a session.
//! 3. **`drop_trace`** — removes the name (second drop is a typed
//!    `no_trace`), new attaches fail, but sessions already attached
//!    keep working: their `Arc` keeps the trace alive.

use std::sync::Arc;

use viva::Theme;
use viva_server::protocol::{Command, ErrorKind, Response};
use viva_server::{Server, ServerLimits};
use viva_trace::{ContainerKind, RecoveryMode, TraceBuilder};

/// A small two-cluster trace as CSV for `load_trace`.
fn trace_csv() -> String {
    let mut b = TraceBuilder::new();
    let power = b.metric("power", "MFlop/s");
    let used = b.metric("power_used", "MFlop/s");
    for cn in ["c1", "c2"] {
        let cl = b.new_container(b.root(), cn, ContainerKind::Cluster).unwrap();
        for i in 0..3 {
            let h = b.new_container(cl, format!("{cn}-h{i}"), ContainerKind::Host).unwrap();
            b.set_variable(0.0, h, power, 100.0).unwrap();
            b.set_variable(0.0, h, used, (20 * (i + 1)) as f64).unwrap();
        }
    }
    viva_trace::export::to_csv(&b.finish(10.0))
}

const SESSIONS: usize = 1000;

#[test]
fn thousand_attached_sessions_share_one_trace_allocation() {
    let server = Server::new(ServerLimits {
        max_sessions: SESSIONS + 1,
        ..ServerLimits::default()
    });
    let loaded = server.execute(Command::LoadTrace {
        session: "loader".to_owned(),
        mode: RecoveryMode::Strict,
        text: trace_csv(),
        trace: Some("soak".to_owned()),
    });
    assert!(matches!(loaded, Response::Loaded { .. }), "{loaded:?}");
    // Release the loader so only attached sessions hold references.
    let closed = server.execute(Command::CloseSession { session: "loader".to_owned() });
    assert!(matches!(closed, Response::Closed { .. }), "{closed:?}");

    for i in 0..SESSIONS {
        let attached = server.execute(Command::Attach {
            session: format!("analyst-{i}"),
            trace: "soak".to_owned(),
        });
        assert!(matches!(attached, Response::Attached { .. }), "attach {i}: {attached:?}");
    }
    assert_eq!(server.registry().len(), SESSIONS);

    // The ground truth: the stored trace's Arc strong count is the
    // store's own reference plus exactly one per attached session —
    // 1000 sessions never cloned the trace data.
    let stored = server.store().get("soak").expect("stored trace");
    assert_eq!(
        Arc::strong_count(&stored.trace),
        1 + 1 + SESSIONS, // store + our probe + one per session
        "every attach shares the stored allocation"
    );
    // The shared index is held by the store and every session alike.
    let index = stored.index.as_ref().expect("shared index");
    assert_eq!(Arc::strong_count(index), 1 + 1 + SESSIONS);

    // The store's listing agrees with the Arc accounting.
    let listing = server.store().list();
    assert_eq!(listing.len(), 1);
    assert_eq!(listing[0].sessions as usize, SESSIONS + 1, "probe counts too");
    drop(stored);

    // Closing sessions releases references one-for-one.
    for i in 0..SESSIONS / 2 {
        let closed = server.execute(Command::CloseSession { session: format!("analyst-{i}") });
        assert!(matches!(closed, Response::Closed { .. }), "{closed:?}");
    }
    let stored = server.store().get("soak").expect("still stored");
    assert_eq!(Arc::strong_count(&stored.trace), 1 + 1 + SESSIONS / 2);
}

#[test]
fn drop_trace_removes_the_name_but_not_live_sessions() {
    let server = Server::new(ServerLimits::default());
    let loaded = server.execute(Command::LoadTrace {
        session: "a".to_owned(),
        mode: RecoveryMode::Strict,
        text: trace_csv(),
        trace: Some("t".to_owned()),
    });
    assert!(matches!(loaded, Response::Loaded { .. }), "{loaded:?}");
    let attached = server.execute(Command::Attach {
        session: "b".to_owned(),
        trace: "t".to_owned(),
    });
    assert!(matches!(attached, Response::Attached { .. }), "{attached:?}");

    let dropped = server.execute(Command::DropTrace { trace: "t".to_owned() });
    assert!(matches!(dropped, Response::TraceDropped { .. }), "{dropped:?}");

    // The name is gone: re-drop and attach both fail typed.
    for resp in [
        server.execute(Command::DropTrace { trace: "t".to_owned() }),
        server.execute(Command::Attach { session: "c".to_owned(), trace: "t".to_owned() }),
    ] {
        match resp {
            Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::NoTrace),
            other => panic!("expected no_trace, got {other:?}"),
        }
    }
    assert!(server.store().list().is_empty());

    // Sessions attached before the drop keep rendering — their Arc
    // keeps the trace alive without the store.
    for session in ["a", "b"] {
        let frame = server.execute(Command::Render {
            session: session.to_owned(),
            width: 320.0,
            height: 240.0,
            theme: Theme::Light,
            labels: false,
            zoom: None,
            pan_x: None,
            pan_y: None,
        });
        assert!(matches!(frame, Response::Frame { .. }), "{session}: {frame:?}");
    }
}

/// The wire protocol surfaces the store: `list_traces` reports name,
/// hash, dimensions, and sharing degree.
#[test]
fn list_traces_reports_sharing_over_the_wire() {
    let server = Server::new(ServerLimits::default());
    let line = Command::LoadTrace {
        session: "a".to_owned(),
        mode: RecoveryMode::Strict,
        text: trace_csv(),
        trace: Some("prod".to_owned()),
    }
    .encode();
    assert!(server.handle_line(&line).expect("response").starts_with("{\"ok\""));
    let line = Command::Attach { session: "b".to_owned(), trace: "prod".to_owned() }.encode();
    assert!(server.handle_line(&line).expect("response").starts_with("{\"ok\""));

    let listed = server.execute(Command::ListTraces);
    match listed {
        Response::TraceList { traces } => {
            assert_eq!(traces.len(), 1);
            let t = &traces[0];
            assert_eq!(t.name, "prod");
            assert_eq!(t.hash.len(), 16, "16 hex digit content hash: {}", t.hash);
            assert!(t.hash.chars().all(|c| c.is_ascii_hexdigit()));
            assert_eq!(t.sessions, 2, "loader session + one attach");
            assert!(t.containers > 0 && t.events > 0);
        }
        other => panic!("expected trace_list, got {other:?}"),
    }
}
