//! End-to-end §5.2: competing master-workers on a (reduced) Grid'5000
//! model, checked for the paper's three phenomena and for the Fig. 9
//! diffusion behaviour.

use viva::animation::evolution_matrix;
use viva::AnalysisSession;
use viva_agg::TimeSlice;
use viva_platform::generators::{self, Grid5000Config};
use viva_platform::RouteTable;
use viva_simflow::TracingConfig;
use viva_trace::ContainerKind;
use viva_workloads::{run_master_worker, AppSpec, MwConfig, Scheduler};

fn platform() -> viva_platform::Platform {
    generators::grid5000(&Grid5000Config {
        total_hosts: 160,
        sites: 6,
        ..Default::default()
    })
    .unwrap()
}

fn best_host(p: &viva_platform::Platform, site: usize) -> viva_platform::HostId {
    let mut routes = RouteTable::new();
    let remote = p.hosts().last().unwrap().id();
    p.sites()[site]
        .clusters()
        .iter()
        .map(|&c| p.cluster(c).hosts()[0])
        .max_by(|&a, &b| {
            let ba = routes.route(p, a, remote).unwrap().bottleneck;
            let bb = routes.route(p, b, remote).unwrap().bottleneck;
            ba.total_cmp(&bb)
        })
        .unwrap()
}

fn two_apps(p: &viva_platform::Platform) -> Vec<AppSpec> {
    vec![
        AppSpec {
            name: "app1".into(),
            master: best_host(p, 0),
            config: MwConfig { tasks: 300, task_flops: 50_000.0, ..MwConfig::cpu_bound() },
        },
        AppSpec {
            name: "app2".into(),
            master: best_host(p, 1),
            config: MwConfig {
                tasks: 200,
                task_flops: 20_000.0,
                ..MwConfig::network_bound()
            },
        },
    ]
}

#[test]
fn fig8_phenomena_at_aggregated_levels() {
    let p = platform();
    let run = run_master_worker(
        p.clone(),
        &two_apps(&p),
        Some(TracingConfig { record_messages: false, record_accounts: true }),
    );
    let trace = run.trace.unwrap();
    let slice = TimeSlice::new(run.makespan * 0.2, run.makespan * 0.6);
    let mut session = AnalysisSession::builder(trace).platform(&p).build();
    session.set_time_slice(slice);

    // Phenomenon 1: the CPU-bound app uses more compute overall.
    let root = session.trace().containers().root();
    let a1 = session.aggregate("power_used:app1", root).unwrap().integral;
    let a2 = session.aggregate("power_used:app2", root).unwrap().integral;
    assert!(a1 > a2, "CPU-bound app should dominate: {a1} vs {a2}");

    // Phenomenon 3: interference — some host served both apps at some
    // point of the whole run.
    let whole = TimeSlice::new(0.0, run.makespan);
    session.set_time_slice(whole);
    let tree = session.trace().containers();
    let both = tree
        .of_kind(ContainerKind::Host)
        .into_iter()
        .filter(|&h| {
            let u1 = session.aggregate("power_used:app1", h).map_or(0.0, |a| a.integral);
            let u2 = session.aggregate("power_used:app2", h).map_or(0.0, |a| a.integral);
            u1 > 0.0 && u2 > 0.0
        })
        .count();
    assert!(both > 0, "the applications should interfere on some host");

    // Aggregated views have the advertised node counts (Fig. 8's
    // scalability: 4 levels).
    session.collapse_at_depth(1);
    assert_eq!(
        session.view().nodes.len(),
        p.sites().len() + p.links().iter().filter(|l| matches!(l.scope(), viva_platform::LinkScope::Grid)).count()
            + 1, // the core router is a root-level leaf
        "site level shows sites + backbone links + core router"
    );
    session.collapse_at_depth(0);
    assert_eq!(session.view().nodes.len(), 1, "grid level is one node");
}

#[test]
fn fig8_app2_prefers_well_connected_clusters() {
    let p = platform();
    let run = run_master_worker(
        p.clone(),
        &two_apps(&p),
        Some(TracingConfig { record_messages: false, record_accounts: true }),
    );
    let trace = run.trace.unwrap();
    let whole = TimeSlice::new(0.0, run.makespan);
    // Average uplink bandwidth of clusters that served app2 vs those
    // that did not: served ones must be better connected.
    let mut served = Vec::new();
    let mut unserved = Vec::new();
    let m2 = trace.metric_id("power_used:app2");
    for cl in p.clusters() {
        let c = trace.containers().by_name(cl.name()).unwrap().id();
        let used = m2.map_or(0.0, |m| {
            viva_agg::integrate_group(&trace, m, c, whole)
        });
        let uplink = p
            .link_by_name(&format!("{}-up", p.host(cl.hosts()[0]).name()))
            .unwrap()
            .bandwidth();
        if used > 0.0 {
            served.push(uplink);
        } else {
            unserved.push(uplink);
        }
    }
    if !served.is_empty() && !unserved.is_empty() {
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&served) > mean(&unserved),
            "served clusters should be better connected: {:?} vs {:?}",
            mean(&served),
            mean(&unserved)
        );
    }
}

#[test]
fn fig9_bandwidth_centric_is_faster_than_fifo() {
    let p = platform();
    let run_with = |scheduler| {
        let apps = vec![AppSpec {
            name: "app1".into(),
            master: best_host(&p, 0),
            config: MwConfig {
                tasks: 3 * p.hosts().len(),
                task_flops: 100_000.0,
                task_size_mbit: 40.0,
                scheduler,
                ..MwConfig::cpu_bound()
            },
        }];
        run_master_worker(
            p.clone(),
            &apps,
            Some(TracingConfig { record_messages: false, record_accounts: true }),
        )
    };
    let bc = run_with(Scheduler::BandwidthCentric);
    let fifo = run_with(Scheduler::Fifo);
    // The ordering is a heuristic claim: on a randomly sampled platform
    // the two schedulers can land within a few percent of each other, so
    // allow a small tolerance instead of a strict inequality.
    assert!(
        bc.makespan <= fifo.makespan * 1.05,
        "bandwidth-centric should not clearly lose to FIFO: {} vs {}",
        bc.makespan,
        fifo.makespan
    );

    // Diffusion: under FIFO every site eventually serves; count how
    // many quarters it takes each scheduler to activate all its sites.
    let active_profile = |run: &viva_workloads::MwRun| {
        let trace = run.trace.as_ref().unwrap();
        let tree = trace.containers();
        let sites: Vec<_> = tree.of_kind(ContainerKind::Site);
        let slices = TimeSlice::new(0.0, run.makespan).split(4);
        let m = evolution_matrix(trace, "power_used:app1", &sites, &slices);
        m.iter()
            .filter(|row| row.iter().sum::<f64>() > 0.0)
            .count()
    };
    // The bandwidth-centric run concentrates, FIFO spreads: FIFO should
    // touch at least as many sites.
    assert!(active_profile(&fifo) >= active_profile(&bc));
}
