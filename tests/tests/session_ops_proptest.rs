//! Stateful property test: arbitrary interactive sessions (collapse /
//! expand / level jumps / drags / slice changes) never break the
//! session's invariants.

use proptest::prelude::*;
use viva::AnalysisSession;
use viva_agg::TimeSlice;
use viva_layout::Vec2;
use viva_platform::generators::{self, Grid5000Config};
use viva_simflow::TracingConfig;
use viva_trace::ContainerId;
use viva_workloads::{run_master_worker, AppSpec, MwConfig};

/// One interactive gesture.
#[derive(Debug, Clone)]
enum Op {
    Collapse(usize),
    Expand(usize),
    Level(u32),
    ExpandAll,
    Drag(usize, f64, f64),
    Slice(f64, f64),
    Relax(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..64).prop_map(Op::Collapse),
        (0usize..64).prop_map(Op::Expand),
        (0u32..4).prop_map(Op::Level),
        Just(Op::ExpandAll),
        (0usize..64, -50.0f64..50.0, -50.0f64..50.0).prop_map(|(i, x, y)| Op::Drag(i, x, y)),
        (0.0f64..0.8, 0.05f64..0.2).prop_map(|(a, w)| Op::Slice(a, w)),
        (1usize..10).prop_map(Op::Relax),
    ]
}

fn build_session() -> AnalysisSession {
    let p = generators::grid5000(&Grid5000Config {
        total_hosts: 24,
        sites: 3,
        ..Default::default()
    })
    .unwrap();
    let apps = vec![AppSpec {
        name: "app1".into(),
        master: p.hosts()[0].id(),
        config: MwConfig { tasks: 30, ..Default::default() },
    }];
    let run = run_master_worker(
        p.clone(),
        &apps,
        Some(TracingConfig { record_messages: false, record_accounts: false }),
    );
    AnalysisSession::builder(run.trace.unwrap()).platform(&p).build()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn random_sessions_keep_invariants(ops in proptest::collection::vec(op_strategy(), 1..25)) {
        let mut session = build_session();
        let n_containers = session.trace().containers().len();
        let total_leaves = session
            .trace()
            .containers()
            .leaves_under(session.trace().containers().root())
            .len();
        let makespan = session.trace().end();

        for op in ops {
            match op {
                Op::Collapse(i) => {
                    let c = ContainerId::from_index(i % n_containers);
                    let _ = session.collapse(c);
                }
                Op::Expand(i) => {
                    let c = ContainerId::from_index(i % n_containers);
                    let _ = session.expand(c);
                }
                Op::Level(d) => session.collapse_at_depth(d),
                Op::ExpandAll => session.expand_all(),
                Op::Drag(i, x, y) => {
                    let c = ContainerId::from_index(i % n_containers);
                    let _ = session.drag(c, Vec2::new(x, y));
                }
                Op::Slice(a, w) => {
                    let s = a * makespan;
                    session.set_time_slice(TimeSlice::new(s, s + w * makespan));
                }
                Op::Relax(n) => {
                    session.relax(n);
                }
            }

            let view = session.view();
            // Invariant 1: the layout holds exactly the visible nodes.
            prop_assert_eq!(session.layout().len(), view.nodes.len());
            // Invariant 2: visible nodes partition the leaves.
            let tree = session.trace().containers();
            let covered: usize = view
                .nodes
                .iter()
                .map(|n| tree.leaves_under(n.container).len())
                .sum();
            prop_assert_eq!(covered, total_leaves);
            // Invariant 3: every edge endpoint is a visible node and
            // edges are unique, non-self.
            let mut seen = std::collections::HashSet::new();
            for e in &view.edges {
                prop_assert!(view.node(e.a).is_some(), "dangling edge endpoint");
                prop_assert!(view.node(e.b).is_some(), "dangling edge endpoint");
                prop_assert!(e.a != e.b, "self edge");
                prop_assert!(seen.insert((e.a, e.b)), "duplicate edge");
            }
            // Invariant 4: every node's visuals are sane.
            for n in &view.nodes {
                prop_assert!((0.0..=1.0).contains(&n.fill_fraction));
                prop_assert!(n.px_size >= 2.0, "min pixel size");
                prop_assert!(n.position.is_finite(), "finite positions");
                prop_assert!(n.members >= 1);
            }
        }
    }
}
