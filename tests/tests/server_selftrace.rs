//! The dogfooding loop, end to end: a tracing server replays the
//! golden script, exports its own spans as a viva trace, and a viva
//! analysis session loads, aggregates, and renders that trace.
//!
//! Three guarantees:
//!
//! 1. **Zero perturbation** — replaying the golden script with span
//!    tracing *on* still reproduces the golden transcript byte for
//!    byte.
//! 2. **Round trip** — the self-trace export parses under the strict
//!    loader, builds an `AggIndex`, and renders an SVG in which every
//!    shard shows up as a host and every command class as a metric.
//! 3. **Determinism** — two same-script, same-seed servers export
//!    byte-identical CSV: the export is ordered by logical ticks, not
//!    wall time.

use viva::{AnalysisSession, Viewport};
use viva_agg::AggIndex;
use viva_obs::{Recorder, Tracer};
use viva_server::protocol::CommandClass;
use viva_server::{selftrace, Server, ServerLimits};
use viva_trace::{RecoveryMode, TraceLoader};

const SHARDS: usize = 1; // stdio replay runs on one thread → one shard

/// Replays the checked-in golden script through a sample-everything
/// tracing server and returns (transcript, self-trace CSV).
fn traced_replay() -> (String, String) {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/data");
    let script = std::fs::read_to_string(format!("{dir}/server_session.script"))
        .expect("checked-in script");
    let recorder =
        Recorder::enabled().with_tracer(Tracer::enabled(SHARDS, 42, 1));
    let server = Server::with_observability(ServerLimits::default(), recorder);
    let mut out = String::new();
    for line in script.lines() {
        if let Some(resp) = server.handle_line(line) {
            out.push_str(&resp);
            out.push('\n');
        }
    }
    (out, selftrace::export_csv(server.tracer()))
}

#[test]
fn tracing_never_perturbs_the_golden_transcript() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/data");
    let golden = std::fs::read_to_string(format!("{dir}/server_session.golden"))
        .expect("checked-in golden transcript");
    let (transcript, _) = traced_replay();
    assert_eq!(transcript, golden, "span tracing must not change a single response byte");
}

#[test]
fn selftrace_round_trips_into_an_analysis_session() {
    let (_, csv) = traced_replay();

    // Parses under the strict loader — the export speaks the same
    // dialect the ingest layer enforces on real traces.
    let report = TraceLoader::new()
        .mode(RecoveryMode::Strict)
        .load(csv.as_bytes())
        .expect("self-trace export must satisfy the strict loader");
    let trace = report.trace;

    // Every shard became a host, every command class a metric.
    let names: Vec<_> = trace.containers().iter().map(|c| c.name().to_owned()).collect();
    assert!(names.contains(&"viva-server".to_owned()), "cluster container");
    for s in 0..SHARDS {
        assert!(names.contains(&format!("shard-{s}")), "host for shard {s}");
    }
    for class in CommandClass::ALL {
        assert!(trace.metric_id(class.label()).is_some(), "metric {}", class.label());
    }

    // The index builds and the session renders — viva draws viva. The
    // golden script's render commands billed ticks into the `render`
    // metric, so the root carries at least one signal for it.
    let index = AggIndex::build(&trace);
    let render = trace.metric_id("render").expect("render metric");
    let root = trace.containers().root();
    assert!(index.carrier_count(render, root) >= 1, "render roots billed to their class");
    let session = AnalysisSession::builder(trace).build();
    let svg = session.render(&Viewport::new(800.0, 600.0));
    assert!(svg.starts_with("<svg"), "renderable self-portrait");
    assert!(svg.contains("</svg>"));
}

#[test]
fn same_script_same_seed_exports_identical_csv() {
    let (_, a) = traced_replay();
    let (_, b) = traced_replay();
    assert_eq!(a, b, "self-trace export is a pure function of the command history");
}
