//! Fault-injection robustness across the whole pipeline.
//!
//! * Property: random (valid) fault plans never panic — the simulation
//!   terminates, all tasks complete under the fault-tolerant protocol,
//!   and the produced trace is well-formed.
//! * Determinism: a seeded simulation with a non-empty fault plan is
//!   reproducible down to the byte, trace and SVG alike.

use proptest::prelude::*;
use viva::{AnalysisSession, Viewport};
use viva_platform::generators::{self, Grid5000Config};
use viva_platform::Platform;
use viva_simflow::{FaultPlan, TracingConfig};
use viva_trace::{metric::names, Trace};
use viva_workloads::{
    run_master_worker_with_faults, AppSpec, FtConfig, MwConfig, MwRun, Scheduler,
};

fn platform() -> Platform {
    generators::grid5000(&Grid5000Config {
        total_hosts: 24,
        sites: 3,
        ..Default::default()
    })
    .unwrap()
}

fn ft_app(p: &Platform, tasks: usize) -> Vec<AppSpec> {
    vec![AppSpec {
        name: "app1".into(),
        master: p.hosts()[0].id(),
        config: MwConfig {
            tasks,
            task_flops: 20_000.0,
            scheduler: Scheduler::Fifo,
            fault_tolerance: Some(FtConfig {
                worker_timeout: 60.0,
                heartbeat_interval: 10.0,
                send_timeout: 120.0,
            }),
            ..MwConfig::cpu_bound()
        },
    }]
}

fn run(p: &Platform, plan: &FaultPlan, tasks: usize) -> MwRun {
    run_master_worker_with_faults(
        p.clone(),
        &ft_app(p, tasks),
        Some(TracingConfig { record_messages: false, record_accounts: false }),
        Some(plan),
    )
    .expect("generated plans are valid for this platform")
}

/// Every signal of the trace is finite, time-ordered and inside the
/// recorded extent; availability in particular stays within `[0, 1]`.
fn assert_well_formed(trace: &Trace) {
    assert!(trace.end().is_finite() && trace.end() >= trace.start());
    let avail = trace.metric_id(names::AVAILABILITY);
    for (_, metric, signal) in trace.signals() {
        let times = signal.times();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "unsorted signal");
        for &t in times {
            assert!(t.is_finite() && t >= trace.start(), "breakpoint out of range");
            let v = signal.value_at(t);
            assert!(v.is_finite(), "non-finite sample");
            if Some(metric) == avail {
                assert!((0.0..=1.0).contains(&v), "availability out of [0,1]: {v}");
            }
        }
    }
}

/// One randomly-placed fault. Times and host picks are indices into
/// the platform, so every generated plan validates.
#[derive(Debug, Clone)]
enum F {
    // Victims come from the first half of the workers so part of the
    // pool always survives; the master (host 0) is never a victim —
    // the protocol documents that its host must stay up.
    Crash { victim: usize, at: f64 },
    Outage { victim: usize, at: f64, down: f64 },
    LinkOutage { link: usize, at: f64, down: f64 },
    Degrade { link: usize, at: f64, len: f64, factor: f64 },
    Loss { at: f64, len: f64, p: f64 },
}

fn fault() -> impl Strategy<Value = F> {
    prop_oneof![
        (0usize..11, 1.0f64..150.0).prop_map(|(victim, at)| F::Crash { victim, at }),
        (0usize..11, 1.0f64..150.0, 5.0f64..60.0)
            .prop_map(|(victim, at, down)| F::Outage { victim, at, down }),
        (0usize..64, 1.0f64..100.0, 5.0f64..40.0)
            .prop_map(|(link, at, down)| F::LinkOutage { link, at, down }),
        (0usize..64, 1.0f64..100.0, 5.0f64..80.0, 0.1f64..0.9)
            .prop_map(|(link, at, len, factor)| F::Degrade { link, at, len, factor }),
        (0.0f64..100.0, 5.0f64..60.0, 0.0f64..0.25)
            .prop_map(|(at, len, p)| F::Loss { at, len, p }),
    ]
}

fn build_plan(p: &Platform, faults: &[F], seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::new().with_seed(seed);
    for f in faults {
        plan = match *f {
            F::Crash { victim, at } => plan.host_crash(at, p.hosts()[1 + victim].id()),
            F::Outage { victim, at, down } => {
                plan.host_outage(at, down, p.hosts()[1 + victim].id())
            }
            F::LinkOutage { link, at, down } => {
                plan.link_outage(at, down, p.links()[link % p.links().len()].id())
            }
            F::Degrade { link, at, len, factor } => plan.link_degrade(
                at,
                at + len,
                p.links()[link % p.links().len()].id(),
                factor,
            ),
            F::Loss { at, len, p } => plan.message_loss(at, at + len, p),
        };
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn random_fault_plans_never_panic(
        faults in proptest::collection::vec(fault(), 0..10),
        seed in 0u64..1000,
    ) {
        let p = platform();
        let plan = build_plan(&p, &faults, seed);
        let tasks = 20;
        let run = run(&p, &plan, tasks);
        prop_assert!(run.makespan.is_finite() && run.makespan >= 0.0);
        // At-least-once delivery: nothing may be lost, and a falsely
        // written-off worker may compute a requeued duplicate.
        prop_assert!(
            run.tasks_completed[0] >= tasks,
            "lost work despite fault tolerance: {} < {}", run.tasks_completed[0], tasks
        );
        prop_assert!(run.tasks_shipped[0] >= tasks, "at-least-once delivery");
        assert_well_formed(run.trace.as_ref().expect("traced run"));
    }
}

#[test]
fn seeded_faulty_runs_are_byte_identical() {
    let p = platform();
    let plan = FaultPlan::new()
        .with_seed(7)
        .host_crash(5.0, p.hosts()[3].id())
        .host_outage(8.0, 40.0, p.hosts()[5].id())
        .link_outage(10.0, 20.0, p.links()[0].id())
        .message_loss(0.0, 60.0, 0.05);
    assert!(!plan.is_empty());

    let render = || {
        let result = run(&p, &plan, 30);
        let trace = result.trace.expect("traced run");
        let csv = viva_trace::export::to_csv(&trace);
        let mut session =
            AnalysisSession::builder(trace).platform(&p).build();
        session.try_set_time_slice(0.0, result.makespan).unwrap();
        session.relax(200);
        (result.makespan, csv, session.render(&Viewport::new(800.0, 600.0)))
    };
    let (makespan_a, trace_a, svg_a) = render();
    let (makespan_b, trace_b, svg_b) = render();
    assert_eq!(makespan_a, makespan_b);
    assert_eq!(trace_a, trace_b, "same seed, same trace bytes");
    assert_eq!(svg_a, svg_b, "same seed, same SVG bytes");
    // The faults actually left their mark in the picture.
    assert!(svg_a.contains("data-availability"), "crashed hosts render degraded");
}
