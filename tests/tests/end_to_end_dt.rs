//! End-to-end §5.1: simulate NAS-DT, analyze the trace through the full
//! visualization stack, and verify the paper's Figs. 6/7 phenomena.

use viva::AnalysisSession;
use viva_agg::TimeSlice;
use viva_platform::generators;
use viva_simflow::TracingConfig;
use viva_trace::ContainerKind;
use viva_workloads::{run_dt, Deployment, DtConfig};

fn tracing() -> TracingConfig {
    TracingConfig { record_messages: false, record_accounts: false }
}

#[test]
fn fig6_sequential_saturates_inter_cluster_links() {
    let platform = generators::two_clusters(&Default::default()).unwrap();
    let run = run_dt(
        platform.clone(),
        &DtConfig::default(),
        Deployment::Sequential,
        Some(tracing()),
    );
    let trace = run.trace.unwrap();
    let mut session =
        AnalysisSession::builder(trace).platform(&platform).build();

    // Whole run + begin/middle/end slices, as in Fig. 6: the two
    // inter-cluster links are the most utilized everywhere.
    let whole = TimeSlice::new(0.0, run.makespan);
    let mut slices = vec![whole];
    slices.extend(whole.split(3));
    for slice in slices {
        session.set_time_slice(slice);
        let view = session.view();
        let mut links: Vec<_> = view
            .nodes
            .iter()
            .filter(|n| n.kind == ContainerKind::Link)
            .collect();
        links.sort_by(|a, b| b.fill_fraction.total_cmp(&a.fill_fraction));
        let top2: Vec<&str> = links.iter().take(2).map(|n| n.label.as_str()).collect();
        assert!(
            top2.iter().all(|n| n.ends_with("-bb")),
            "slice {slice}: top links {top2:?} should be the backbone"
        );
        assert!(
            links[0].fill_fraction > 0.7,
            "slice {slice}: backbone should be near saturation, got {}",
            links[0].fill_fraction
        );
    }
}

#[test]
fn fig7_locality_wins_by_roughly_twenty_percent() {
    let platform = generators::two_clusters(&Default::default()).unwrap();
    let cfg = DtConfig::default();
    let seq = run_dt(platform.clone(), &cfg, Deployment::Sequential, Some(tracing()));
    let loc = run_dt(platform.clone(), &cfg, Deployment::Locality, Some(tracing()));
    let improvement = 1.0 - loc.makespan / seq.makespan;
    assert!(
        (0.08..=0.40).contains(&improvement),
        "expected a ~20% improvement, got {:.1}% (seq {}, loc {})",
        improvement * 100.0,
        seq.makespan,
        loc.makespan
    );

    // The backbone unloads: whole-run utilization drops by > 2x.
    let bb_util = |trace: &viva_trace::Trace, makespan: f64| {
        let m = trace.metric_id("bandwidth_used").unwrap();
        let cap = trace.metric_id("bandwidth").unwrap();
        ["adonis-bb", "griffon-bb"]
            .iter()
            .map(|n| {
                let c = trace.containers().by_name(n).unwrap().id();
                let used = trace.integrate(c, m, 0.0, makespan);
                let capacity = trace.signal(c, cap).unwrap().value_at(0.0) * makespan;
                used / capacity
            })
            .sum::<f64>()
            / 2.0
    };
    let seq_util = bb_util(seq.trace.as_ref().unwrap(), seq.makespan);
    let loc_util = bb_util(loc.trace.as_ref().unwrap(), loc.makespan);
    assert!(seq_util > 0.85, "sequential backbone near saturation: {seq_util}");
    assert!(
        loc_util < seq_util / 2.0,
        "locality should unload the backbone: {seq_util} -> {loc_util}"
    );

    // And the contention moves inside the clusters (Fig. 7: "network
    // contention is now placed on the small network links on each of
    // the clusters").
    let trace = loc.trace.unwrap();
    let mut session =
        AnalysisSession::builder(trace).platform(&platform).build();
    session.set_time_slice(TimeSlice::new(0.0, loc.makespan));
    let view = session.view();
    let busiest = view
        .nodes
        .iter()
        .filter(|n| n.kind == ContainerKind::Link)
        .max_by(|a, b| a.fill_fraction.total_cmp(&b.fill_fraction))
        .unwrap();
    assert!(
        busiest.label.ends_with("-up"),
        "busiest link should be an intra-cluster uplink, got {}",
        busiest.label
    );
}

#[test]
fn collapsing_clusters_preserves_total_usage() {
    // Equation 1 conservation through the view: host-level fill values
    // of a cluster sum to the collapsed cluster's fill value.
    let platform = generators::two_clusters(&Default::default()).unwrap();
    let run = run_dt(
        platform.clone(),
        &DtConfig { rounds: 5, ..Default::default() },
        Deployment::Sequential,
        Some(tracing()),
    );
    let trace = run.trace.unwrap();
    let mut session =
        AnalysisSession::builder(trace).platform(&platform).build();
    session.set_time_slice(TimeSlice::new(0.0, run.makespan));

    let tree = session.trace().containers();
    let adonis = tree.by_name("adonis").unwrap().id();
    let host_sum: f64 = session
        .view()
        .nodes
        .iter()
        .filter(|n| {
            n.kind == ContainerKind::Host
                && tree.path(n.container).starts_with("grenoble/adonis")
        })
        .map(|n| n.fill_value)
        .sum();
    session.collapse(adonis).unwrap();
    let agg = session.view().node(adonis).unwrap().fill_value;
    assert!(
        (host_sum - agg).abs() <= 1e-9 * host_sum.abs().max(1.0),
        "aggregate {agg} != member sum {host_sum}"
    );
}

#[test]
fn black_hole_and_shuffle_variants_run() {
    let platform = generators::two_clusters(&Default::default()).unwrap();
    for graph in [
        viva_workloads::DtGraph::BlackHole,
        viva_workloads::DtGraph::Shuffle,
    ] {
        let cfg = DtConfig { graph, rounds: 3, ..Default::default() };
        let run = run_dt(platform.clone(), &cfg, Deployment::Sequential, Some(tracing()));
        assert!(run.makespan > 0.0, "{graph:?} must make progress");
        let trace = run.trace.unwrap();
        assert!(trace.breakpoint_count() > 0);
    }
}
