//! Cross-substrate integration: regular topologies (torus), DOT
//! export, timeline extraction over simulated traces, and time-varying
//! capacities under a real scheduler.

use viva_agg::TimeSlice;
use viva_platform::{export, generators};
use viva_simflow::{Actor, ActorId, Ctx, Simulation, Tag, TracingConfig};
use viva_trace::timeline;

/// Neighbour exchange on a torus: every node sends one message to its
/// east neighbour each round.
struct Shifter {
    east: ActorId,
    rounds: usize,
}

impl Actor for Shifter {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.push_state("exchange");
        ctx.send(self.east, 80.0, Box::new(()), Tag(0));
    }
    fn on_send_done(&mut self, _tag: Tag, ctx: &mut Ctx<'_>) {
        self.rounds -= 1;
        if self.rounds > 0 {
            ctx.send(self.east, 80.0, Box::new(()), Tag(0));
        } else {
            ctx.pop_state();
        }
    }
}

#[test]
fn torus_neighbor_exchange_is_perfectly_balanced() {
    let rows = 4;
    let cols = 4;
    let p = generators::torus(rows, cols, 100.0, 1000.0).unwrap();
    let mut sim = Simulation::new(p.clone());
    sim.enable_tracing(TracingConfig::default());
    // Spawn row-major; east neighbour of (r, c) is (r, c+1 mod cols).
    for r in 0..rows {
        for c in 0..cols {
            let east = ActorId::from_index(r * cols + (c + 1) % cols);
            let host = p
                .host_by_name(&format!("node-{r}-{c}"))
                .expect("torus host")
                .id();
            sim.spawn(host, Box::new(Shifter { east, rounds: 3 }));
        }
    }
    let makespan = sim.run();
    assert!(makespan > 0.0);
    let trace = sim.into_trace().unwrap();
    // Perfect symmetry: every east link carried the same volume.
    let m = trace.metric_id("bandwidth_used").unwrap();
    let volumes: Vec<f64> = trace
        .containers()
        .of_kind(viva_trace::ContainerKind::Link)
        .into_iter()
        .filter(|&l| trace.containers().node(l).name().ends_with("-e"))
        .map(|l| trace.integrate(l, m, 0.0, makespan))
        .collect();
    assert_eq!(volumes.len(), rows * cols);
    let first = volumes[0];
    assert!(first > 0.0);
    for v in &volumes {
        assert!((v - first).abs() < 1e-6, "unbalanced torus: {v} vs {first}");
    }
    // All messages were recorded: 16 nodes × 3 rounds.
    assert_eq!(trace.links().len(), rows * cols * 3);
    // The exchange states bracket the activity.
    let rows_g = timeline::gantt_rows(&trace);
    assert_eq!(rows_g.len(), rows * cols);
    for row in &rows_g {
        assert_eq!(row.intervals.len(), 1);
        assert_eq!(row.intervals[0].0, "exchange");
    }
}

#[test]
fn dot_export_of_case_study_platforms() {
    for (p, hosts) in [
        (generators::two_clusters(&Default::default()).unwrap(), 22),
        (generators::torus(3, 3, 1.0, 1.0).unwrap(), 9),
    ] {
        let dot = export::to_dot(&p);
        assert_eq!(dot.matches("shape=box").count(), hosts);
        assert_eq!(dot.matches(" -- ").count(), p.links().len());
    }
}

#[test]
fn resample_matches_view_fill_values() {
    // The timeline resampling and the view aggregation must agree: a
    // bin mean equals the fill value over the same slice.
    let p = generators::two_clusters(&Default::default()).unwrap();
    let run = viva_workloads::run_dt(
        p.clone(),
        &viva_workloads::DtConfig { rounds: 4, ..Default::default() },
        viva_workloads::Deployment::Sequential,
        Some(TracingConfig { record_messages: false, record_accounts: false }),
    );
    let trace = run.trace.unwrap();
    let h = trace.containers().by_name("adonis-2").unwrap().id();
    let sig = trace.signal_by_name(h, "power_used").unwrap();
    let bins = timeline::resample(sig, 0.0, run.makespan, 5);
    let session = viva::AnalysisSession::builder(trace).platform(&p).build();
    for (i, slice) in TimeSlice::new(0.0, run.makespan).split(5).iter().enumerate() {
        let mut s2 =
            viva::AnalysisSession::builder(session.trace().clone()).platform(&p).build();
        s2.set_time_slice(*slice);
        let fill = s2.view().node(h).unwrap().fill_value;
        assert!(
            (fill - bins[i]).abs() < 1e-9,
            "bin {i}: view {fill} vs resample {}",
            bins[i]
        );
    }
}
