//! Property tests for the ingestion trust boundary.
//!
//! Two invariants pin the loader down:
//!
//! 1. **Byte-stable round-trips** — for any trace the builder can
//!    produce, `to_csv(from_csv(to_csv(t)))` equals `to_csv(t)` byte
//!    for byte. Serialization is a fixed point after one hop.
//! 2. **Lenient loading yields a sub-trace** — corrupting a serialized
//!    trace (whole-line deletion, garbage injection, line reordering)
//!    and loading it in `Lenient` mode produces a trace whose every
//!    container and signal breakpoint already existed in the original:
//!    recovery salvages, it never invents data.

use proptest::prelude::*;
use viva_trace::export::{from_csv, to_csv};
use viva_trace::{ContainerKind, RecoveryMode, Trace, TraceBuilder, TraceLoader};

/// A compact generator-friendly description of a trace.
#[derive(Debug, Clone)]
struct TraceSpec {
    hosts: usize,
    // (host, metric, time-grid index, value)
    vars: Vec<(usize, usize, u32, f64)>,
    // (host, start-grid, duration-grid)
    states: Vec<(usize, u32, u32)>,
    // (from-host, to-host, start-grid, duration-grid, size)
    links: Vec<(usize, usize, u32, u32, f64)>,
}

const SPAN: f64 = 128.0;
const METRICS: [(&str, &str); 3] =
    [("power", "MFlop/s"), ("power_used", "MFlop/s"), ("bandwidth", "Mbit/s")];

fn grid(g: u32) -> f64 {
    f64::from(g % 256) * 0.5 // 0.0 .. 127.5, always inside the span
}

fn build(spec: &TraceSpec) -> Trace {
    let mut b = TraceBuilder::new();
    let cluster = b.new_container(b.root(), "cluster", ContainerKind::Cluster).unwrap();
    let hosts: Vec<_> = (0..spec.hosts)
        .map(|i| b.new_container(cluster, format!("h{i}"), ContainerKind::Host).unwrap())
        .collect();
    let metrics: Vec<_> = METRICS.iter().map(|&(n, u)| b.metric(n, u)).collect();
    // The builder rejects non-monotonic pushes per (container, metric):
    // sort by time first; duplicate times legitimately overwrite.
    let mut vars = spec.vars.clone();
    vars.sort_by_key(|v| v.2);
    for &(h, m, g, v) in &vars {
        b.set_variable(grid(g), hosts[h % spec.hosts], metrics[m % metrics.len()], v)
            .unwrap();
    }
    for &(h, g, d) in &spec.states {
        let start = grid(g).min(SPAN - 1.0);
        let host = hosts[h % spec.hosts];
        b.push_state(start, host, "compute").unwrap();
        b.pop_state((start + grid(d).max(0.5)).min(SPAN), host).unwrap();
    }
    for &(f, t, g, d, size) in &spec.links {
        let start = grid(g).min(SPAN - 1.0);
        b.link(
            start,
            (start + grid(d).max(0.5)).min(SPAN),
            hosts[f % spec.hosts],
            hosts[t % spec.hosts],
            size,
        )
        .unwrap();
    }
    b.finish(SPAN)
}

fn spec_strategy() -> impl Strategy<Value = TraceSpec> {
    (
        1usize..5,
        proptest::collection::vec(
            (0usize..5, 0usize..3, 0u32..256, -1.0e6f64..1.0e6),
            0..40,
        ),
        proptest::collection::vec((0usize..5, 0u32..200, 1u32..40), 0..6),
        proptest::collection::vec(
            (0usize..5, 0usize..5, 0u32..200, 1u32..40, 0.0f64..1.0e4),
            0..6,
        ),
    )
        .prop_map(|(hosts, vars, states, links)| TraceSpec { hosts, vars, states, links })
}

/// Line-level corruption plan: which lines to delete, where to inject
/// garbage, and which adjacent pairs to swap. All operations act on
/// whole lines — the trust boundary is line-oriented, so is the fuzz.
#[derive(Debug, Clone)]
struct CorruptionPlan {
    deletions: Vec<usize>,
    injections: Vec<(usize, usize)>, // (position, garbage-pool index)
    swaps: Vec<usize>,
}

// Every entry must be *unacceptable* to the loader (otherwise an
// injected line could legitimately win a container id and the
// "nothing invented" property would not hold).
const GARBAGE: [&str; 6] = [
    "frobnicate,1,2,3",
    "var,not-a-float,0,0,1",
    "container,one,0,host,dup-id",
    "var,1.0,9999,0,5.0",
    ",,,,",
    // Non-finite timestamps are rejected in every mode — unlike an
    // out-of-span time, which would become *valid* if the corruption
    // plan happened to delete the span line.
    "var,inf,0,0,1.0",
];

fn corrupt(csv: &str, plan: &CorruptionPlan) -> String {
    let mut lines: Vec<String> = csv.lines().map(str::to_owned).collect();
    for &i in &plan.swaps {
        if lines.len() >= 2 {
            let i = i % (lines.len() - 1);
            lines.swap(i, i + 1);
        }
    }
    for &i in &plan.deletions {
        if !lines.is_empty() {
            lines.remove(i % lines.len());
        }
    }
    for &(pos, g) in &plan.injections {
        let pos = pos % (lines.len() + 1);
        lines.insert(pos, GARBAGE[g % GARBAGE.len()].to_owned());
    }
    let mut out = lines.join("\n");
    out.push('\n');
    out
}

fn plan_strategy() -> impl Strategy<Value = CorruptionPlan> {
    (
        proptest::collection::vec(0usize..10_000, 0..8),
        proptest::collection::vec((0usize..10_000, 0usize..GARBAGE.len()), 0..8),
        proptest::collection::vec(0usize..10_000, 0..4),
    )
        .prop_map(|(deletions, injections, swaps)| CorruptionPlan {
            deletions,
            injections,
            swaps,
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Invariant 1: serialization is a fixed point after one hop.
    #[test]
    fn to_csv_roundtrip_is_byte_stable(spec in spec_strategy()) {
        let trace = build(&spec);
        let csv1 = to_csv(&trace);
        let reloaded = from_csv(&csv1).expect("own output must parse strictly");
        let csv2 = to_csv(&reloaded);
        prop_assert_eq!(&csv1, &csv2, "first hop not a fixed point");
        // And the hop preserves the numbers, not just the bytes.
        prop_assert_eq!(trace.signal_count(), reloaded.signal_count());
        prop_assert_eq!(trace.states().len(), reloaded.states().len());
        prop_assert_eq!(trace.links().len(), reloaded.links().len());
    }

    /// Invariant 2: lenient recovery yields a sub-trace of the
    /// original — nothing is invented, every survivor is authentic.
    #[test]
    fn lenient_recovery_yields_subtrace(
        spec in spec_strategy(),
        plan in plan_strategy(),
    ) {
        let original = build(&spec);
        let corrupted = corrupt(&to_csv(&original), &plan);
        let report = TraceLoader::new()
            .mode(RecoveryMode::Lenient)
            .load_str(&corrupted)
            .expect("lenient loading is total");
        let loaded = report.trace;

        // Containers: every survivor matches the original id → (name,
        // kind) binding. (Injected duplicate-id garbage must lose.)
        for c in loaded.containers().iter() {
            let Some(parent) = c.parent() else { continue };
            let orig = original.containers().get(c.id());
            prop_assert!(orig.is_some(), "container {} invented", c.id());
            let orig = orig.unwrap();
            prop_assert_eq!(orig.name(), c.name());
            prop_assert_eq!(orig.kind(), c.kind());
            prop_assert_eq!(orig.parent(), Some(parent));
        }
        // Signals: every surviving breakpoint was a breakpoint of the
        // original signal, with the same value.
        for (c, m, sig) in loaded.signals() {
            let orig_sig = original.signal(c, m);
            prop_assert!(orig_sig.is_some(), "signal ({c}, {m}) invented");
            let orig_sig = orig_sig.unwrap();
            for (&t, &v) in sig.times().iter().zip(sig.values()) {
                let pos = orig_sig.times().iter().position(|&ot| ot == t);
                prop_assert!(pos.is_some(), "breakpoint t={t} invented on ({c}, {m})");
                prop_assert_eq!(
                    orig_sig.values()[pos.unwrap()].to_bits(),
                    v.to_bits(),
                    "value rewritten at t={}", t
                );
            }
        }
        // States and links never outnumber the original's.
        prop_assert!(loaded.states().len() <= original.states().len());
        prop_assert!(loaded.links().len() <= original.links().len());
        // The report's ledger is coherent: quarantine ⊆ dropped, and
        // clean reports really are clean.
        prop_assert!(report.quarantined <= report.dropped);
        if report.dropped == 0 {
            prop_assert!(report.breach.is_none());
        }
    }
}
