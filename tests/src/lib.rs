//! Integration-test package for the `viva` workspace; all tests live
//! under `tests/`.
